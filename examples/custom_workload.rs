//! Bring your own kernel: implement [`Kernel`] for a custom computation,
//! characterize it with a real instrumented run, and let the pipeline pick
//! its frequency.
//!
//! The kernel below is a parallel Monte-Carlo option pricer — a workload
//! that appears nowhere in the training suite.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use gpu_dvfs::kernels::stats::{timed, KernelStats};
use gpu_dvfs::prelude::*;
use rayon::prelude::*;

/// Parallel Monte-Carlo pricer for a European call option.
struct MonteCarloPricer {
    paths: usize,
    steps: usize,
}

impl Kernel for MonteCarloPricer {
    fn name(&self) -> &'static str {
        "MC-PRICER"
    }

    fn run(&self, scale: f64) -> KernelStats {
        let paths = ((self.paths as f64 * scale) as usize).max(64);
        let steps = self.steps;
        timed(|| {
            let (s0, r, sigma, k, dt) = (100.0f64, 0.03, 0.2, 105.0, 1.0 / steps as f64);
            let payoff_sum: f64 = (0..paths)
                .into_par_iter()
                .map(|p| {
                    // Deterministic per-path Gaussian stream (Box-Muller over
                    // a splitmix-hashed counter).
                    let mut state = (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut next_gauss = move || {
                        let mut rnd = || {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            (state >> 11) as f64 / (1u64 << 53) as f64
                        };
                        let u1: f64 = (1.0 - rnd()).max(1e-16);
                        let u2: f64 = rnd();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    let mut s = s0;
                    for _ in 0..steps {
                        let z = next_gauss();
                        s *= ((r - 0.5 * sigma * sigma) * dt + sigma * dt.sqrt() * z).exp();
                    }
                    (s - k).max(0.0)
                })
                .sum();
            let price = (payoff_sum / paths as f64) * (-r * 1.0f64).exp();
            // ~25 flops per step (two exps amortized, gaussian gen, update).
            let flops = 25.0 * (paths * steps) as f64;
            // Path state lives in registers; only results hit memory.
            let bytes = 16.0 * paths as f64;
            (flops, bytes, price)
        })
    }

    fn profile(&self) -> GpuProfile {
        GpuProfile {
            kappa_compute: 0.70, // transcendental heavy but regular
            kappa_memory: 0.50,
            fp64_ratio: 1.0,
            sm_occupancy: 0.75,
            pcie_tx_mbs: 5.0,
            pcie_rx_mbs: 5.0,
            overhead_frac: 0.02,
            target_seconds: 12.0,
        }
    }
}

fn main() {
    let backend = SimulatorBackend::ga100();
    println!("training models...");
    let pipeline = TrainedPipeline::train_on(&backend, 1);

    let pricer = MonteCarloPricer {
        paths: 200_000,
        steps: 64,
    };
    let stats = pricer.run(1.0);
    println!(
        "\ninstrumented run: {:.2e} FLOPs, {:.2e} bytes, price {:.4}, {:.0} ms host",
        stats.flops,
        stats.bytes,
        stats.checksum,
        stats.elapsed_s * 1e3
    );
    println!(
        "arithmetic intensity: {:.1} FLOP/byte (compute bound on A100)",
        stats.intensity()
    );

    let workload = pricer.workload(backend.spec());
    let predictor = pipeline.predictor(pipeline.train_spec.clone());
    let profile = predictor.predict_online(&backend, &workload);

    for (label, obj) in [
        ("EDP", Objective::Edp),
        ("ED2P", Objective::Ed2p),
        // Compute-bound kernels keep f_max under delay-weighted objectives;
        // an energy-only policy shows the other end of the trade space.
        ("Energy-only", Objective::EnergyOnly),
    ] {
        let sel = profile.select(obj, None);
        println!(
            "{label}: {:.0} MHz (predicted {:.1}% energy saved, {:.1}% slower)",
            sel.frequency_mhz,
            100.0 * profile.energy_saving_at(sel.index),
            100.0 * profile.time_change_at(sel.index)
        );
    }
}
