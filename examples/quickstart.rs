//! Quickstart: train the models, profile an unseen application once, and
//! pick its energy-optimal frequency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_dvfs::prelude::*;

fn main() {
    // ---- Offline phase (done once per GPU model) -------------------------
    // Sweep the 21 training benchmarks (DGEMM, STREAM, 19x SPEC-ACCEL
    // analogues) across all 61 used DVFS states of the simulated A100,
    // three runs each, and train the power + time DNNs.
    println!("training on the 21-benchmark campaign...");
    let backend = SimulatorBackend::ga100();
    let pipeline = TrainedPipeline::train_on(&backend, 1);
    println!(
        "  dataset: {} rows; power loss {:.5}, time loss {:.5}",
        pipeline.dataset.len(),
        pipeline.models.power_history.train_loss.last().unwrap(),
        pipeline.models.time_history.train_loss.last().unwrap()
    );

    // ---- Online phase (per application) ----------------------------------
    // One profiling run at the default clock is all the models need.
    let app = gpu_dvfs::kernels::apps::lammps();
    let predictor = pipeline.predictor(pipeline.train_spec.clone());
    let profile = predictor.predict_online(&backend, &app);

    println!(
        "\npredicted profile for {} across {} DVFS states:",
        app.name,
        profile.frequencies.len()
    );
    for i in (0..profile.frequencies.len()).step_by(10) {
        println!(
            "  {:>6.0} MHz  {:>6.1} W  {:>6.1} s  {:>8.0} J",
            profile.frequencies[i], profile.power_w[i], profile.time_s[i], profile.energy_j[i]
        );
    }

    // ---- Frequency selection ---------------------------------------------
    for (label, objective, threshold) in [
        ("ED2P (paper's HPC recommendation)", Objective::Ed2p, None),
        ("EDP", Objective::Edp, None),
        (
            "EDP with a 5% performance guardrail",
            Objective::Edp,
            Some(0.05),
        ),
    ] {
        let sel = profile.select(objective, threshold);
        println!(
            "\n{label}:\n  -> {:.0} MHz (predicted saving {:.1}% energy, {:.1}% slower)",
            sel.frequency_mhz,
            100.0 * profile.energy_saving_at(sel.index),
            100.0 * profile.time_change_at(sel.index)
        );
    }

    // Sanity: compare with ground truth from a full measured sweep.
    let measured = measured_profile(&backend, &app);
    let sel = measured.select(Objective::Ed2p, None);
    println!(
        "\nground truth (full measured sweep): ED2P optimum {:.0} MHz, {:.1}% energy saved",
        sel.frequency_mhz,
        100.0 * measured.energy_saving_at(sel.index)
    );
}
