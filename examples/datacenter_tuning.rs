//! Datacenter tuning: build a per-application frequency plan for a fleet.
//!
//! The paper's motivating scenario: an HPC centre wants to cap GPU power
//! with little or no performance impact. This example trains the models
//! once, then produces a frequency plan for all six production
//! applications under three policies, and reports the fleet-level effect.
//!
//! ```text
//! cargo run --release --example datacenter_tuning
//! ```

use gpu_dvfs::prelude::*;

fn main() {
    let backend = SimulatorBackend::ga100();
    println!("training models on the benchmark campaign...");
    let pipeline = TrainedPipeline::train_on(&backend, 1);
    let predictor = pipeline.predictor(pipeline.train_spec.clone());

    let apps = gpu_dvfs::kernels::apps::evaluation_apps();
    let policies: [(&str, Objective, Option<f64>); 3] = [
        ("max-savings (EDP)", Objective::Edp, None),
        ("balanced (ED2P)", Objective::Ed2p, None),
        ("perf-guarded (EDP, 1% cap)", Objective::Edp, Some(0.01)),
    ];

    for (label, objective, threshold) in policies {
        println!("\n=== policy: {label} ===");
        println!(
            "{:<10} {:>9} {:>14} {:>12}",
            "app", "f (MHz)", "energy", "time"
        );
        let mut fleet_e = 0.0;
        let mut fleet_e_tuned = 0.0;
        let mut worst_slowdown: f64 = 0.0;
        for app in &apps {
            // Online phase per app: one default-clock profiling run.
            let profile = predictor.predict_online(&backend, app);
            let sel = profile.select(objective, threshold);
            // Ground-truth outcome of deploying the chosen frequency.
            let measured = measured_profile(&backend, app);
            let idx = measured
                .frequencies
                .iter()
                .position(|&f| f == sel.frequency_mhz)
                .expect("selection is on the grid");
            let e_saving = measured.energy_saving_at(idx);
            let t_change = measured.time_change_at(idx);
            fleet_e += measured.energy_j[measured.max_freq_index()];
            fleet_e_tuned += measured.energy_j[idx];
            worst_slowdown = worst_slowdown.max(t_change);
            println!(
                "{:<10} {:>9.0} {:>13.1}% {:>11.1}%",
                app.name,
                sel.frequency_mhz,
                100.0 * e_saving,
                -100.0 * t_change
            );
        }
        println!(
            "fleet: {:.1}% energy saved, worst-case slowdown {:.1}%",
            100.0 * (1.0 - fleet_e_tuned / fleet_e),
            100.0 * worst_slowdown
        );
    }
}
