//! Fleet power capping: use the predicted profiles to pick per-application
//! frequencies that keep a multi-GPU node under a power budget with the
//! least total slowdown.
//!
//! This goes one step beyond the paper's per-application EDP/ED²P policies:
//! once the models exist, any operating-point optimization becomes a cheap
//! search over predicted profiles — here, a greedy marginal-slowdown
//! descent under a cap.
//!
//! ```text
//! cargo run --release --example power_capping
//! ```

use gpu_dvfs::core::capping::plan_under_cap;
use gpu_dvfs::prelude::*;

fn main() {
    let backend = SimulatorBackend::ga100();
    println!("training models...");
    let pipeline = TrainedPipeline::train_on(&backend, 1);
    let predictor = pipeline.predictor(pipeline.train_spec.clone());

    // One GPU per application, all in one node.
    let apps = gpu_dvfs::kernels::apps::evaluation_apps();
    let profiles: Vec<PredictedProfile> = apps
        .iter()
        .map(|a| predictor.predict_online(&backend, a))
        .collect();

    let uncapped: f64 = profiles.iter().map(|p| *p.power_w.last().unwrap()).sum();
    println!(
        "\nnode draw at default clocks: {uncapped:.0} W across {} GPUs",
        profiles.len()
    );

    let refs: Vec<&PredictedProfile> = profiles.iter().collect();
    for cap in [uncapped * 0.9, uncapped * 0.75, uncapped * 0.6] {
        let plan = plan_under_cap(&refs, cap);
        println!(
            "\n=== cap {cap:.0} W -> plan draws {:.0} W{} ===",
            plan.total_power_w,
            if plan.feasible {
                ""
            } else {
                " (cap unreachable)"
            }
        );
        for a in &plan.assignments {
            println!(
                "  {:<10} {:>6.0} MHz  {:>6.1} W  {:>5.1}% slower",
                a.workload,
                a.frequency_mhz,
                a.power_w,
                100.0 * a.slowdown
            );
        }
        println!(
            "  worst-case predicted slowdown: {:.1}%",
            100.0 * plan.worst_slowdown()
        );
    }
}
