//! Cross-architecture portability: train on Ampere, deploy on Volta.
//!
//! Reproduces the paper's portability study (Table 3, lower half): models
//! trained exclusively on GA100 campaign data predict power and time on a
//! GV100 — a device with a different frequency grid (117 used states),
//! TDP (250 W vs 500 W), and electrical behaviour — with accuracy only a
//! few points below the same-device case.
//!
//! ```text
//! cargo run --release --example cross_gpu_portability
//! ```

use gpu_dvfs::nn::metrics;
use gpu_dvfs::prelude::*;

fn main() {
    let ampere = SimulatorBackend::ga100();
    let volta = SimulatorBackend::gv100();

    println!("offline phase on GA100 only...");
    let pipeline = TrainedPipeline::train_on(&ampere, 1);

    println!(
        "\ndeploying the GA100-trained models on {} ({} used DVFS states, TDP {:.0} W):\n",
        volta.spec().arch.chip_name(),
        volta.grid().num_used(),
        volta.spec().tdp_w
    );

    let predictor = pipeline.predictor(volta.spec().clone());
    println!(
        "{:<10} {:>16} {:>16} {:>18}",
        "app", "power acc (%)", "time acc (%)", "ED2P choice (MHz)"
    );
    for app in gpu_dvfs::kernels::apps::evaluation_apps() {
        let measured = measured_profile(&volta, &app);
        let predicted = predictor.predict_online(&volta, &app);
        let p_acc = metrics::accuracy_from_mape(&predicted.power_w, &measured.power_w);
        let t_acc =
            metrics::accuracy_from_mape(&predicted.normalized_time(), &measured.normalized_time());
        let sel = predicted.select(Objective::Ed2p, None);
        println!(
            "{:<10} {:>16.1} {:>16.1} {:>18.0}",
            app.name, p_acc, t_acc, sel.frequency_mhz
        );
    }

    println!(
        "\nNote: no Volta sample ever entered training — the normalized \
         feature/target contract (f/f_max, P/TDP, T/T_max) is what carries \
         the models across architectures."
    );
}
