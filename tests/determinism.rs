//! Reproducibility: the whole stack is deterministic under fixed seeds.

use gpu_dvfs::prelude::*;

#[test]
fn full_pipeline_is_bitwise_reproducible() {
    let run = || {
        let backend = SimulatorBackend::ga100();
        let pipeline = TrainedPipeline::train_on(&backend, 4);
        let predictor = pipeline.predictor(pipeline.train_spec.clone());
        let profile = predictor.predict_online(&backend, &gpu_dvfs::kernels::apps::namd());
        let chosen = profile.select(Objective::Ed2p, None).frequency_mhz;
        (
            pipeline.models.power_history.train_loss.clone(),
            profile.power_w,
            profile.time_s,
            chosen,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "training losses differ between runs");
    assert_eq!(a.1, b.1, "predicted power differs between runs");
    assert_eq!(a.2, b.2, "predicted time differs between runs");
    assert_eq!(a.3, b.3, "selected frequency differs between runs");
}

#[test]
fn measurements_are_deterministic_but_distinct_per_run_index() {
    let spec = DeviceSpec::ga100();
    let sig = gpu_dvfs::gpu::SignatureBuilder::new("d")
        .flops(1e13)
        .bytes(1e12)
        .build();
    let nm = NoiseModel::default_bench();
    let a = gpu_dvfs::gpu::sample::measure(&spec, &sig, 1005.0, 0, &nm);
    let b = gpu_dvfs::gpu::sample::measure(&spec, &sig, 1005.0, 0, &nm);
    let c = gpu_dvfs::gpu::sample::measure(&spec, &sig, 1005.0, 1, &nm);
    assert_eq!(a, b);
    assert_ne!(a.power_usage, c.power_usage);
}

#[test]
fn instrumented_kernels_are_deterministic() {
    for k in gpu_dvfs::kernels::suite::training_suite() {
        let s1 = k.run(0.25);
        let s2 = k.run(0.25);
        assert_eq!(s1.checksum, s2.checksum, "{} checksum varies", k.name());
        assert_eq!(s1.flops, s2.flops, "{} flop count varies", k.name());
    }
}
