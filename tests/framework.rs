//! Data-collection framework integration: campaign -> CSV on disk ->
//! read-back -> dataset -> trained model.

use gpu_dvfs::prelude::*;
use gpu_dvfs::telemetry::{csv, CollectionCampaign, LaunchConfig};

#[test]
fn campaign_csv_round_trip_feeds_training() {
    let dir = std::env::temp_dir().join("gpu_dvfs_it_framework");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.csv");

    let backend = SimulatorBackend::ga100();
    let workloads: Vec<PhasedWorkload> = gpu_dvfs::kernels::suite::training_suite()
        .iter()
        .take(6)
        .map(|k| k.workload(backend.spec()))
        .collect();

    // Sweep a coarse grid including the default clock, streaming to CSV.
    let freqs: Vec<f64> = backend
        .grid()
        .used()
        .into_iter()
        .step_by(10)
        .chain([1410.0])
        .collect();
    let cfg = LaunchConfig {
        frequencies: freqs,
        runs: 2,
        output: Some(path.clone()),
        threads: 0,
    };
    let samples = CollectionCampaign::new(&backend, cfg)
        .collect(&workloads)
        .unwrap();

    // Read back from disk and train from the persisted data.
    let restored = csv::read_samples(&path).unwrap();
    assert_eq!(restored.len(), samples.len());
    let ds = Dataset::from_samples(backend.spec(), &restored).unwrap();
    assert_eq!(ds.len(), 2 * restored.len());
    let models = PowerTimeModels::train(&ds);
    assert!(models.power_history.train_loss.last().unwrap() < &0.05);

    std::fs::remove_file(&path).ok();
}

#[test]
fn campaign_leaves_device_at_default_clock() {
    let backend = SimulatorBackend::ga100();
    let workloads = vec![PhasedWorkload::single(
        gpu_dvfs::gpu::SignatureBuilder::new("w")
            .flops(1e12)
            .bytes(1e11)
            .build(),
    )];
    let cfg = LaunchConfig {
        frequencies: vec![510.0, 750.0],
        runs: 1,
        output: None,
        threads: 0,
    };
    CollectionCampaign::new(&backend, cfg)
        .collect(&workloads)
        .unwrap();
    assert_eq!(backend.app_clock(), 1410.0);
}
