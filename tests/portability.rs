//! Cross-architecture integration: GA100-trained models on a GV100.

use gpu_dvfs::nn::metrics;
use gpu_dvfs::prelude::*;

#[test]
fn ampere_models_transfer_to_volta() {
    let ampere = SimulatorBackend::ga100();
    let volta = SimulatorBackend::gv100();
    let pipeline = TrainedPipeline::train_on(&ampere, 3);
    let predictor = pipeline.predictor(volta.spec().clone());

    for app in [
        gpu_dvfs::kernels::apps::lammps(),
        gpu_dvfs::kernels::apps::lstm(),
    ] {
        let measured = measured_profile(&volta, &app);
        let predicted = predictor.predict_online(&volta, &app);
        assert_eq!(
            predicted.frequencies.len(),
            117,
            "Volta grid has 117 used states"
        );
        let p_acc = metrics::accuracy_from_mape(&predicted.power_w, &measured.power_w);
        assert!(
            p_acc > 85.0,
            "{} on GV100: power accuracy {p_acc:.1}%",
            app.name
        );
        // Predicted absolute power is in Volta's envelope, not Ampere's:
        // the 250 W TDP renormalization worked.
        let max_pred = predicted
            .power_w
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_pred < 265.0,
            "{}: predicted {max_pred:.0} W exceeds Volta TDP",
            app.name
        );
    }
}

#[test]
fn volta_selection_stays_on_volta_grid() {
    let ampere = SimulatorBackend::ga100();
    let volta = SimulatorBackend::gv100();
    let pipeline = TrainedPipeline::train_on(&ampere, 3);
    let predictor = pipeline.predictor(volta.spec().clone());
    let profile = predictor.predict_online(&volta, &gpu_dvfs::kernels::apps::gromacs());
    let sel = profile.select(Objective::Ed2p, None);
    assert!(volta.grid().is_supported(sel.frequency_mhz));
    assert!(sel.frequency_mhz <= 1380.0);
}
