//! End-to-end integration: offline campaign -> training -> online
//! prediction -> frequency selection, across crate boundaries.

use gpu_dvfs::prelude::*;

fn pipeline_and_backend() -> (SimulatorBackend, TrainedPipeline) {
    let backend = SimulatorBackend::ga100();
    // Stride 2 over the 61-state grid: ~half the campaign cost with enough
    // coverage that app accuracy stays in the paper band.
    let pipeline = TrainedPipeline::train_on(&backend, 2);
    (backend, pipeline)
}

#[test]
fn offline_online_flow_produces_actionable_selection() {
    let (backend, pipeline) = pipeline_and_backend();
    let app = gpu_dvfs::kernels::apps::bert();
    let predictor = pipeline.predictor(pipeline.train_spec.clone());
    let profile = predictor.predict_online(&backend, &app);

    // The predicted profile covers the full used grid even though the
    // training campaign was strided.
    assert_eq!(profile.frequencies.len(), 61);

    let sel = profile.select(Objective::Ed2p, None);
    assert!(sel.frequency_mhz >= 510.0 && sel.frequency_mhz <= 1410.0);

    // Deploying the choice on the ground truth must not be catastrophic:
    // energy does not increase and time loss stays far below the
    // no-guardrail worst case.
    let measured = measured_profile(&backend, &app);
    let idx = measured
        .frequencies
        .iter()
        .position(|&f| f == sel.frequency_mhz)
        .expect("on grid");
    assert!(measured.energy_saving_at(idx) > -0.02);
    assert!(measured.time_change_at(idx) < 0.25);
}

#[test]
fn prediction_accuracy_spans_the_paper_band_for_unseen_apps() {
    let (backend, pipeline) = pipeline_and_backend();
    let predictor = pipeline.predictor(pipeline.train_spec.clone());
    for app in gpu_dvfs::kernels::apps::evaluation_apps() {
        let measured = measured_profile(&backend, &app);
        let predicted = predictor.predict_online(&backend, &app);
        let p_acc =
            gpu_dvfs::nn::metrics::accuracy_from_mape(&predicted.power_w, &measured.power_w);
        assert!(p_acc > 88.0, "{}: power accuracy {p_acc:.1}%", app.name);
    }
}

#[test]
fn threshold_guardrail_is_respected_end_to_end() {
    let (backend, pipeline) = pipeline_and_backend();
    let app = gpu_dvfs::kernels::apps::resnet50();
    let predictor = pipeline.predictor(pipeline.train_spec.clone());
    let profile = predictor.predict_online(&backend, &app);
    let free = profile.select(Objective::EnergyOnly, None);
    let capped = profile.select(Objective::EnergyOnly, Some(0.02));
    assert!(capped.frequency_mhz >= free.frequency_mhz);
    assert!(capped.perf_degradation <= 0.02 + 1e-9);
}

#[test]
fn trained_models_round_trip_through_json() {
    let (backend, pipeline) = pipeline_and_backend();
    let json = pipeline.models.to_json();
    let restored = PowerTimeModels::from_json(&json).expect("valid JSON");
    let spec = backend.spec();
    let a = pipeline.models.predict_power_w(spec, 0.6, 0.5, 1005.0);
    let b = restored.predict_power_w(spec, 0.6, 0.5, 1005.0);
    assert_eq!(a, b);
}
