//! The `dvfs` CLI must emit its telemetry (metrics snapshot, flight-recorder
//! trace) on *both* exit paths. A failing run is exactly when the operator
//! needs the instrumentation, and an early version of `main` dropped it by
//! chaining the exports behind the command result with `and_then`.
//!
//! Also pins the exit-code contract (0 ok, 2 usage/validation, 3 I/O or
//! config) and the `dvfs serve` clean-shutdown path: a shutdown frame must
//! drain in-flight requests and still land the telemetry exports.

use std::io::BufRead;
use std::path::Path;
use std::process::Command;

/// Exit code for usage / validation errors (bad flags, unknown commands).
const EXIT_USAGE: i32 = 2;
/// Exit code for I/O and config errors (unreadable files, failed binds).
const EXIT_IO: i32 = 3;

fn dvfs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dvfs"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dvfs-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A structurally minimal check that `path` holds the expected JSON shape
/// (full validation lives in the `validate_trace` example and the obs
/// crate's own tests — here we only care that the export *happened*).
fn assert_json_with_key(path: &Path, key: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: telemetry file not written: {e}", path.display()));
    assert!(
        text.contains(key),
        "{}: expected key `{key}` in export, got: {}",
        path.display(),
        &text[..text.len().min(200)]
    );
    serde_json::from_str::<serde_json::Value>(&text)
        .unwrap_or_else(|e| panic!("{}: export is not valid JSON: {e}", path.display()));
}

#[test]
fn failing_command_still_exports_metrics_and_trace() {
    let metrics = tmp("fail_metrics.json");
    let trace = tmp("fail_trace.json");
    // `predict` without `--models` fails after flag parsing, once the
    // instrumentation globals are live.
    let out = dvfs()
        .args([
            "predict",
            "--app",
            "lammps",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dvfs");
    assert!(
        !out.status.success(),
        "predict without --models must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--models"),
        "stderr should name the missing flag, got: {stderr}"
    );
    assert_json_with_key(&metrics, "counters");
    assert_json_with_key(&trace, "traceEvents");
}

#[test]
fn successful_command_exports_metrics_and_trace() {
    let metrics = tmp("ok_metrics.json");
    let trace = tmp("ok_trace.json");
    let out = dvfs()
        .args([
            "apps",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dvfs");
    assert!(
        out.status.success(),
        "apps failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_json_with_key(&metrics, "counters");
    assert_json_with_key(&trace, "traceEvents");
}

#[test]
fn unknown_command_exits_nonzero_with_usage_error() {
    let out = dvfs().arg("frobnicate").output().expect("spawn dvfs");
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn exit_codes_distinguish_usage_from_io() {
    // Missing required flag: the operator typed the command wrong — usage.
    let out = dvfs()
        .args(["predict", "--app", "lammps"])
        .output()
        .expect("spawn dvfs");
    assert_eq!(
        out.status.code(),
        Some(EXIT_USAGE),
        "missing --models is a usage error: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The flag is right but the file isn't there — I/O, so a retry loop
    // or wrapper script can tell the two apart.
    let out = dvfs()
        .args([
            "predict",
            "--app",
            "lammps",
            "--models",
            "/nonexistent/m.json",
        ])
        .output()
        .expect("spawn dvfs");
    assert_eq!(
        out.status.code(),
        Some(EXIT_IO),
        "unreadable models file is an I/O error: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // loadgen against a port nobody listens on: connect failure is I/O.
    let out = dvfs()
        .args(["loadgen", "--addr", "127.0.0.1:1", "--requests", "1"])
        .output()
        .expect("spawn dvfs");
    assert_eq!(
        out.status.code(),
        Some(EXIT_IO),
        "connection-refused is an I/O error: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // loadgen without --addr never touches the network — usage.
    let out = dvfs().arg("loadgen").output().expect("spawn dvfs");
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
}

/// Trains a deliberately tiny model pair in-process and writes it where
/// `dvfs serve --models` can load it — debug-mode `dvfs train` would
/// dominate the test's runtime.
fn write_tiny_models(path: &Path) {
    use gpu_dvfs::gpu::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
    use gpu_dvfs::prelude::{Dataset, PowerTimeModels};

    let spec = DeviceSpec::ga100();
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
        SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
    ];
    let grid = DvfsGrid::for_spec(&spec);
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in grid.used().iter().step_by(8) {
            samples.push(gpu_dvfs::gpu::sample::measure(&spec, sig, f, 0, &nm));
        }
        samples.push(gpu_dvfs::gpu::sample::measure(
            &spec,
            sig,
            spec.max_core_mhz,
            0,
            &nm,
        ));
    }
    let models = PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap());
    std::fs::write(path, models.to_json()).unwrap();
}

#[test]
fn serve_shutdown_frame_drains_requests_and_exports_telemetry() {
    use gpu_dvfs::core::serve::{Client, Request};

    let models = tmp("serve_models.json");
    let metrics = tmp("serve_metrics.json");
    let trace = tmp("serve_trace.json");
    write_tiny_models(&models);

    let mut child = dvfs()
        .args([
            "serve",
            "--models",
            models.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dvfs serve");

    // The daemon prints `listening on ADDR` once bound — the ephemeral
    // port discovery contract scripts rely on.
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).unwrap(),
            0,
            "serve exited before printing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let mut client = Client::connect(&addr).expect("connect");
    for i in 0..16 {
        let fp = 0.1 + 0.05 * f64::from(i);
        let resp = client
            .call(&Request::predict("smoke", fp.min(0.95), 0.3, 2.5e-3))
            .expect("predict round-trip");
        assert!(resp.ok, "predict failed: {:?}", resp.error);
        assert!(resp.profile.is_some());
    }
    let resp = client.call(&Request::shutdown()).expect("shutdown ack");
    assert!(resp.ok);

    let status = child.wait().expect("wait for serve");
    assert_eq!(
        status.code(),
        Some(0),
        "serve must exit cleanly after a shutdown frame"
    );

    // Telemetry drained on the way out: the metrics snapshot carries the
    // served-latency histogram and the trace the per-request events.
    assert_json_with_key(&metrics, "serve.request_ns");
    assert_json_with_key(&trace, "serve.request");
    let text = std::fs::read_to_string(&metrics).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let served = parsed
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(serde_json::Value::as_f64)
        .expect("serve.requests counter exported");
    assert!(served >= 16.0, "all requests counted, got {served}");
}

/// The observability plane end to end through the CLI: serve with a
/// telemetry port, scrape it over HTTP, and read the dashboard via
/// `dvfs top --once` in both JSON and plain-text form.
#[test]
fn serve_telemetry_port_scrape_and_top_work_end_to_end() {
    use gpu_dvfs::core::serve::{Client, Request};

    let models = tmp("obs_models.json");
    write_tiny_models(&models);

    let mut child = dvfs()
        .args([
            "serve",
            "--models",
            models.to_str().unwrap(),
            "--telemetry-port",
            "0",
        ])
        // Fast sampler ticks so the rolling window fills quickly.
        .env("DVFS_TS_INTERVAL", "0.05")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dvfs serve");

    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let (mut addr, mut taddr) = (None, None);
    while addr.is_none() || taddr.is_none() {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).unwrap(),
            0,
            "serve exited before printing its addresses"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.to_string());
        } else if let Some(rest) = line.trim().strip_prefix("telemetry on ") {
            taddr = Some(rest.to_string());
        }
    }
    let (addr, taddr) = (addr.unwrap(), taddr.unwrap());

    let mut client = Client::connect(&addr).expect("connect");
    for i in 0..24 {
        let fp = (0.05 + 0.03 * f64::from(i)).min(0.95);
        assert!(
            client
                .call(&Request::predict("obs", fp, 0.4, 2.0))
                .unwrap()
                .ok
        );
    }
    // Two sampler ticks so the window has a base and a tip.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // `dvfs scrape` fetches a parseable Prometheus document.
    let out = dvfs()
        .args(["scrape", "--addr", &taddr])
        .output()
        .expect("spawn dvfs scrape");
    assert!(
        out.status.success(),
        "scrape failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let exposition = String::from_utf8(out.stdout).unwrap();
    let parsed = obs::prom::parse(&exposition)
        .unwrap_or_else(|e| panic!("scraped exposition rejected: {e}"));
    assert!(parsed.counters.get("serve_requests").copied().unwrap_or(0) >= 24);
    assert!(parsed.histograms.contains_key("serve_request_ns"));
    assert!(parsed.infos.contains_key("dvfs_build_info"));
    // The three stock SLOs export burn gauges and alert counters.
    for slo in ["latency_p99", "availability", "quality_mape"] {
        assert!(
            parsed.gauges.contains_key(&format!("slo_{slo}_burn_fast")),
            "missing burn gauge for {slo}"
        );
        assert!(
            parsed.counters.contains_key(&format!("slo_{slo}_alerts")),
            "missing alert counter for {slo}"
        );
    }

    // A bad path is a clean I/O error, not a hang or a panic.
    let out = dvfs()
        .args(["scrape", "--addr", &taddr, "--path", "/nope"])
        .output()
        .expect("spawn dvfs scrape");
    assert_eq!(out.status.code(), Some(EXIT_IO));

    // `dvfs top --once --json` emits the full stats frame for scripts.
    let out = dvfs()
        .args(["top", "--addr", &addr, "--once", "--json"])
        .output()
        .expect("spawn dvfs top");
    assert!(
        out.status.success(),
        "top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).expect("top --json parses");
    let server = frame.get("server").expect("server section");
    for key in [
        "uptime_s",
        "qps",
        "p50_us",
        "p99_us",
        "hit_rate",
        "build_version",
    ] {
        assert!(server.get(key).is_some(), "top --json missing server.{key}");
    }
    assert!(frame.get("version").and_then(serde_json::Value::as_f64) == Some(1.0));
    let slos = server
        .get("slo")
        .and_then(serde_json::Value::as_array)
        .unwrap();
    assert_eq!(slos.len(), 3);
    // The window saw real traffic through the fast sampler ticks.
    assert!(
        server
            .get("qps")
            .and_then(serde_json::Value::as_f64)
            .unwrap()
            >= 0.0
    );

    // Plain-text `--once` renders the dashboard headline.
    let out = dvfs()
        .args(["top", "--addr", &addr, "--once"])
        .output()
        .expect("spawn dvfs top");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("dvfs top"), "missing headline: {text}");
    assert!(text.contains("hit rate"), "missing window line: {text}");
    assert!(text.contains("latency_p99"), "missing SLO table: {text}");

    let resp = client.call(&Request::shutdown()).expect("shutdown ack");
    assert!(resp.ok);
    assert_eq!(child.wait().expect("wait").code(), Some(0));
}
