//! The `dvfs` CLI must emit its telemetry (metrics snapshot, flight-recorder
//! trace) on *both* exit paths. A failing run is exactly when the operator
//! needs the instrumentation, and an early version of `main` dropped it by
//! chaining the exports behind the command result with `and_then`.

use std::path::Path;
use std::process::Command;

fn dvfs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dvfs"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dvfs-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A structurally minimal check that `path` holds the expected JSON shape
/// (full validation lives in the `validate_trace` example and the obs
/// crate's own tests — here we only care that the export *happened*).
fn assert_json_with_key(path: &Path, key: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: telemetry file not written: {e}", path.display()));
    assert!(
        text.contains(key),
        "{}: expected key `{key}` in export, got: {}",
        path.display(),
        &text[..text.len().min(200)]
    );
    serde_json::from_str::<serde_json::Value>(&text)
        .unwrap_or_else(|e| panic!("{}: export is not valid JSON: {e}", path.display()));
}

#[test]
fn failing_command_still_exports_metrics_and_trace() {
    let metrics = tmp("fail_metrics.json");
    let trace = tmp("fail_trace.json");
    // `predict` without `--models` fails after flag parsing, once the
    // instrumentation globals are live.
    let out = dvfs()
        .args([
            "predict",
            "--app",
            "lammps",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dvfs");
    assert!(
        !out.status.success(),
        "predict without --models must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--models"),
        "stderr should name the missing flag, got: {stderr}"
    );
    assert_json_with_key(&metrics, "counters");
    assert_json_with_key(&trace, "traceEvents");
}

#[test]
fn successful_command_exports_metrics_and_trace() {
    let metrics = tmp("ok_metrics.json");
    let trace = tmp("ok_trace.json");
    let out = dvfs()
        .args([
            "apps",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dvfs");
    assert!(
        out.status.success(),
        "apps failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_json_with_key(&metrics, "counters");
    assert_json_with_key(&trace, "traceEvents");
}

#[test]
fn unknown_command_exits_nonzero_with_usage_error() {
    let out = dvfs().arg("frobnicate").output().expect("spawn dvfs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
