//! # gpu-dvfs — performance-aware energy-efficient GPU frequency selection
//!
//! A from-scratch Rust reproduction of *"Performance-Aware Energy-Efficient
//! GPU Frequency Selection using DNN-based Models"* (Ali, Side,
//! Bhalachandra, Wright, Chen — ICPP 2023), including every substrate the
//! paper depends on:
//!
//! | crate | what it provides |
//! |---|---|
//! | [`tensor`] | dense matrix math with blocked + parallel matmul |
//! | [`nn`] | feedforward networks: SELU, RMSprop, backprop, MAPE |
//! | [`baselines`] | RFR / XGBR / SVR / MLR multi-learner baselines |
//! | [`featsel`] | KSG k-NN mutual-information feature selection |
//! | [`gpu`] (re-export of `gpu_model`) | analytical GA100/GV100 DVFS simulator |
//! | [`kernels`] | 21 instrumented parallel benchmarks + 6 real-app models |
//! | [`telemetry`] | DCGM-like launch/control/profile collection framework |
//! | [`obs`] | self-instrumentation: spans, metrics registry, histograms |
//! | [`core`] (re-export of `dvfs_core`) | datasets, DNN models, EDP/ED²P selection, experiments |
//!
//! ## Quickstart
//!
//! ```no_run
//! use gpu_dvfs::prelude::*;
//!
//! // Offline phase: profile the 21-benchmark suite across the DVFS grid
//! // on the simulated A100 and train the two DNN models.
//! let backend = SimulatorBackend::ga100();
//! let pipeline = TrainedPipeline::train_on(&backend, 1);
//!
//! // Online phase: one profiling run of an unseen application at the
//! // default clock, then predict across all 61 DVFS states and pick the
//! // ED²P-optimal frequency.
//! let app = gpu_dvfs::kernels::apps::lammps();
//! let predictor = pipeline.predictor(pipeline.train_spec.clone());
//! let profile = predictor.predict_online(&backend, &app);
//! let choice = profile.select(Objective::Ed2p, None);
//! println!("run {} at {} MHz", app.name, choice.frequency_mhz);
//! ```
//!
//! See `DESIGN.md` for the architecture and the per-experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use baselines;
pub use dvfs_core as core;
pub use featsel;
pub use gpu_model as gpu;
pub use kernels;
pub use nn;
pub use obs;
pub use telemetry;
pub use tensor;

/// The most common imports for downstream users.
pub mod prelude {
    pub use dvfs_core::cache::{CacheHandle, CacheStats, ProfileCache, ShardedProfileCache};
    pub use dvfs_core::dataset::Dataset;
    pub use dvfs_core::models::PowerTimeModels;
    pub use dvfs_core::objective::{select_optimal, Objective};
    pub use dvfs_core::pipeline::TrainedPipeline;
    pub use dvfs_core::predictor::{measured_profile, PredictedProfile, Predictor};
    pub use dvfs_core::serve::{LoadgenConfig, Pacing, ServeConfig, Server};
    pub use dvfs_core::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
    pub use gpu_model::{
        ArchKind, DeviceSpec, DvfsGrid, NoiseModel, PhasedWorkload, WorkloadSignature,
    };
    pub use kernels::{GpuProfile, Kernel};
    pub use telemetry::{GpuBackend, SimulatorBackend};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let backend = SimulatorBackend::ga100();
        assert_eq!(backend.spec().tdp_w, 500.0);
        let grid = DvfsGrid::for_spec(backend.spec());
        assert_eq!(grid.num_used(), 61);
    }
}
