//! `dvfs` — command-line front end to the GPU-DVFS pipeline.
//!
//! ```text
//! dvfs train    [--arch ga100|gv100] [--stride N] [--threads T] [--out models.json]
//! dvfs campaign [--arch ga100|gv100] [--stride N] [--threads T] --out samples.csv
//! dvfs predict  --models models.json --app NAME [--arch ga100|gv100]
//! dvfs select   --models models.json --app NAME [--objective edp|ed2p|energy|time]
//!               [--threshold PCT] [--arch ga100|gv100]
//! dvfs cap      --models models.json --watts W [--arch ga100|gv100]
//! dvfs batch    --models models.json [--requests N] [--capacity C]
//!               [--input samples.csv] [--objective edp|ed2p|energy|time]
//!               [--threshold PCT] [--arch ga100|gv100]
//! dvfs monitor  [--arch ga100|gv100] [--stride N] [--window W]
//!               [--warn-mape PCT] [--drift PCT]
//! dvfs serve    --models models.json [--addr HOST:PORT] [--workers N]
//!               [--capacity C] [--shards S] [--max-batch B] [--arch ga100|gv100]
//!               [--precision f64|f32|bf16] [--telemetry-port P]
//!               [--slo-p99-us US] [--slo-fast-s S] [--slo-slow-s S] [--slo-burn X]
//!               [--journal-dir DIR] [--journal-segment-kb KB] [--journal-budget-kb KB]
//! dvfs loadgen  --addr HOST:PORT [--requests N] [--connections C]
//!               [--mode closed|open] [--rate R] [--keys K] [--zipf S]
//!               [--select-every N] [--seed S] [--pipeline D] [--json]
//!               [--shutdown]
//! dvfs top      --addr HOST:PORT [--interval S] [--once] [--json]
//! dvfs scrape   --addr HOST:PORT [--path /metrics]
//! dvfs journal  --dir DIR [--export] [--tail N] [--workload NAME]
//!               [--cmd predict|select] [--version V] [--limit N]
//! dvfs replay   --dir DIR --models models.json [--arch ga100|gv100]
//!               [--limit N] [--json]
//! dvfs apps
//! ```
//!
//! Every command additionally accepts `--metrics[=table|json]` (dump the
//! process's self-instrumentation — spans, counters, latency histograms —
//! on exit), `--metrics-out <path>` (write the JSON export to a file),
//! `--trace-out <path>` (record a flight-recorder trace of the run and
//! export it as Chrome trace-event JSON, loadable in ui.perfetto.dev),
//! and `--threads T` (worker threads for the parallel training engine and
//! collection campaign; equivalent to setting `DVFS_THREADS`, `0` = all
//! cores — results are bitwise identical for every setting). Progress
//! lines honor `DVFS_LOG=off|error|warn|info|debug`.
//!
//! The tool drives the simulated devices; pointing it at real hardware only
//! requires a `GpuBackend` implementation backed by NVML/DCGM.

use gpu_dvfs::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

/// Exit code for usage / validation errors (bad flag, unknown command,
/// out-of-range value): the invocation itself was wrong.
const EXIT_USAGE: u8 = 2;
/// Exit code for I/O and configuration errors (unreadable models file,
/// bind failure, unwritable output): the invocation was fine, the
/// environment wasn't. Distinct codes let wrappers retry the right one.
const EXIT_IO: u8 = 3;

/// A CLI failure, classified for the exit code.
enum CliError {
    /// The command line was invalid (exit 2).
    Usage(String),
    /// The environment failed us: file, socket, config (exit 3).
    Io(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io(_) => EXIT_IO,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) => m,
        }
    }
}

// Bare `String` errors come from flag parsing and validation helpers —
// they classify as usage errors; I/O sites wrap explicitly.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

fn usage_exit(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => return usage_exit(&e),
    };
    if let Err(e) = metrics_format(&opts) {
        return usage_exit(&e);
    }
    if let Err(e) = apply_threads(&opts) {
        return usage_exit(&e);
    }
    // The flight recorder must be armed before the command runs so every
    // worker thread it spawns records into the per-thread rings.
    if opts.contains_key("trace-out") {
        obs::trace::set_enabled(true);
    }
    let result = match cmd.as_str() {
        "train" => cmd_train(&opts),
        "campaign" => cmd_campaign(&opts),
        "predict" => cmd_predict(&opts),
        "select" => cmd_select(&opts),
        "cap" => cmd_cap(&opts),
        "batch" => cmd_batch(&opts),
        "monitor" => cmd_monitor(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "top" => cmd_top(&opts),
        "scrape" => cmd_scrape(&opts),
        "journal" => cmd_journal(&opts),
        "replay" => cmd_replay(&opts),
        "apps" => cmd_apps(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    // Export the instrumentation on BOTH paths: a failing run is exactly
    // when the snapshot and trace matter most. (`and_then` here used to
    // drop the telemetry whenever the command errored.) This includes the
    // signal-triggered `serve` shutdown, which returns here like any
    // other completed command.
    let exports = emit_metrics(&opts).and(emit_trace(&opts));
    match (result, exports) {
        (Ok(()), Ok(())) => ExitCode::SUCCESS,
        (result, exports) => {
            // The command's classification wins over a late export error.
            let code = result
                .as_ref()
                .err()
                .or(exports.as_ref().err())
                .map(CliError::exit_code)
                .unwrap_or(1);
            for e in [result.err(), exports.err()].into_iter().flatten() {
                eprintln!("error: {}", e.message());
            }
            ExitCode::from(code)
        }
    }
}

/// SIGINT/SIGTERM latch for `dvfs serve`: the handler only flips an
/// atomic; the serve loop polls it and runs the ordinary drain + export
/// path. No `libc` crate — std already links the platform libc, so the
/// two-argument `signal(2)` binding below is all that's needed.
#[cfg(unix)]
mod interrupt {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn latch(_signum: i32) {
        // Async-signal-safe: a relaxed-or-stronger atomic store only.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the POSIX libc entry point and `latch` is
        // async-signal-safe (single atomic store, no allocation/locks).
        unsafe {
            signal(SIGINT, latch);
            signal(SIGTERM, latch);
        }
    }

    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod interrupt {
    pub fn install() {}

    pub fn triggered() -> bool {
        false
    }
}

/// The validated `--metrics` format, if the flag was given.
fn metrics_format(opts: &HashMap<String, String>) -> Result<Option<&str>, String> {
    match opts.get("metrics").map(String::as_str) {
        None => Ok(None),
        Some(fmt @ ("table" | "json")) => Ok(Some(fmt)),
        Some(other) => Err(format!(
            "unknown --metrics format `{other}` (expected table or json)"
        )),
    }
}

/// Exports the self-instrumentation snapshot per `--metrics` /
/// `--metrics-out`. Runs after the command on success *and* failure.
fn emit_metrics(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let fmt = metrics_format(opts)?;
    let out = opts.get("metrics-out");
    if fmt.is_none() && out.is_none() {
        return Ok(());
    }
    let snapshot = obs::MetricsSnapshot::global();
    match fmt {
        Some("json") => println!("{}", snapshot.to_json()),
        Some(_) => eprint!("{}", snapshot.render_table()),
        None => {}
    }
    if let Some(path) = out {
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        obs::log!(Info, "wrote metrics to {path}");
    }
    Ok(())
}

/// Drains the flight recorder into a Chrome trace-event JSON file per
/// `--trace-out`. Like the metrics export, runs on both exit paths.
fn emit_trace(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let Some(path) = opts.get("trace-out") else {
        return Ok(());
    };
    let stats = obs::trace::write_chrome_trace(std::path::Path::new(path))
        .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    obs::log!(
        Info,
        "wrote trace to {path} ({} events from {} threads, {} dropped by ring wraparound)",
        stats.retained,
        stats.threads,
        stats.dropped
    );
    Ok(())
}

const USAGE: &str = "\
dvfs — performance-aware energy-efficient GPU frequency selection

USAGE:
  dvfs train    [--arch ga100|gv100] [--stride N] [--threads T] [--out models.json]
  dvfs campaign [--arch ga100|gv100] [--stride N] [--threads T] --out samples.csv
  dvfs predict  --models models.json --app NAME [--arch ga100|gv100]
  dvfs select   --models models.json --app NAME [--objective edp|ed2p|energy|time]
                [--threshold PCT] [--arch ga100|gv100]
  dvfs cap      --models models.json --watts W [--arch ga100|gv100]
                plan per-app frequencies for one GPU per app under a cap
  dvfs batch    --models models.json [--requests N] [--capacity C]
                [--input samples.csv] [--objective edp|ed2p|energy|time]
                [--threshold PCT] [--arch ga100|gv100]
                serve a stream of prediction+selection requests through
                the profile cache, reporting latency and hit rates
  dvfs monitor  [--arch ga100|gv100] [--stride N] [--window W]
                [--warn-mape PCT] [--drift PCT]
                train, then replay the evaluation apps through the
                rolling model-quality monitors and report MAPE drift
                (--drift injects an artificial prediction error)
  dvfs serve    --models models.json [--addr HOST:PORT] [--workers N]
                [--capacity C] [--shards S] [--max-batch B]
                [--arch ga100|gv100] [--precision f64|f32|bf16]
                [--telemetry-port P] [--slo-p99-us US] [--slo-fast-s S]
                [--slo-slow-s S] [--slo-burn X] [--journal-dir DIR]
                [--journal-segment-kb KB] [--journal-budget-kb KB]
                long-lived prediction daemon: length-prefixed JSON
                frames (predict/select/version/stats/scrape/reload/
                shutdown), snapshot-versioned hot model swaps, sharded
                profile cache; stops cleanly on ctrl-c or a shutdown
                frame. --precision serves the packed batch-fused
                engines in reduced precision, gated by the quality
                monitor (a candidate whose MAPE vs the f64 reference
                leaves the paper's 12% band is vetoed back to f64; the
                active precision shows in stats/scrape).
                --telemetry-port serves Prometheus text on
                http://127.0.0.1:P/metrics (0 = ephemeral, address
                printed as `telemetry on ADDR`); the --slo-* flags
                tune the burn-rate alert engine (p99 objective in µs,
                fast/slow windows in seconds, burn threshold).
                --journal-dir enables the durable decision journal:
                every served decision is appended off the hot path to a
                CRC-protected segmented log rotated under a disk budget
                (--journal-segment-kb, --journal-budget-kb), feeding the
                energy-savings ledger in stats/scrape/top
  dvfs loadgen  --addr HOST:PORT [--requests N] [--connections C]
                [--mode closed|open] [--rate R] [--keys K] [--zipf S]
                [--select-every N] [--seed S] [--pipeline D] [--json]
                [--shutdown]
                drive a running server with zipf-skewed keys and report
                throughput + rtt percentiles; error replies are counted
                (and their rtt recorded) separately (--shutdown stops
                the server afterwards)
  dvfs top      --addr HOST:PORT [--interval S] [--once] [--json]
                live dashboard over a running server's stats frame:
                rolling qps + latency percentiles, cache hit rate,
                uptime/build/snapshot version, SLO burn + alert state,
                model quality (--once prints one sample and exits;
                --json emits the raw stats frame for scripting)
  dvfs scrape   --addr HOST:PORT [--path /metrics]
                fetch one document from a server's --telemetry-port
                (the Prometheus exposition) and print it to stdout
  dvfs journal  --dir DIR [--export] [--tail N] [--workload NAME]
                [--cmd predict|select] [--version V] [--limit N]
                inspect a decision journal: the default summary reports
                segments, record counts, versions, and predicted energy
                saved; --export emits one JSON line per decision (after
                the filters), --tail N exports only the last N
  dvfs replay   --dir DIR --models models.json [--arch ga100|gv100]
                [--limit N] [--json]
                re-run a journal's decisions through a model snapshot
                and verify each against the recorded outcome bit for
                bit; reports divergences and recorded-vs-replayed MAPE,
                exits 3 if any decision diverged
  dvfs apps     list the built-in application models

Exit codes: 0 ok, 2 usage/validation error, 3 I/O or config error.

Any command also takes --threads T (parallel worker count, 0 = all
cores; same as DVFS_THREADS — results are identical for every value),
--metrics[=table|json] / --metrics-out FILE (self-instrumentation
snapshot), and --trace-out FILE (flight-recorder timeline as Chrome
trace-event JSON for ui.perfetto.dev).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        // `--name=value` is always accepted; the boolean-ish flags below
        // get a default when bare and never consume the next token (so
        // they can appear anywhere among the other flags).
        if let Some((name, value)) = name.split_once('=') {
            out.insert(name.to_string(), value.to_string());
        } else if name == "metrics" {
            out.insert(name.to_string(), "table".to_string());
        } else if name == "json" || name == "shutdown" || name == "once" || name == "export" {
            out.insert(name.to_string(), "1".to_string());
        } else {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            out.insert(name.to_string(), value.clone());
        }
    }
    Ok(out)
}

fn backend_for(opts: &HashMap<String, String>) -> Result<SimulatorBackend, String> {
    match opts.get("arch").map(String::as_str).unwrap_or("ga100") {
        "ga100" => Ok(SimulatorBackend::ga100()),
        "gv100" => Ok(SimulatorBackend::gv100()),
        other => Err(format!(
            "unknown --arch `{other}` (expected ga100 or gv100)"
        )),
    }
}

/// Parses `--threads N`, `0` = auto (all cores). `None` when absent.
fn threads_for(opts: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match opts.get("threads") {
        None => Ok(None),
        Some(s) => s
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("--threads: {e}")),
    }
}

/// Publishes `--threads` as the `DVFS_THREADS` environment variable —
/// the knob every parallel stage (training engine, collection campaign)
/// resolves its worker count from. A `0` value clears the variable,
/// restoring auto-detection.
fn apply_threads(opts: &HashMap<String, String>) -> Result<(), String> {
    match threads_for(opts)? {
        None => {}
        Some(0) => std::env::remove_var("DVFS_THREADS"),
        Some(n) => std::env::set_var("DVFS_THREADS", n.to_string()),
    }
    Ok(())
}

fn stride_for(opts: &HashMap<String, String>) -> Result<usize, String> {
    match opts.get("stride") {
        None => Ok(1),
        Some(s) => s
            .parse::<usize>()
            .map_err(|e| format!("--stride: {e}"))
            .and_then(|v| {
                if v == 0 {
                    Err("--stride must be >= 1".into())
                } else {
                    Ok(v)
                }
            }),
    }
}

fn app_for(opts: &HashMap<String, String>) -> Result<PhasedWorkload, String> {
    let name = opts.get("app").ok_or("--app NAME is required")?;
    gpu_dvfs::kernels::apps::evaluation_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown app `{name}` — run `dvfs apps` to list them"))
}

fn load_models(opts: &HashMap<String, String>) -> Result<PowerTimeModels, CliError> {
    let path = opts
        .get("models")
        .ok_or_else(|| CliError::Usage("--models models.json is required".into()))?;
    let json = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    PowerTimeModels::from_json(&json).map_err(|e| CliError::Io(format!("{path}: {e}")))
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let stride = stride_for(opts)?;
    obs::log!(
        Info,
        "training on {} ({} used DVFS states, stride {stride})...",
        backend.spec().arch.chip_name(),
        backend.grid().num_used()
    );
    let pipeline = TrainedPipeline::train_on(&backend, stride);
    obs::log!(
        Info,
        "dataset {} rows; final losses: power {:.5}, time {:.5}",
        pipeline.dataset.len(),
        pipeline.models.power_history.train_loss.last().unwrap(),
        pipeline.models.time_history.train_loss.last().unwrap()
    );
    for (label, history) in [
        ("power", &pipeline.models.power_history),
        ("time", &pipeline.models.time_history),
    ] {
        report_history(label, history);
    }
    let out = opts.get("out").map(String::as_str).unwrap_or("models.json");
    std::fs::write(out, pipeline.models.to_json())
        .map_err(|e| CliError::Io(format!("{out}: {e}")))?;
    println!("wrote {out}");
    Ok(())
}

/// Prints the best-epoch summary for one model and attaches its full loss
/// curve to the metrics export (shows up in `--metrics-out` JSON).
fn report_history(label: &str, history: &gpu_dvfs::nn::train::TrainingHistory) {
    match history.best_epoch() {
        Some(best) => println!(
            "{label}: best epoch {}/{} (val loss {:.5}), trained in {:.1} s",
            best + 1,
            history.train_loss.len(),
            history.val_loss[best],
            history.train_seconds
        ),
        None => println!(
            "{label}: {} epochs (no validation split), trained in {:.1} s",
            history.train_loss.len(),
            history.train_seconds
        ),
    }
    use obs::Value;
    let curve = |losses: &[f64]| Value::Array(losses.iter().map(|&l| Value::Num(l)).collect());
    obs::attach_json(
        &format!("training.{label}"),
        Value::Object(vec![
            ("train_loss".into(), curve(&history.train_loss)),
            ("val_loss".into(), curve(&history.val_loss)),
            (
                "best_epoch".into(),
                match history.best_epoch() {
                    Some(b) => Value::Num(b as f64),
                    None => Value::Null,
                },
            ),
            ("train_seconds".into(), Value::Num(history.train_seconds)),
        ]),
    );
}

fn cmd_campaign(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let stride = stride_for(opts)?;
    let out = opts
        .get("out")
        .ok_or_else(|| CliError::Usage("--out samples.csv is required".into()))?;
    let workloads: Vec<PhasedWorkload> = gpu_dvfs::kernels::suite::training_suite()
        .iter()
        .map(|k| k.workload(backend.spec()))
        .collect();
    let freqs: Vec<f64> = backend.grid().used().into_iter().step_by(stride).collect();
    let cfg = gpu_dvfs::telemetry::LaunchConfig {
        frequencies: freqs,
        runs: 3,
        output: Some(out.into()),
        threads: 0,
    };
    let samples = gpu_dvfs::telemetry::CollectionCampaign::new(&backend, cfg)
        .collect(&workloads)
        .map_err(|e| CliError::Io(e.to_string()))?;
    println!("collected {} samples -> {out}", samples.len());
    Ok(())
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let app = app_for(opts)?;
    let predictor = Predictor::new(&models, backend.spec().clone());
    let profile = predictor.predict_online(&backend, &app);
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "f (MHz)", "P (W)", "T (s)", "E (J)"
    );
    for i in 0..profile.frequencies.len() {
        println!(
            "{:<10.0} {:>10.1} {:>10.2} {:>12.0}",
            profile.frequencies[i], profile.power_w[i], profile.time_s[i], profile.energy_j[i]
        );
    }
    Ok(())
}

fn objective_for(opts: &HashMap<String, String>) -> Result<Objective, String> {
    match opts.get("objective").map(String::as_str).unwrap_or("ed2p") {
        "edp" => Ok(Objective::Edp),
        "ed2p" => Ok(Objective::Ed2p),
        "energy" => Ok(Objective::EnergyOnly),
        "time" => Ok(Objective::TimeOnly),
        other => Err(format!("unknown --objective `{other}`")),
    }
}

fn threshold_for(opts: &HashMap<String, String>) -> Result<Option<f64>, String> {
    opts.get("threshold")
        .map(|t| t.parse::<f64>().map(|v| v / 100.0))
        .transpose()
        .map_err(|e| format!("--threshold: {e}"))
}

fn cmd_select(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let app = app_for(opts)?;
    let objective = objective_for(opts)?;
    let threshold = threshold_for(opts)?;

    let predictor = Predictor::new(&models, backend.spec().clone());
    let profile = predictor.predict_online(&backend, &app);
    let sel = profile.select(objective, threshold);
    println!(
        "{} on {}: {} optimum = {:.0} MHz",
        app.name,
        backend.spec().arch.chip_name(),
        objective.name(),
        sel.frequency_mhz
    );
    println!(
        "predicted: {:.1}% energy saved, {:.1}% slower than f_max{}",
        100.0 * profile.energy_saving_at(sel.index),
        100.0 * profile.time_change_at(sel.index),
        if sel.threshold_applied {
            " (threshold applied)"
        } else {
            ""
        }
    );
    println!(
        "apply with: nvidia-smi -lgc {0},{0}  # or dcgmi config --set -a {0}",
        sel.frequency_mhz
    );
    Ok(())
}

fn cmd_cap(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let cap: f64 = opts
        .get("watts")
        .ok_or_else(|| CliError::Usage("--watts W is required".into()))?
        .parse()
        .map_err(|e| format!("--watts: {e}"))?;
    let predictor = Predictor::new(&models, backend.spec().clone());
    let profiles: Vec<PredictedProfile> = gpu_dvfs::kernels::apps::evaluation_apps()
        .iter()
        .map(|a| predictor.predict_online(&backend, a))
        .collect();
    let refs: Vec<&PredictedProfile> = profiles.iter().collect();
    let plan = gpu_dvfs::core::capping::plan_under_cap(&refs, cap);
    println!(
        "plan draws {:.0} W under a {cap:.0} W cap{}:",
        plan.total_power_w,
        if plan.feasible {
            ""
        } else {
            " — CAP UNREACHABLE (all GPUs at floor)"
        }
    );
    for a in &plan.assignments {
        println!(
            "  {:<10} {:>6.0} MHz  {:>7.1} W  {:>5.1}% slower",
            a.workload,
            a.frequency_mhz,
            a.power_w,
            100.0 * a.slowdown
        );
    }
    println!(
        "worst-case predicted slowdown: {:.1}%",
        100.0 * plan.worst_slowdown()
    );
    Ok(())
}

fn cmd_batch(opts: &HashMap<String, String>) -> Result<(), CliError> {
    use gpu_dvfs::gpu::MetricSample;
    use gpu_dvfs::telemetry::Profiler;
    use rayon::prelude::*;
    use std::time::Instant;

    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let objective = objective_for(opts)?;
    let threshold = threshold_for(opts)?;
    let requests: usize = match opts.get("requests") {
        None => 64,
        Some(s) => s
            .parse()
            .map_err(|e| format!("--requests: {e}"))
            .and_then(|v| {
                if v == 0 {
                    Err("--requests must be >= 1".to_string())
                } else {
                    Ok(v)
                }
            })?,
    };
    let capacity: usize = match opts.get("capacity") {
        None => 128,
        Some(s) => s
            .parse()
            .map_err(|e| format!("--capacity: {e}"))
            .and_then(|v| {
                if v == 0 {
                    Err("--capacity must be >= 1".to_string())
                } else {
                    Ok(v)
                }
            })?,
    };

    obs::span!("batch");
    let spec = backend.spec().clone();
    // The reference pool: default-clock profiling runs, either replayed
    // from a campaign CSV or taken once per built-in evaluation app.
    let pool: Vec<MetricSample> = {
        obs::span!("pool");
        match opts.get("input") {
            Some(path) => {
                let all = gpu_dvfs::telemetry::csv::read_samples(std::path::Path::new(path))
                    .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                let total = all.len();
                let refs: Vec<MetricSample> = all
                    .into_iter()
                    .filter(|s| s.sm_app_clock == spec.max_core_mhz)
                    .collect();
                if refs.is_empty() {
                    return Err(CliError::Io(format!(
                        "{path}: none of the {total} samples were taken at the default clock \
                         ({} MHz)",
                        spec.max_core_mhz
                    )));
                }
                refs
            }
            None => {
                backend.reset_clock();
                let profiler = Profiler::new(&backend);
                gpu_dvfs::kernels::apps::evaluation_apps()
                    .iter()
                    .map(|app| profiler.profile_run(app, 0).sample)
                    .collect()
            }
        }
    };

    // Round-robin the pool into the request stream, modelling repeated
    // submissions of the same applications (the case the cache serves).
    let stream: Vec<&MetricSample> = (0..requests).map(|i| &pool[i % pool.len()]).collect();
    let freqs = backend.grid().used();
    let predictor = Predictor::new(&models, spec.clone());
    let cache = ProfileCache::new(capacity);
    // Per-request latency (prediction + selection) lands in the shared
    // registry, so both the report below and `--metrics` read one source.
    let latency = obs::global().histogram("batch.request_ns");

    let wall = Instant::now();
    let mut results: Vec<(usize, String, f64, f64)> = {
        obs::span!("serve");
        stream
            .par_iter()
            .enumerate()
            .map(|(i, reference)| {
                let t0 = Instant::now();
                let profile = predictor.predict_from_reference_cached(&cache, reference, &freqs);
                let sel = profile.select(objective, threshold);
                latency.record_duration(t0.elapsed());
                (
                    i,
                    reference.workload.clone(),
                    sel.frequency_mhz,
                    100.0 * profile.energy_saving_at(sel.index),
                )
            })
            .collect()
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    results.sort_by_key(|r| r.0);
    cache.publish_stats();

    println!(
        "{requests} requests over {} apps on {} ({} DVFS states, {} objective)",
        pool.len(),
        spec.arch.chip_name(),
        freqs.len(),
        objective.name()
    );
    let shown = results.len().min(pool.len());
    for (_, workload, mhz, saving) in results.iter().take(shown) {
        println!("  {workload:<12} -> {mhz:>5.0} MHz  {saving:>5.1}% energy saved");
    }
    if results.len() > shown {
        println!(
            "  ... {} more requests (repeats of the apps above)",
            results.len() - shown
        );
    }

    let us = |ns: f64| ns / 1e3;
    println!(
        "latency: mean {:.1} µs, p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, max {:.1} µs; \
         wall {wall_ms:.1} ms",
        us(latency.mean()),
        us(latency.percentile(0.50) as f64),
        us(latency.percentile(0.95) as f64),
        us(latency.percentile(0.99) as f64),
        us(latency.max() as f64)
    );
    let stats = cache.stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} resident of {capacity}",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.evictions,
        cache.len()
    );
    Ok(())
}

/// `dvfs monitor` — trains a pipeline, then replays the evaluation apps
/// through the predictor while feeding every predicted-vs-measured pair
/// into the rolling model-quality monitors, and prints the drift report.
///
/// `--drift PCT` injects an artificial prediction error to exercise the
/// alert path: power is scaled uniformly by (1 + d) and time by the
/// frequency-dependent tilt (1 + d·(1 − f/f_max)) — a uniform time error
/// would cancel in the normalized-time comparison the monitor uses.
fn cmd_monitor(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let backend = backend_for(opts)?;
    let stride = stride_for(opts)?;
    let defaults = obs::quality::QualityConfig::default();
    let window: usize = match opts.get("window") {
        None => defaults.window,
        Some(s) => s
            .parse()
            .map_err(|e| format!("--window: {e}"))
            .and_then(|v| {
                if v == 0 {
                    Err("--window must be >= 1".to_string())
                } else {
                    Ok(v)
                }
            })?,
    };
    let warn_mape: f64 = match opts.get("warn-mape") {
        None => defaults.warn_mape,
        Some(s) => s.parse().map_err(|e| format!("--warn-mape: {e}"))?,
    };
    let drift: f64 = match opts.get("drift") {
        None => 0.0,
        Some(s) => s
            .parse::<f64>()
            .map(|pct| pct / 100.0)
            .map_err(|e| format!("--drift: {e}"))?,
    };
    // Configure both monitors up front so the first observation already
    // sees the requested window and alert band.
    let config = obs::quality::QualityConfig { window, warn_mape };
    obs::quality::reset();
    for model in ["power", "time"] {
        obs::quality::monitor_with(model, config);
    }

    obs::log!(
        Info,
        "training on {} (stride {stride}) for the quality monitor...",
        backend.spec().arch.chip_name()
    );
    let pipeline = TrainedPipeline::train_on(&backend, stride);
    let predictor = pipeline.predictor(backend.spec().clone());
    let f_max = backend.spec().max_core_mhz;
    let apps = gpu_dvfs::kernels::apps::evaluation_apps();
    for app in &apps {
        let measured = measured_profile(&backend, app);
        let mut predicted = predictor.predict_online(&backend, app);
        if drift != 0.0 {
            for i in 0..predicted.frequencies.len() {
                let f = predicted.frequencies[i];
                predicted.power_w[i] *= 1.0 + drift;
                predicted.time_s[i] *= 1.0 + drift * (1.0 - f / f_max);
            }
        }
        gpu_dvfs::core::evaluation::record_ground_truth(&measured, &predicted);
    }

    println!(
        "model-quality monitor: {} apps on {}, window {window}, alert band {warn_mape}%{}",
        apps.len(),
        backend.spec().arch.chip_name(),
        if drift != 0.0 {
            format!(", injected drift {:.1}%", 100.0 * drift)
        } else {
            String::new()
        }
    );
    for stat in obs::quality::snapshot() {
        println!(
            "quality.{}.mape {:.2}%  max_ape {:.2}%  samples {}  alerts {}{}",
            stat.model,
            stat.mape,
            stat.max_ape,
            stat.samples,
            stat.alerts,
            if stat.above_band { "  ABOVE BAND" } else { "" }
        );
    }
    Ok(())
}

/// Parses an optional positive-integer flag with a default.
fn usize_flag(
    opts: &HashMap<String, String>,
    name: &str,
    default: usize,
    min: usize,
) -> Result<usize, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(s) => s
            .parse::<usize>()
            .map_err(|e| format!("--{name}: {e}"))
            .and_then(|v| {
                if v < min {
                    Err(format!("--{name} must be >= {min}"))
                } else {
                    Ok(v)
                }
            }),
    }
}

/// Parses an optional positive-float flag with a default.
fn f64_flag(opts: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(s) => s
            .parse::<f64>()
            .map_err(|e| format!("--{name}: {e}"))
            .and_then(|v| {
                if v.is_finite() && v > 0.0 {
                    Ok(v)
                } else {
                    Err(format!("--{name} must be positive"))
                }
            }),
    }
}

/// Builds the serve SLO set from the `--slo-*` flags: the same three
/// stock objectives as [`gpu_dvfs::core::serve::default_slos`], with
/// the latency threshold and the shared windows/burn threshold
/// overridden.
fn slos_for(opts: &HashMap<String, String>) -> Result<Vec<obs::SloSpec>, String> {
    let p99_us = f64_flag(opts, "slo-p99-us", 500.0)?;
    let fast = std::time::Duration::from_secs_f64(f64_flag(opts, "slo-fast-s", 300.0)?);
    let slow = std::time::Duration::from_secs_f64(f64_flag(opts, "slo-slow-s", 3600.0)?);
    let burn = f64_flag(opts, "slo-burn", 1.0)?;
    let threshold_ns = (p99_us * 1e3).round().max(1.0) as u64;
    Ok(vec![
        obs::SloSpec::latency("latency_p99", "serve.request_ns", threshold_ns, 0.99),
        obs::SloSpec::error_ratio("availability", "serve.requests", "serve.errors", 0.999),
        obs::SloSpec::gauge_below("quality_mape", "quality.power.mape", 12.0, 0.999),
    ]
    .into_iter()
    .map(|s| s.with_windows(fast, slow).with_burn_threshold(burn))
    .collect())
}

/// `dvfs serve` — the online phase as a long-lived daemon. Loads the
/// trained models into a versioned [`ModelStore`] snapshot, binds the
/// thread-per-core server, prints `listening on ADDR` (so scripts can
/// discover an ephemeral port), and runs until a `shutdown` frame or
/// SIGINT/SIGTERM — both paths drain the request queue and fall through
/// to the ordinary `--metrics-out`/`--trace-out` exports in `main`.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), CliError> {
    // Whole-daemon span: covers bind through drained shutdown, so the
    // exported metrics carry at least one span timing (like `batch`).
    obs::span!("serve");
    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let workers = match usize_flag(opts, "workers", 0, 0)? {
        0 => std::thread::available_parallelism().map_or(2, usize::from),
        n => n,
    };
    let precision = match opts.get("precision") {
        Some(p) => nn::Precision::parse(p).ok_or_else(|| {
            CliError::Usage(format!("--precision `{p}` (expected f64, f32, or bf16)"))
        })?,
        None => nn::Precision::F64,
    };
    let config = ServeConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        workers,
        cache_capacity: usize_flag(opts, "capacity", 4096, 1)?,
        cache_shards: usize_flag(opts, "shards", workers.next_power_of_two(), 1)?,
        max_batch: usize_flag(opts, "max-batch", 32, 1)?,
        max_frame: gpu_dvfs::core::serve::DEFAULT_MAX_FRAME,
        telemetry_addr: opts
            .get("telemetry-port")
            .map(|p| {
                p.parse::<u16>()
                    .map(|port| format!("127.0.0.1:{port}"))
                    .map_err(|e| format!("--telemetry-port: {e}"))
            })
            .transpose()?,
        slos: slos_for(opts)?,
        precision,
        journal: opts
            .get("journal-dir")
            .map(|dir| -> Result<obs::journal::JournalConfig, String> {
                let mut jc = obs::journal::JournalConfig::new(std::path::PathBuf::from(dir));
                jc.segment_bytes = usize_flag(opts, "journal-segment-kb", 4096, 1)? as u64 * 1024;
                jc.max_total_bytes = usize_flag(opts, "journal-budget-kb", 65536, 1)? as u64 * 1024;
                Ok(jc)
            })
            .transpose()?,
        ..ServeConfig::default()
    };
    let label = opts.get("models").cloned().unwrap_or_default();
    let store = std::sync::Arc::new(ModelStore::new(ModelSnapshot::with_precision(
        models,
        backend.spec().clone(),
        SnapshotMeta {
            label,
            dataset_rows: 0,
            train_seconds: 0.0,
        },
        precision,
    )));
    let server = Server::start(config, store).map_err(|e| CliError::Io(format!("serve: {e}")))?;
    // Port discovery lines — tests and check.sh read them from stdout.
    println!("listening on {}", server.local_addr());
    if let Some(taddr) = server.telemetry_addr() {
        println!("telemetry on {taddr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    interrupt::install();
    while !interrupt::triggered() && !server.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if interrupt::triggered() {
        obs::log!(Info, "serve: interrupt received, draining");
    }
    server.shutdown();
    let stats = {
        // Join drains the queue and publishes the final cache gauges.
        server.join();
        obs::global()
    };
    let served = stats.counter("serve.requests").get();
    let latency = stats.histogram("serve.request_ns");
    let us = |ns: u64| ns as f64 / 1e3;
    println!(
        "served {served} request(s); latency p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs, \
         max {:.1} µs",
        us(latency.percentile(0.50)),
        us(latency.percentile(0.90)),
        us(latency.percentile(0.99)),
        us(latency.max())
    );
    Ok(())
}

/// `dvfs loadgen` — drives a running `dvfs serve` instance and reports
/// throughput + latency percentiles from the shared `loadgen.rtt_ns`
/// histogram.
fn cmd_loadgen(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?
        .clone();
    let pacing = match opts.get("mode").map(String::as_str).unwrap_or("closed") {
        "closed" => Pacing::Closed,
        "open" => {
            let rate_hz: f64 = opts
                .get("rate")
                .ok_or_else(|| CliError::Usage("--mode open requires --rate REQS_PER_SEC".into()))?
                .parse()
                .map_err(|e| format!("--rate: {e}"))?;
            if !(rate_hz.is_finite() && rate_hz > 0.0) {
                return Err(CliError::Usage("--rate must be positive".into()));
            }
            Pacing::Open { rate_hz }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --mode `{other}` (expected closed or open)"
            )))
        }
    };
    let zipf_s: f64 = match opts.get("zipf") {
        None => 1.0,
        Some(s) => s.parse().map_err(|e| format!("--zipf: {e}"))?,
    };
    if !(0.0..=10.0).contains(&zipf_s) {
        return Err(CliError::Usage("--zipf must lie in [0, 10]".into()));
    }
    let requests: u64 = match opts.get("requests") {
        None => 10_000,
        Some(s) => s.parse().map_err(|e| format!("--requests: {e}"))?,
    };
    let config = LoadgenConfig {
        addr,
        connections: usize_flag(opts, "connections", 4, 1)?,
        requests,
        pacing,
        keys: usize_flag(opts, "keys", 64, 1)?,
        zipf_s,
        pipeline: usize_flag(opts, "pipeline", 1, 1)?,
        select_every: match opts.get("select-every") {
            None => 8,
            Some(s) => s.parse().map_err(|e| format!("--select-every: {e}"))?,
        },
        seed: match opts.get("seed") {
            None => 42,
            Some(s) => s.parse().map_err(|e| format!("--seed: {e}"))?,
        },
        shutdown_after: opts.contains_key("shutdown"),
    };
    let report = gpu_dvfs::core::serve::loadgen::run(&config)
        .map_err(|e| CliError::Io(format!("loadgen: {e}")))?;
    if opts.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        println!(
            "{} ok / {} errors in {:.2} s -> {:.0} req/s",
            report.ok, report.errors, report.elapsed_s, report.qps
        );
        println!(
            "rtt: p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
            report.p50_us, report.p90_us, report.p99_us, report.max_us
        );
    }
    Ok(())
}

/// `dvfs scrape` — one-shot HTTP GET against a server's telemetry port;
/// prints the body (the Prometheus exposition for `/metrics`) verbatim.
fn cmd_scrape(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let addr = opts
        .get("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?;
    let path = opts.get("path").map(String::as_str).unwrap_or("/metrics");
    let (status, body) = gpu_dvfs::core::serve::http_get(addr, path)
        .map_err(|e| CliError::Io(format!("scrape {addr}{path}: {e}")))?;
    if status != 200 {
        return Err(CliError::Io(format!(
            "scrape {addr}{path}: HTTP {status}\n{body}"
        )));
    }
    print!("{body}");
    Ok(())
}

/// `dvfs top` — terminal dashboard over a running server's `stats`
/// frame. Polls every `--interval` seconds with a full-screen redraw;
/// `--once` prints a single sample, `--json` emits the raw frame.
fn cmd_top(opts: &HashMap<String, String>) -> Result<(), CliError> {
    use gpu_dvfs::core::serve::{Client, Request};

    let addr = opts
        .get("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?;
    let once = opts.contains_key("once");
    let json = opts.contains_key("json");
    let interval = std::time::Duration::from_secs_f64(f64_flag(opts, "interval", 2.0)?);

    interrupt::install();
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Io(format!("top: connect {addr}: {e}")))?;
    loop {
        let resp = client
            .call(&Request::stats())
            .map_err(|e| CliError::Io(format!("top: {addr}: {e}")))?;
        if !resp.ok {
            return Err(CliError::Io(format!(
                "top: server error: {}",
                resp.error.as_deref().unwrap_or("unknown")
            )));
        }
        if json {
            println!(
                "{}",
                serde_json::to_string(&resp).expect("stats frame serializes")
            );
        } else {
            if !once {
                // Full-screen redraw: clear + home, like watch(1).
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(addr, &resp));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if once {
            return Ok(());
        }
        let wake = std::time::Instant::now() + interval;
        while std::time::Instant::now() < wake {
            if interrupt::triggered() {
                println!();
                return Ok(());
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
}

/// Formats one dashboard screen from a stats frame.
fn render_top(addr: &str, resp: &gpu_dvfs::core::serve::Response) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "dvfs top — {addr}    snapshot v{:.0}", resp.version);
    if let Some(s) = &resp.server {
        let _ = writeln!(
            out,
            "uptime {:.1} s    build {} ({})    precision {}",
            s.uptime_s, s.build_version, s.build_git, s.precision
        );
        let _ = writeln!(
            out,
            "window {:.0} s: {:.1} req/s    p50 {:.1} µs    p99 {:.1} µs    hit rate {:.1}%",
            s.window_s,
            s.qps,
            s.p50_us,
            s.p99_us,
            100.0 * s.hit_rate
        );
        if !s.slo.is_empty() {
            let _ = writeln!(out, "slo:");
            for slo in &s.slo {
                let _ = writeln!(
                    out,
                    "  {:<14} target {:>7.3}%  burn {:>6.2}/{:<6.2} {}  alerts {:.0}",
                    slo.name,
                    100.0 * slo.target,
                    slo.burn_fast,
                    slo.burn_slow,
                    if slo.firing { "FIRING" } else { "ok    " },
                    slo.alerts
                );
            }
        }
        if !s.quality.is_empty() {
            let _ = writeln!(out, "quality:");
            for q in &s.quality {
                let _ = writeln!(
                    out,
                    "  {:<8} mape {:>6.2}%  max {:>6.2}%  samples {:.0}  alerts {:.0}{}",
                    q.model,
                    q.mape,
                    q.max_ape,
                    q.samples,
                    q.alerts,
                    if q.above_band { "  ABOVE BAND" } else { "" }
                );
            }
        }
    }
    if let Some(s) = &resp.server {
        let e = &s.energy;
        let _ = writeln!(
            out,
            "energy: {:.1} J predicted saved over {:.0} decision(s)    \
             window {:.3} W saved    journal {:.0} appended / {:.0} dropped",
            e.predicted_joules_saved,
            e.decisions,
            e.window_watts_saved,
            e.journal_appended,
            e.journal_dropped
        );
    }
    if let Some(c) = &resp.stats {
        let _ = writeln!(
            out,
            "cache: {:.0} lookups ({:.0} hits / {:.0} misses, {:.1}% lifetime), \
             {:.0} evictions, {:.0} resident across {:.0} shards",
            c.lookups,
            c.hits,
            c.misses,
            100.0 * c.hit_rate,
            c.evictions,
            c.resident,
            c.shards
        );
    }
    out
}

/// `dvfs journal` — offline inspection of a decision journal. The
/// default summary reads the segment chain (CRC-validating every
/// record) and aggregates the decoded decisions; `--export` (and
/// `--tail N`) emit one JSON line per decision for scripting, after the
/// `--workload`/`--cmd`/`--version` filters.
fn cmd_journal(opts: &HashMap<String, String>) -> Result<(), CliError> {
    use gpu_dvfs::core::serve::DecisionRecord;

    let dir = opts
        .get("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR is required".into()))?;
    let path = std::path::Path::new(dir);
    let cmd_filter = match opts.get("cmd").map(String::as_str) {
        None => None,
        Some("select") => Some(true),
        Some("predict") => Some(false),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown --cmd `{other}` (expected predict or select)"
            )))
        }
    };
    let version_filter: Option<u64> = opts
        .get("version")
        .map(|s| s.parse().map_err(|e| format!("--version: {e}")))
        .transpose()?;
    let limit: Option<usize> = opts
        .get("limit")
        .map(|s| s.parse().map_err(|e| format!("--limit: {e}")))
        .transpose()?;
    let tail: Option<usize> = opts
        .get("tail")
        .map(|s| s.parse().map_err(|e| format!("--tail: {e}")))
        .transpose()?;
    let workload_filter = opts.get("workload");
    let export = opts.contains_key("export") || tail.is_some();

    let scan = obs::journal::scan_dir(path).map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
    let records =
        obs::journal::read_records(path).map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
    let mut undecodable = 0u64;
    let mut decisions: Vec<(u64, u64, DecisionRecord)> = Vec::new();
    for r in &records {
        match DecisionRecord::decode(&r.body) {
            Some(d) => decisions.push((r.seq, r.ts_ns, d)),
            None => undecodable += 1,
        }
    }
    decisions.retain(|(_, _, d)| {
        if let Some(w) = workload_filter {
            if d.workload != *w {
                return false;
            }
        }
        if let Some(s) = cmd_filter {
            if d.select != s {
                return false;
            }
        }
        if let Some(v) = version_filter {
            if d.version != v {
                return false;
            }
        }
        true
    });
    if let Some(n) = tail {
        if decisions.len() > n {
            decisions.drain(..decisions.len() - n);
        }
    }
    if let Some(n) = limit {
        decisions.truncate(n);
    }

    if export {
        use std::io::Write as _;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for (seq, ts_ns, d) in &decisions {
            if let Err(e) = writeln!(out, "{}", d.export_line(*seq, *ts_ns)) {
                // A downstream `head`/`jq` closing the pipe early is a
                // normal way to consume the export, not an error.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return Ok(());
                }
                return Err(CliError::Io(format!("stdout: {e}")));
            }
        }
        return Ok(());
    }

    let selects = decisions.iter().filter(|(_, _, d)| d.select).count();
    let joules: f64 = decisions.iter().map(|(_, _, d)| d.joules_saved()).sum();
    let mut versions: Vec<u64> = decisions.iter().map(|(_, _, d)| d.version).collect();
    versions.sort_unstable();
    versions.dedup();
    println!(
        "journal in {dir}: {} segment(s), {} record(s), {} valid bytes ({} torn), last seq {}",
        scan.segments, scan.records, scan.valid_bytes, scan.torn_bytes, scan.last_seq
    );
    println!(
        "decisions: {} decoded ({selects} select / {} predict, {undecodable} undecodable)",
        decisions.len(),
        decisions.len() - selects
    );
    println!(
        "versions: {}",
        if versions.is_empty() {
            "none".to_string()
        } else {
            versions
                .iter()
                .map(|v| format!("v{v}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    println!("predicted energy saved: {joules:.1} J over {selects} select decision(s)");
    if let (Some((_, first, _)), Some((_, last, _))) = (decisions.first(), decisions.last()) {
        println!(
            "span: {:.3} s of serving",
            last.saturating_sub(*first) as f64 / 1e9
        );
    }
    Ok(())
}

/// `dvfs replay` — deterministic replay of a decision journal through a
/// model snapshot. With the weights the journal was served from, every
/// decision must reproduce bitwise; any divergence exits 3 after
/// printing the first few mismatches and the recorded-vs-replayed MAPE
/// (the drift signal when the weights differ on purpose).
fn cmd_replay(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dir = opts
        .get("dir")
        .ok_or_else(|| CliError::Usage("--dir DIR is required".into()))?;
    let backend = backend_for(opts)?;
    let models = load_models(opts)?;
    let limit: Option<usize> = opts
        .get("limit")
        .map(|s| s.parse().map_err(|e| format!("--limit: {e}")))
        .transpose()?;
    let mut records = obs::journal::read_records(std::path::Path::new(dir))
        .map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
    if let Some(n) = limit {
        records.truncate(n);
    }
    let snapshot = ModelSnapshot::new(
        models,
        backend.spec().clone(),
        SnapshotMeta {
            label: opts.get("models").cloned().unwrap_or_default(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
    );
    let report = gpu_dvfs::core::serve::journal::replay(&records, &snapshot);
    let versions = report
        .versions
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");
    if opts.contains_key("json") {
        println!(
            "{{\"records\":{},\"undecodable\":{},\"decisions\":{},\"divergent\":{},\
             \"energy_mape\":{},\"time_mape\":{},\"recorded_joules_saved\":{},\
             \"replayed_joules_saved\":{},\"versions\":[{versions}]}}",
            report.records,
            report.undecodable,
            report.decisions,
            report.divergent,
            report.energy_mape,
            report.time_mape,
            report.recorded_joules_saved,
            report.replayed_joules_saved,
        );
    } else {
        println!(
            "replayed {} record(s) ({} select decision(s), {} undecodable) from {dir}",
            report.records, report.decisions, report.undecodable
        );
        println!(
            "journal versions [{versions}] vs snapshot v{}",
            snapshot.version
        );
        println!(
            "divergent: {} of {}; recorded-vs-replayed MAPE: energy {:.4}%, time {:.4}%",
            report.divergent, report.records, report.energy_mape, report.time_mape
        );
        println!(
            "predicted joules saved: recorded {:.1} J, replayed {:.1} J",
            report.recorded_joules_saved, report.replayed_joules_saved
        );
        for d in &report.divergences {
            println!(
                "  seq {} {}: {} recorded {} replayed {}",
                d.seq, d.workload, d.field, d.recorded, d.replayed
            );
        }
    }
    if report.divergent > 0 {
        return Err(CliError::Io(format!(
            "replay: {} divergent decision(s)",
            report.divergent
        )));
    }
    Ok(())
}

fn cmd_apps() -> Result<(), CliError> {
    println!("built-in application models (paper Table 2, evaluation set):");
    let spec = DeviceSpec::ga100();
    for app in gpu_dvfs::kernels::apps::evaluation_apps() {
        let t = app.exec_time(&spec, spec.max_core_mhz);
        let p = app.power(&spec, spec.max_core_mhz);
        println!(
            "  {:<10} {:>5.1}s @ f_max, {:>5.0} W, {} phases",
            app.name,
            t,
            p,
            app.phases.len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_builds_map() {
        let args: Vec<String> = ["--arch", "gv100", "--stride", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = parse_flags(&args).unwrap();
        assert_eq!(m["arch"], "gv100");
        assert_eq!(m["stride"], "3");
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_missing_values() {
        assert!(parse_flags(&["oops".to_string()]).is_err());
        assert!(parse_flags(&["--arch".to_string()]).is_err());
    }

    #[test]
    fn parse_flags_accepts_inline_values_and_bare_metrics() {
        let args: Vec<String> = ["--metrics=json", "--stride=3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = parse_flags(&args).unwrap();
        assert_eq!(m["metrics"], "json");
        assert_eq!(m["stride"], "3");

        // Bare `--metrics` defaults to the table and leaves the following
        // flag intact rather than swallowing it as a value.
        let args: Vec<String> = ["--metrics", "--requests", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = parse_flags(&args).unwrap();
        assert_eq!(m["metrics"], "table");
        assert_eq!(m["requests"], "8");
    }

    #[test]
    fn metrics_format_is_validated() {
        let mut m = HashMap::new();
        assert_eq!(metrics_format(&m).unwrap(), None);
        m.insert("metrics".to_string(), "json".to_string());
        assert_eq!(metrics_format(&m).unwrap(), Some("json"));
        m.insert("metrics".to_string(), "table".to_string());
        assert_eq!(metrics_format(&m).unwrap(), Some("table"));
        m.insert("metrics".to_string(), "xml".to_string());
        assert!(metrics_format(&m).is_err());
    }

    #[test]
    fn backend_selection() {
        let mut m = HashMap::new();
        assert_eq!(backend_for(&m).unwrap().spec().tdp_w, 500.0);
        m.insert("arch".to_string(), "gv100".to_string());
        assert_eq!(backend_for(&m).unwrap().spec().tdp_w, 250.0);
        m.insert("arch".to_string(), "h100".to_string());
        assert!(backend_for(&m).is_err());
    }

    #[test]
    fn stride_validation() {
        let mut m = HashMap::new();
        assert_eq!(stride_for(&m).unwrap(), 1);
        m.insert("stride".to_string(), "0".to_string());
        assert!(stride_for(&m).is_err());
        m.insert("stride".to_string(), "abc".to_string());
        assert!(stride_for(&m).is_err());
    }

    #[test]
    fn threads_validation() {
        let mut m = HashMap::new();
        assert_eq!(threads_for(&m).unwrap(), None);
        m.insert("threads".to_string(), "4".to_string());
        assert_eq!(threads_for(&m).unwrap(), Some(4));
        m.insert("threads".to_string(), "0".to_string());
        assert_eq!(threads_for(&m).unwrap(), Some(0));
        m.insert("threads".to_string(), "abc".to_string());
        assert!(threads_for(&m).is_err());
    }

    #[test]
    fn app_lookup_is_case_insensitive() {
        let mut m = HashMap::new();
        m.insert("app".to_string(), "resnet50".to_string());
        assert_eq!(app_for(&m).unwrap().name, "ResNet50");
        m.insert("app".to_string(), "nonesuch".to_string());
        assert!(app_for(&m).is_err());
    }
}
