#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run from anywhere; exits non-zero
# on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The data-parallel training engine and concurrent campaign promise
# bitwise-identical results for every worker count, so the whole suite
# runs once pinned serial and once at 4 workers.
echo "==> cargo test -q (DVFS_THREADS=1)"
DVFS_THREADS=1 cargo test --workspace --offline -q

echo "==> cargo test -q (DVFS_THREADS=4)"
DVFS_THREADS=4 cargo test --workspace --offline -q

echo "==> cargo test -p obs -q"
cargo test -p obs --offline -q

echo "==> dvfs --metrics smoke (train -> batch -> validate JSON)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo build --release --offline --bin dvfs
DVFS_LOG=error target/release/dvfs train --stride 8 --out "$tmp/models.json" >/dev/null
DVFS_LOG=error target/release/dvfs batch --models "$tmp/models.json" \
    --requests 64 --capacity 4 --metrics=json --metrics-out "$tmp/metrics.json" >/dev/null
cargo run --release --offline -p obs --example validate_metrics -- "$tmp/metrics.json"

echo "==> dvfs --trace-out smoke (4-thread train + batch -> validate traces)"
DVFS_LOG=error DVFS_THREADS=4 target/release/dvfs train --stride 8 \
    --out "$tmp/models.json" --trace-out "$tmp/train_trace.json" >/dev/null
DVFS_LOG=error DVFS_THREADS=4 target/release/dvfs batch --models "$tmp/models.json" \
    --requests 64 --capacity 4 --trace-out "$tmp/batch_trace.json" >/dev/null
cargo run --release --offline -p obs --example validate_trace -- "$tmp/train_trace.json" \
    --min-tids 3 --require shard_worker --require campaign_worker
cargo run --release --offline -p obs --example validate_trace -- "$tmp/batch_trace.json" \
    --require predict.request

echo "==> dvfs monitor smoke (rolling model-quality report)"
DVFS_LOG=error target/release/dvfs monitor --stride 8 --window 64 > "$tmp/monitor.txt"
grep -q 'quality\.power\.mape' "$tmp/monitor.txt"
grep -q 'quality\.time\.mape' "$tmp/monitor.txt"

echo "==> dvfs serve smoke (ephemeral port -> loadgen -> validate telemetry)"
DVFS_LOG=error target/release/dvfs serve --models "$tmp/models.json" \
    --metrics-out "$tmp/serve_metrics.json" --trace-out "$tmp/serve_trace.json" \
    > "$tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/serve.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
test -n "$addr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 400 --connections 4 --shutdown >/dev/null
wait "$serve_pid"
cargo run --release --offline -p obs --example validate_metrics -- \
    "$tmp/serve_metrics.json" --hist serve.request_ns
cargo run --release --offline -p obs --example validate_trace -- \
    "$tmp/serve_trace.json" --require serve.request

echo "==> bench baseline smoke (BENCH_SMOKE=1)"
BENCH_SMOKE=1 BENCH_OUT="$tmp/BENCH_nn.json" scripts/bench_baseline.sh >/dev/null
test -s "$tmp/BENCH_nn.json"
grep -q '"nn_training/epoch_parallel"' "$tmp/BENCH_nn.json"
grep -q '"pipeline/offline_sweep"' "$tmp/BENCH_nn.json"
grep -q '"trace_overhead/instant_enabled"' "$tmp/BENCH_nn.json"
grep -q '"serve_qps"' "$tmp/BENCH_nn.json"

echo "==> all checks passed"
