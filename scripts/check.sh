#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run from anywhere; exits non-zero
# on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "==> all checks passed"
