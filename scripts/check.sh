#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run from anywhere; exits non-zero
# on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The data-parallel training engine and concurrent campaign promise
# bitwise-identical results for every worker count, so the whole suite
# runs once pinned serial and once at 4 workers.
echo "==> cargo test -q (DVFS_THREADS=1)"
DVFS_THREADS=1 cargo test --workspace --offline -q

echo "==> cargo test -q (DVFS_THREADS=4)"
DVFS_THREADS=4 cargo test --workspace --offline -q

echo "==> cargo test -p obs -q"
cargo test -p obs --offline -q

echo "==> dvfs --metrics smoke (train -> batch -> validate JSON)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo build --release --offline --bin dvfs
DVFS_LOG=error target/release/dvfs train --stride 8 --out "$tmp/models.json" >/dev/null
DVFS_LOG=error target/release/dvfs batch --models "$tmp/models.json" \
    --requests 64 --capacity 4 --metrics=json --metrics-out "$tmp/metrics.json" >/dev/null
cargo run --release --offline -p obs --example validate_metrics -- "$tmp/metrics.json"

echo "==> dvfs --trace-out smoke (4-thread train + batch -> validate traces)"
DVFS_LOG=error DVFS_THREADS=4 target/release/dvfs train --stride 8 \
    --out "$tmp/models.json" --trace-out "$tmp/train_trace.json" >/dev/null
DVFS_LOG=error DVFS_THREADS=4 target/release/dvfs batch --models "$tmp/models.json" \
    --requests 64 --capacity 4 --trace-out "$tmp/batch_trace.json" >/dev/null
cargo run --release --offline -p obs --example validate_trace -- "$tmp/train_trace.json" \
    --min-tids 3 --require shard_worker --require campaign_worker
cargo run --release --offline -p obs --example validate_trace -- "$tmp/batch_trace.json" \
    --require predict.request

echo "==> dvfs monitor smoke (rolling model-quality report)"
DVFS_LOG=error target/release/dvfs monitor --stride 8 --window 64 > "$tmp/monitor.txt"
grep -q 'quality\.power\.mape' "$tmp/monitor.txt"
grep -q 'quality\.time\.mape' "$tmp/monitor.txt"

echo "==> dvfs serve smoke (ephemeral port -> loadgen -> validate telemetry)"
DVFS_LOG=error target/release/dvfs serve --models "$tmp/models.json" \
    --metrics-out "$tmp/serve_metrics.json" --trace-out "$tmp/serve_trace.json" \
    > "$tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/serve.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
test -n "$addr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 400 --connections 4 --shutdown >/dev/null
wait "$serve_pid"
cargo run --release --offline -p obs --example validate_metrics -- \
    "$tmp/serve_metrics.json" --hist serve.request_ns
cargo run --release --offline -p obs --example validate_trace -- \
    "$tmp/serve_trace.json" --require serve.request

echo "==> dvfs serve pipelined smoke (depth-4 bursts, in-order replies)"
# --pipeline 4 sends whole bursts in one vectored write and makes the
# loadgen abort (non-zero exit) if any reply comes back out of request
# order, so this smoke asserts the server's pipelining contract
# end-to-end; the trace must still carry one serve.request per request.
DVFS_LOG=error target/release/dvfs serve --models "$tmp/models.json" \
    --trace-out "$tmp/serve_pipe_trace.json" \
    > "$tmp/serve_pipe.log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/serve_pipe.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
test -n "$addr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 400 --connections 4 --pipeline 4 --shutdown >/dev/null
wait "$serve_pid"
cargo run --release --offline -p obs --example validate_trace -- \
    "$tmp/serve_pipe_trace.json" --require serve.request

echo "==> dvfs serve observability smoke (scrape mid-load, burn alert, top, flows)"
# An impossible latency objective (p99 <= 1 ns) over tight 1 s / 2 s
# burn windows, sampled every 200 ms: any sustained traffic must trip
# the burn-rate alert, and — because the alert is edge-triggered and the
# burn never clears under load — trip it exactly once.
DVFS_LOG=warn DVFS_TS_INTERVAL=0.2 target/release/dvfs serve --models "$tmp/models.json" \
    --telemetry-port 0 --slo-p99-us 0.001 --slo-fast-s 1 --slo-slow-s 2 \
    --metrics-out "$tmp/obs_metrics.json" --trace-out "$tmp/obs_trace.json" \
    > "$tmp/obs_serve.log" &
obs_pid=$!
addr=""
taddr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/obs_serve.log" | head -n 1)"
    taddr="$(sed -n 's/^telemetry on //p' "$tmp/obs_serve.log" | head -n 1)"
    [[ -n "$addr" && -n "$taddr" ]] && break
    sleep 0.1
done
test -n "$addr"
test -n "$taddr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --mode open --rate 200 --requests 600 --connections 2 >/dev/null &
load_pid=$!
alerted=0
for _ in $(seq 40); do
    target/release/dvfs scrape --addr "$taddr" > "$tmp/exposition.txt"
    if grep -qx 'slo_latency_p99_alerts 1' "$tmp/exposition.txt"; then
        alerted=1
        break
    fi
    sleep 0.25
done
test "$alerted" = 1
cargo run --release --offline -p obs --example validate_prom -- "$tmp/exposition.txt" \
    --require serve_requests --require serve_request_ns --require dvfs_build_info \
    --require slo_latency_p99_burn_fast --require serve_uptime_s
target/release/dvfs top --addr "$addr" --once --json > "$tmp/top.json"
grep -q '"qps"' "$tmp/top.json"
grep -q '"p99_us"' "$tmp/top.json"
grep -q '"hit_rate"' "$tmp/top.json"
grep -q '"latency_p99"' "$tmp/top.json"
target/release/dvfs top --addr "$addr" --once > "$tmp/top.txt"
grep -q 'dvfs top' "$tmp/top.txt"
grep -q 'latency_p99' "$tmp/top.txt"
wait "$load_pid"
# Edge-triggered: with the load drained and no new traffic, a second
# scrape must still report exactly one alert.
target/release/dvfs scrape --addr "$taddr" > "$tmp/exposition2.txt"
grep -qx 'slo_latency_p99_alerts 1' "$tmp/exposition2.txt"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 8 --connections 1 --shutdown >/dev/null
wait "$obs_pid"
cargo run --release --offline -p obs --example validate_trace -- \
    "$tmp/obs_trace.json" --require serve.request --require-flow serve.req
cargo run --release --offline -p obs --example validate_metrics -- \
    "$tmp/obs_metrics.json" --hist serve.request_ns \
    --gauge cache.hit_rate=0..1 --gauge serve.uptime_s=0..1e9 \
    --gauge serve.window.qps=0..1e9 --gauge slo.latency_p99.burn_fast=0..1e12

echo "==> dvfs serve --precision bf16 smoke (gate, exposition label, stats, accuracy band)"
# The reduced-precision path end to end: the snapshot gate must admit
# bf16 on real trained models (rolling MAPE vs the f64 reference inside
# the 88–98% accuracy band, i.e. MAPE <= 12%), the exposition and stats
# frame must advertise the active precision, and the gate's probe gauges
# must land in the metrics dump inside the band.
DVFS_LOG=error target/release/dvfs serve --models "$tmp/models.json" \
    --precision bf16 --telemetry-port 0 \
    --metrics-out "$tmp/bf16_metrics.json" > "$tmp/bf16_serve.log" &
bf16_pid=$!
addr=""
taddr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/bf16_serve.log" | head -n 1)"
    taddr="$(sed -n 's/^telemetry on //p' "$tmp/bf16_serve.log" | head -n 1)"
    [[ -n "$addr" && -n "$taddr" ]] && break
    sleep 0.1
done
test -n "$addr"
test -n "$taddr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 200 --connections 2 >/dev/null
target/release/dvfs scrape --addr "$taddr" > "$tmp/bf16_exposition.txt"
grep -q 'precision="bf16"' "$tmp/bf16_exposition.txt"
target/release/dvfs top --addr "$addr" --once --json > "$tmp/bf16_top.json"
grep -q '"precision":"bf16"' "$tmp/bf16_top.json"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 8 --connections 1 --shutdown >/dev/null
wait "$bf16_pid"
cargo run --release --offline -p obs --example validate_metrics -- \
    "$tmp/bf16_metrics.json" --hist serve.request_ns \
    --gauge quality.precision_power.mape=0..12 \
    --gauge quality.precision_time.mape=0..12

echo "==> dvfs journal + replay smoke (serve --journal-dir -> export -> validate -> replay)"
# A journaled serve run under pipelined load, then the full audit loop:
# export to JSONL, validate every line (CRC, monotone seq/ts, line
# count == serve.requests so nothing was dropped), and deterministically
# replay the journal against the same weights expecting zero divergent
# decisions.
DVFS_LOG=error target/release/dvfs serve --models "$tmp/models.json" \
    --journal-dir "$tmp/journal" --metrics-out "$tmp/journal_metrics.json" \
    > "$tmp/journal_serve.log" &
journal_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$tmp/journal_serve.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
test -n "$addr"
DVFS_LOG=error target/release/dvfs loadgen --addr "$addr" \
    --requests 400 --connections 4 --pipeline 4 --shutdown >/dev/null
wait "$journal_pid"
DVFS_LOG=error target/release/dvfs journal --dir "$tmp/journal" --export \
    > "$tmp/journal.jsonl"
cargo run --release --offline -p obs --example validate_journal -- \
    "$tmp/journal.jsonl" --metrics "$tmp/journal_metrics.json" --expect 400
DVFS_LOG=error target/release/dvfs replay --dir "$tmp/journal" \
    --models "$tmp/models.json" > "$tmp/replay.txt"
grep -q 'divergent: 0 of 400' "$tmp/replay.txt"

echo "==> batch-fused engine speedup guard (release)"
# `cargo test -q` above runs this file in a debug build where the timing
# leg self-skips; the release run enforces the >=2x fused-f32 bound.
cargo test --release --offline -p bench --test engine_speedup -q

echo "==> bench baseline smoke (BENCH_SMOKE=1)"
BENCH_SMOKE=1 BENCH_OUT="$tmp/BENCH_nn.json" scripts/bench_baseline.sh >/dev/null
test -s "$tmp/BENCH_nn.json"
grep -q '"nn_training/epoch_parallel"' "$tmp/BENCH_nn.json"
grep -q '"pipeline/offline_sweep"' "$tmp/BENCH_nn.json"
grep -q '"trace_overhead/instant_enabled"' "$tmp/BENCH_nn.json"
grep -q '"obs_plane/sampler_tick"' "$tmp/BENCH_nn.json"
grep -q '"serve_qps"' "$tmp/BENCH_nn.json"
grep -q '"serve_p99_telemetry_us"' "$tmp/BENCH_nn.json"
grep -q '"serve_qps_journal"' "$tmp/BENCH_nn.json"
grep -q '"serve_p99_journal_us"' "$tmp/BENCH_nn.json"
grep -q '"nn_forward_61_states/engine_f32"' "$tmp/BENCH_nn.json"
grep -q '"nn_forward_61_states/engine_bf16"' "$tmp/BENCH_nn.json"

echo "==> all checks passed"
