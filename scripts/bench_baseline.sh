#!/usr/bin/env bash
# Runs the model-facing criterion benches (nn_training + prediction +
# pipeline + trace + obs_plane) and collects per-benchmark median
# ns/iter into a JSON baseline file (median, not mean: on a timeshared
# vCPU a single preemption burst during sampling dominates the mean —
# one observed nn_forward group spread 134→328 µs within a run — while
# the median stays within a few percent run to run), then measures
# end-to-end serving throughput
# three times — bare, with the full telemetry plane (sampler, SLO
# engine, scrape endpoint) enabled, and with the decision journal
# enabled — so the observability overhead stays visible and bounded.
# Each leg reports its own qps AND p99 so the legs are demonstrably
# independent measurements; identical p99 values between legs are
# possible and honest (the loadgen histogram has ~6%-wide log-spaced
# buckets, so two runs whose true tails land in the same bucket report
# the same boundary, e.g. 565.248 µs).
#
# Usage:
#   scripts/bench_baseline.sh            # full run, writes BENCH_nn.json
#   BENCH_SMOKE=1 scripts/bench_baseline.sh
#       quick plumbing check: shrinks workloads (BENCH_SMOKE) and sample
#       counts (CRITERION_QUICK), writes to a temp file unless BENCH_OUT
#       is set — smoke numbers are not publishable.
#   BENCH_OUT=path scripts/bench_baseline.sh   # override output path
set -euo pipefail
cd "$(dirname "$0")/.."

smoke="${BENCH_SMOKE:-0}"
if [[ "$smoke" == "1" ]]; then
    export BENCH_SMOKE=1
    export CRITERION_QUICK=1
    out="${BENCH_OUT:-$(mktemp -t bench_nn_smoke.XXXXXX.json)}"
else
    out="${BENCH_OUT:-BENCH_nn.json}"
fi

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT
export CRITERION_JSON="$jsonl"

echo "==> cargo bench -p bench (nn_training, prediction, pipeline, trace, obs_plane)"
cargo bench --offline -p bench --bench nn_training
cargo bench --offline -p bench --bench prediction
cargo bench --offline -p bench --bench pipeline
cargo bench --offline -p bench --bench trace
cargo bench --offline -p bench --bench obs_plane

if [[ ! -s "$jsonl" ]]; then
    echo "error: no benchmark records were written to $jsonl" >&2
    exit 1
fi

# End-to-end serving throughput: a real `dvfs serve` daemon on an
# ephemeral port, hammered closed-loop by `dvfs loadgen` with pipelined
# connections (depth 4 — the wire shape the server's burst batching is
# built for; the loadgen aborts if replies ever come back out of
# order). The full run pushes 1M requests so the p99 comes from a
# well-populated histogram; the smoke run only proves the plumbing.
if [[ "$smoke" == "1" ]]; then
    serve_reqs=2000
else
    serve_reqs=1000000
fi
echo "==> dvfs serve throughput ($serve_reqs requests, closed loop)"
cargo build --release --offline --bin dvfs
servedir="$(mktemp -d)"
trap 'rm -f "$jsonl"; rm -rf "$servedir"' EXIT
DVFS_LOG=error target/release/dvfs train --stride 8 --out "$servedir/models.json" >/dev/null
DVFS_LOG=error target/release/dvfs serve --models "$servedir/models.json" \
    > "$servedir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$servedir/serve.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "error: dvfs serve never printed its address" >&2
    exit 1
fi
report="$(target/release/dvfs loadgen --addr "$addr" \
    --requests "$serve_reqs" --connections 8 --pipeline 4 --shutdown --json)"
wait "$serve_pid"
serve_qps="$(printf '%s' "$report" | sed -n 's/.*"qps":\([0-9.eE+-]*\).*/\1/p')"
serve_p99="$(printf '%s' "$report" | sed -n 's/.*"p99_us":\([0-9.eE+-]*\).*/\1/p')"
if [[ -z "$serve_qps" || -z "$serve_p99" ]]; then
    echo "error: loadgen report missing qps/p99: $report" >&2
    exit 1
fi

# Same workload with the telemetry plane fully on: a 200 ms sampler
# tick, the stock SLO set, and a scraper polling /metrics throughout.
# The full run bounds the plane's cost at the request p99. The margin is
# the repo-wide 30% noise tolerance (BENCH_TOLERANCE in
# bench_compare.sh), not the plane's actual amortized cost (<1%):
# at closed-loop saturation on the 1-core dev box the p99 itself swings
# ~20% between identical runs (tail amplification + ~6%-wide histogram
# buckets at this range), so a tighter gate fires on noise. The gate is
# for catching structural regressions — telemetry work landing on the
# request path — which show up as multiples, not percents.
echo "==> dvfs serve throughput with telemetry plane enabled ($serve_reqs requests)"
DVFS_LOG=error DVFS_TS_INTERVAL=0.2 target/release/dvfs serve \
    --models "$servedir/models.json" --telemetry-port 0 \
    > "$servedir/serve_telemetry.log" &
serve_pid=$!
addr=""
taddr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$servedir/serve_telemetry.log" | head -n 1)"
    taddr="$(sed -n 's/^telemetry on //p' "$servedir/serve_telemetry.log" | head -n 1)"
    [[ -n "$addr" && -n "$taddr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" || -z "$taddr" ]]; then
    echo "error: telemetry-enabled dvfs serve never printed its addresses" >&2
    exit 1
fi
(
    while target/release/dvfs scrape --addr "$taddr" >/dev/null 2>&1; do
        sleep 0.5
    done
) &
scrape_pid=$!
report_t="$(target/release/dvfs loadgen --addr "$addr" \
    --requests "$serve_reqs" --connections 8 --pipeline 4 --shutdown --json)"
wait "$serve_pid"
wait "$scrape_pid" || true
serve_qps_t="$(printf '%s' "$report_t" | sed -n 's/.*"qps":\([0-9.eE+-]*\).*/\1/p')"
serve_p99_t="$(printf '%s' "$report_t" | sed -n 's/.*"p99_us":\([0-9.eE+-]*\).*/\1/p')"
if [[ -z "$serve_qps_t" || -z "$serve_p99_t" ]]; then
    echo "error: telemetry-enabled loadgen report missing qps/p99: $report_t" >&2
    exit 1
fi
if [[ "$smoke" != "1" ]]; then
    awk -v base="$serve_p99" -v tel="$serve_p99_t" 'BEGIN {
        if (tel > base * 1.30) {
            printf "error: telemetry-enabled serve p99 %.1f us regresses >30%% " \
                   "over bare p99 %.1f us\n", tel, base > "/dev/stderr"
            exit 1
        }
    }'
fi

# Third leg: the decision journal on. The budget is 5% on the journal
# leg's p99 (the worker-side cost of journaling is an encode into a
# reused buffer plus one ring swap); on a single-core host the
# dedicated writer thread timeshares the serving core, so the budget
# widens ×1.6 there (same rationale as crates/bench/tests/
# journal_overhead.rs), and JOURNAL_BUDGET_SCALE relaxes it further on
# slow or noisy hosts.
echo "==> dvfs serve throughput with decision journal enabled ($serve_reqs requests)"
DVFS_LOG=error target/release/dvfs serve --models "$servedir/models.json" \
    --journal-dir "$servedir/journal" \
    > "$servedir/serve_journal.log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
    addr="$(sed -n 's/^listening on //p' "$servedir/serve_journal.log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "error: journal-enabled dvfs serve never printed its address" >&2
    exit 1
fi
report_j="$(target/release/dvfs loadgen --addr "$addr" \
    --requests "$serve_reqs" --connections 8 --pipeline 4 --shutdown --json)"
wait "$serve_pid"
serve_qps_j="$(printf '%s' "$report_j" | sed -n 's/.*"qps":\([0-9.eE+-]*\).*/\1/p')"
serve_p99_j="$(printf '%s' "$report_j" | sed -n 's/.*"p99_us":\([0-9.eE+-]*\).*/\1/p')"
if [[ -z "$serve_qps_j" || -z "$serve_p99_j" ]]; then
    echo "error: journal-enabled loadgen report missing qps/p99: $report_j" >&2
    exit 1
fi
if [[ "$smoke" != "1" ]]; then
    host_scale=1.0
    if [[ "$(nproc 2>/dev/null || echo 2)" -le 1 ]]; then
        host_scale=1.6
        echo "note: single hardware thread — journal budget widened x1.6"
    fi
    awk -v base="$serve_p99" -v jrn="$serve_p99_j" \
        -v host="$host_scale" -v scale="${JOURNAL_BUDGET_SCALE:-1.0}" 'BEGIN {
        budget = 1.05 * host * scale
        if (jrn > base * budget) {
            printf "error: journal-enabled serve p99 %.1f us exceeds bare " \
                   "p99 %.1f us x%.2f (set JOURNAL_BUDGET_SCALE to relax)\n", \
                   jrn, base, budget > "/dev/stderr"
            exit 1
        }
    }'
fi

# Fold the per-benchmark JSONL records into one {"name": median_ns}
# object, then splice in the serving numbers (qps and p99 µs, not
# ns/iter). The median is the per-benchmark statistic of record (see
# the header comment for why the mean is too noisy here).
awk '
BEGIN { print "{"; sep = "" }
/"name":/ {
    name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
    med = $0; sub(/.*"median_ns":/, "", med); sub(/[,}].*/, "", med)
    printf "%s  \"%s\": %s", sep, name, med
    sep = ",\n"
}
' "$jsonl" > "$out"
printf ',\n  "serve_qps": %s,\n  "serve_p99_us": %s,\n  "serve_qps_telemetry": %s,\n  "serve_p99_telemetry_us": %s,\n  "serve_qps_journal": %s,\n  "serve_p99_journal_us": %s\n}\n' \
    "$serve_qps" "$serve_p99" "$serve_qps_t" "$serve_p99_t" "$serve_qps_j" "$serve_p99_j" >> "$out"

# The batch-fused engine rows are the numbers the README performance
# table quotes — fail loudly if the bench stopped emitting them.
grep -q '"nn_forward_61_states/engine_f32"' "$out"
grep -q '"nn_forward_61_states/engine_bf16"' "$out"

echo "==> wrote $out"
cat "$out"
