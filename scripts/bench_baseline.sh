#!/usr/bin/env bash
# Runs the model-facing criterion benches (nn_training + prediction +
# pipeline + trace) and collects per-benchmark mean ns/iter into a JSON
# baseline file.
#
# Usage:
#   scripts/bench_baseline.sh            # full run, writes BENCH_nn.json
#   BENCH_SMOKE=1 scripts/bench_baseline.sh
#       quick plumbing check: shrinks workloads (BENCH_SMOKE) and sample
#       counts (CRITERION_QUICK), writes to a temp file unless BENCH_OUT
#       is set — smoke numbers are not publishable.
#   BENCH_OUT=path scripts/bench_baseline.sh   # override output path
set -euo pipefail
cd "$(dirname "$0")/.."

smoke="${BENCH_SMOKE:-0}"
if [[ "$smoke" == "1" ]]; then
    export BENCH_SMOKE=1
    export CRITERION_QUICK=1
    out="${BENCH_OUT:-$(mktemp -t bench_nn_smoke.XXXXXX.json)}"
else
    out="${BENCH_OUT:-BENCH_nn.json}"
fi

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT
export CRITERION_JSON="$jsonl"

echo "==> cargo bench -p bench (nn_training, prediction, pipeline, trace)"
cargo bench --offline -p bench --bench nn_training
cargo bench --offline -p bench --bench prediction
cargo bench --offline -p bench --bench pipeline
cargo bench --offline -p bench --bench trace

if [[ ! -s "$jsonl" ]]; then
    echo "error: no benchmark records were written to $jsonl" >&2
    exit 1
fi

# Fold the per-benchmark JSONL records into one {"name": mean_ns} object.
awk '
BEGIN { print "{"; sep = "" }
/"name":/ {
    name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
    mean = $0; sub(/.*"mean_ns":/, "", mean); sub(/[,}].*/, "", mean)
    printf "%s  \"%s\": %s", sep, name, mean
    sep = ",\n"
}
END { print "\n}" }
' "$jsonl" > "$out"

echo "==> wrote $out"
cat "$out"
