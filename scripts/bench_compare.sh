#!/usr/bin/env bash
# Benchmark regression gate: re-runs the criterion baseline suite and
# compares every benchmark's median ns/iter against the committed
# BENCH_nn.json. A benchmark fails the gate when it is slower than
# baseline by more than the tolerance factor.
#
# Usage:
#   scripts/bench_compare.sh             # full run, compare vs BENCH_nn.json
#   BENCH_TOLERANCE=1.5 scripts/bench_compare.sh
#       allow up to 1.5x the baseline median (default 1.30)
#   scripts/bench_compare.sh --refresh   # re-measure and overwrite BENCH_nn.json
#   BENCH_SMOKE=1 scripts/bench_compare.sh
#       plumbing check only: shrunken workloads, tolerance gate skipped
#       (smoke numbers are not comparable to the committed full run)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_nn.json"
tolerance="${BENCH_TOLERANCE:-1.30}"
smoke="${BENCH_SMOKE:-0}"

if [[ "${1:-}" == "--refresh" ]]; then
    echo "==> refreshing $baseline"
    BENCH_OUT="$baseline" scripts/bench_baseline.sh
    exit 0
fi

if [[ ! -s "$baseline" ]]; then
    echo "error: $baseline missing — run scripts/bench_compare.sh --refresh first" >&2
    exit 1
fi

fresh="$(mktemp -t bench_nn_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT
BENCH_OUT="$fresh" scripts/bench_baseline.sh

if [[ "$smoke" == "1" ]]; then
    echo "==> BENCH_SMOKE=1: skipping tolerance gate (smoke numbers are not comparable)"
    exit 0
fi

echo "==> comparing against $baseline (tolerance ${tolerance}x)"
awk -v tol="$tolerance" '
# Both files are the flat {"name": median_ns} shape bench_baseline.sh emits.
/"[^"]+": *[0-9]/ {
    name = $0; sub(/^[^"]*"/, "", name); sub(/".*/, "", name)
    med = $0; sub(/.*: */, "", med); sub(/[,}].*/, "", med)
    if (FNR == NR) { base[name] = med + 0; next }
    cur[name] = med + 0
}
END {
    status = 0
    for (name in base) {
        if (!(name in cur)) {
            printf "MISSING  %-45s (in baseline, not re-measured)\n", name
            status = 1
            continue
        }
        # serve_qps is a throughput (higher is better); everything else
        # is a duration where higher is worse.
        if (name == "serve_qps")
            ratio = base[name] / cur[name]
        else
            ratio = cur[name] / base[name]
        verdict = (ratio > tol) ? "FAIL" : "ok"
        if (ratio > tol) status = 1
        printf "%-8s %-45s %12.1f -> %12.1f ns  (%.2fx)\n", \
            verdict, name, base[name], cur[name], ratio
    }
    for (name in cur) if (!(name in base))
        printf "NEW      %-45s %27.1f ns  (no baseline — refresh to record)\n", name, cur[name]
    exit status
}
' "$baseline" "$fresh"

# Absolute serving gates on top of the relative one: the committed
# baseline must keep clearing the PR-9 targets (3x the pre-sharded
# 11 127 req/s, p99 under 600 µs). SERVE_BUDGET_SCALE relaxes both on
# slow hosts (floor divided, ceiling multiplied), the same escape hatch
# TRACE_BUDGET_SCALE provides for the trace-overhead guard.
serve_scale="${SERVE_BUDGET_SCALE:-1}"
awk -v scale="$serve_scale" '
/"serve_qps":/    { qps = $0; sub(/.*: */, "", qps); sub(/[,}].*/, "", qps) }
/"serve_p99_us":/ { p99 = $0; sub(/.*: */, "", p99); sub(/[,}].*/, "", p99) }
END {
    floor = 33382 / scale
    ceiling = 600 * scale
    if (qps == "" || p99 == "") {
        print "error: fresh baseline is missing serve_qps/serve_p99_us" > "/dev/stderr"
        exit 1
    }
    status = 0
    if (qps + 0 < floor) {
        printf "FAIL     serve_qps %.0f req/s below floor %.0f " \
               "(set SERVE_BUDGET_SCALE to relax)\n", qps, floor
        status = 1
    } else {
        printf "ok       serve_qps %.0f req/s (floor %.0f)\n", qps, floor
    }
    if (p99 + 0 > ceiling) {
        printf "FAIL     serve_p99_us %.0f us above ceiling %.0f " \
               "(set SERVE_BUDGET_SCALE to relax)\n", p99, ceiling
        status = 1
    } else {
        printf "ok       serve_p99_us %.0f us (ceiling %.0f)\n", p99, ceiling
    }
    exit status
}
' "$fresh"

echo "==> bench regression gate passed"
