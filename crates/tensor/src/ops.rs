//! Elementwise and BLAS-1 style operations.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;

/// Returns `a + b` elementwise.
pub fn add(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("add", a, b, |x, y| x + y)
}

/// Returns `a - b` elementwise.
pub fn sub(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("sub", a, b, |x, y| x - y)
}

/// Returns the Hadamard (elementwise) product `a ⊙ b`.
pub fn hadamard(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("hadamard", a, b, |x, y| x * y)
}

/// Returns `a * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f64) -> Matrix {
    a.map(|x| x * s)
}

/// In-place `a += alpha * b` (the classic axpy), shape checked.
pub fn axpy(alpha: f64, b: &Matrix, a: &mut Matrix) -> TensorResult<()> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("axpy", a.shape(), b.shape()));
    }
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Adds a `1 x cols` row-vector `bias` to every row of `a` (broadcast).
pub fn add_row_broadcast(a: &Matrix, bias: &Matrix) -> TensorResult<Matrix> {
    if bias.rows() != 1 || bias.cols() != a.cols() {
        return Err(ShapeError::new(
            "add_row_broadcast",
            a.shape(),
            bias.shape(),
        ));
    }
    let mut out = a.clone();
    let b = bias.as_slice();
    let cols = a.cols();
    for r in 0..a.rows() {
        let row = out.row_mut(r);
        for c in 0..cols {
            row[c] += b[c];
        }
    }
    Ok(out)
}

/// Sums the rows of `a` into a `1 x cols` row vector.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        let row = a.row(r);
        let acc = out.row_mut(0);
        for c in 0..a.cols() {
            acc[c] += row[c];
        }
    }
    out
}

fn zip_with(
    op: &'static str,
    a: &Matrix,
    b: &Matrix,
    f: impl Fn(f64, f64) -> f64,
) -> TensorResult<Matrix> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(op, a.shape(), b.shape()));
    }
    let data: Vec<f64> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn scale_multiplies_scalar() {
        let a = m(1, 2, &[1.5, -2.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[3.0, -4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 3.0]);
        axpy(0.5, &b, &mut a).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        let out = add_row_broadcast(&a, &b).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_rejects_bad_bias_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        assert!(add_row_broadcast(&a, &b).is_err());
    }

    #[test]
    fn sum_rows_collapses() {
        let a = m(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(sum_rows(&a).as_slice(), &[6.0, 60.0]);
    }
}
