//! Elementwise and BLAS-1 style operations.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;

/// Returns `a + b` elementwise.
pub fn add(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("add", a, b, |x, y| x + y)
}

/// Returns `a - b` elementwise.
pub fn sub(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("sub", a, b, |x, y| x - y)
}

/// Returns the Hadamard (elementwise) product `a ⊙ b`.
pub fn hadamard(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    zip_with("hadamard", a, b, |x, y| x * y)
}

/// Returns `a * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f64) -> Matrix {
    a.map(|x| x * s)
}

/// In-place `a += alpha * b` (the classic axpy), shape checked.
pub fn axpy(alpha: f64, b: &Matrix, a: &mut Matrix) -> TensorResult<()> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("axpy", a.shape(), b.shape()));
    }
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
    Ok(())
}

/// In-place `a += b` elementwise, shape checked.
///
/// The accumulation kernel of the fixed-shard gradient reduction: each
/// combine step of `crate::reduce::tree_combine` folds one shard's
/// partial sums into another with exactly this left-to-right elementwise
/// add, so serial and parallel reductions execute the identical sequence
/// of floating-point operations.
pub fn add_assign(a: &mut Matrix, b: &Matrix) -> TensorResult<()> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("add_assign", a.shape(), b.shape()));
    }
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
    Ok(())
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Adds a `1 x cols` row-vector `bias` to every row of `a` (broadcast).
pub fn add_row_broadcast(a: &Matrix, bias: &Matrix) -> TensorResult<Matrix> {
    if bias.rows() != 1 || bias.cols() != a.cols() {
        return Err(ShapeError::new(
            "add_row_broadcast",
            a.shape(),
            bias.shape(),
        ));
    }
    let mut out = a.clone();
    let b = bias.as_slice();
    let cols = a.cols();
    for r in 0..a.rows() {
        let row = out.row_mut(r);
        for c in 0..cols {
            row[c] += b[c];
        }
    }
    Ok(out)
}

/// Sums the rows of `a` into a `1 x cols` row vector.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        let row = a.row(r);
        let acc = out.row_mut(0);
        for c in 0..a.cols() {
            acc[c] += row[c];
        }
    }
    out
}

/// Adds a `1 x cols` row-vector `bias` to every row of `a` in place.
/// Allocation-free sibling of [`add_row_broadcast`].
pub fn add_row_broadcast_into(a: &mut Matrix, bias: &Matrix) -> TensorResult<()> {
    if bias.rows() != 1 || bias.cols() != a.cols() {
        return Err(ShapeError::new(
            "add_row_broadcast",
            a.shape(),
            bias.shape(),
        ));
    }
    let b = bias.as_slice();
    for r in 0..a.rows() {
        for (x, &bv) in a.row_mut(r).iter_mut().zip(b) {
            *x += bv;
        }
    }
    Ok(())
}

/// Multiplies every element of `a` by `s` in place. Bitwise-identical to
/// [`scale`] (same per-element `x * s`).
pub fn scale_in_place(a: &mut Matrix, s: f64) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// Sums the rows of `a` into `out`, which must be `1 x a.cols()`.
/// Allocation-free sibling of [`sum_rows`]; accumulates rows top-to-bottom
/// from `0.0`, so results are bitwise-identical.
pub fn sum_rows_into(a: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if out.rows() != 1 || out.cols() != a.cols() {
        return Err(ShapeError::new("sum_rows_into", (1, a.cols()), out.shape()));
    }
    out.as_mut_slice().fill(0.0);
    for r in 0..a.rows() {
        let row = a.row(r);
        let acc = out.row_mut(0);
        for (a_c, &r_c) in acc.iter_mut().zip(row) {
            *a_c += r_c;
        }
    }
    Ok(())
}

/// Copies the rows of `src` selected by `indices` (in order, duplicates
/// allowed) into `out`, resizing it to `indices.len() x src.cols()`.
/// Allocation-free sibling of [`Matrix::select_rows`] once `out` has
/// capacity for the largest gather.
///
/// # Panics
/// Panics if any index is out of bounds (same contract as `select_rows`).
pub fn gather_rows_into(src: &Matrix, indices: &[usize], out: &mut Matrix) {
    out.resize_to(indices.len(), src.cols());
    for (slot, &i) in indices.iter().enumerate() {
        out.row_mut(slot).copy_from_slice(src.row(i));
    }
}

fn zip_with(
    op: &'static str,
    a: &Matrix,
    b: &Matrix,
    f: impl Fn(f64, f64) -> f64,
) -> TensorResult<Matrix> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(op, a.shape(), b.shape()));
    }
    let data: Vec<f64> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn scale_multiplies_scalar() {
        let a = m(1, 2, &[1.5, -2.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[3.0, -4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 3.0]);
        axpy(0.5, &b, &mut a).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        let out = add_row_broadcast(&a, &b).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_rejects_bad_bias_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        assert!(add_row_broadcast(&a, &b).is_err());
    }

    #[test]
    fn sum_rows_collapses() {
        let a = m(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(sum_rows(&a).as_slice(), &[6.0, 60.0]);
    }

    #[test]
    fn broadcast_into_matches_allocating() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        let expect = add_row_broadcast(&a, &b).unwrap();
        let mut got = a.clone();
        add_row_broadcast_into(&mut got, &b).unwrap();
        assert_eq!(got, expect);
        let mut bad = Matrix::zeros(2, 3);
        assert!(add_row_broadcast_into(&mut bad, &b).is_err());
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let a = m(1, 3, &[1.5, -2.0, 0.25]);
        let expect = scale(&a, -3.0);
        let mut got = a.clone();
        scale_in_place(&mut got, -3.0);
        assert_eq!(got, expect);
    }

    #[test]
    fn sum_rows_into_matches_sum_rows() {
        let a = m(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let mut out = Matrix::full(1, 2, f64::NAN);
        sum_rows_into(&a, &mut out).unwrap();
        assert_eq!(out, sum_rows(&a));
        let mut bad = Matrix::zeros(2, 2);
        assert!(sum_rows_into(&a, &mut bad).is_err());
    }

    #[test]
    fn gather_rows_into_matches_select_rows() {
        let src = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = Matrix::zeros(8, 2); // oversized: gather shrinks it
        let ptr = out.as_slice().as_ptr();
        gather_rows_into(&src, &[2, 0, 2], &mut out);
        assert_eq!(out, src.select_rows(&[2, 0, 2]));
        assert_eq!(
            out.as_slice().as_ptr(),
            ptr,
            "gather within capacity must not reallocate"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_into_panics_on_oob() {
        let src = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = Matrix::zeros(1, 2);
        gather_rows_into(&src, &[5], &mut out);
    }
}
