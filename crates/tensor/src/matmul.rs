//! Matrix multiplication kernels: naive, register-strip serial, and
//! parallel.
//!
//! The serial kernel accumulates a 16-wide strip of each output row in
//! registers across the whole shared dimension, so the output is written
//! once instead of read-modified-written per term; the parallel kernel
//! splits output rows across the rayon thread pool. Both produce
//! bitwise-identical results to the naive kernel (same accumulation order
//! per element), which the property tests rely on.
//!
//! Every product also has a `_into` variant that writes into a
//! caller-provided output buffer instead of allocating — the steady-state
//! training and inference hot paths use only those. Two transpose-free
//! kernels, [`matmul_at_b_into`] (`Aᵀ·B`) and [`matmul_a_bt_into`]
//! (`A·Bᵀ`), read their operands in stored row-major layout so backprop
//! never materializes a transposed matrix. All kernels accumulate each
//! output element over the shared dimension in ascending order, so every
//! entry point is bitwise-identical to the naive oracle.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Minimum number of output rows before [`matmul`] bothers going parallel.
const PAR_ROW_THRESHOLD: usize = 64;

/// Minimum multiply-add count before the `_into` kernels go parallel. The
/// rayon shim spawns scoped threads per call, so parallelism has to
/// amortize thread startup (tens of microseconds), not just row count —
/// a 64-row layer matmul is far cheaper serial.
const PAR_WORK_THRESHOLD: usize = 1 << 23;

/// Computes `a @ b`, choosing the parallel kernel for large outputs and the
/// blocked serial kernel otherwise.
pub fn matmul(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    if a.rows() >= PAR_ROW_THRESHOLD {
        Ok(matmul_parallel_unchecked(a, b))
    } else {
        Ok(matmul_blocked_unchecked(a, b))
    }
}

/// Reference triple-loop implementation. Slow; kept for testing.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            let brow = b.row(p);
            let orow = out.row_mut(i);
            for j in 0..n {
                orow[j] += aip * brow[j];
            }
        }
    }
    Ok(out)
}

/// Serial register-strip implementation (kept under its historical name).
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    Ok(matmul_blocked_unchecked(a, b))
}

/// Row-parallel implementation on the rayon pool.
pub fn matmul_parallel(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    Ok(matmul_parallel_unchecked(a, b))
}

/// Computes `a @ x` where `x` is a length-`cols` vector, returning a vector.
pub fn matvec(a: &Matrix, x: &[f64]) -> TensorResult<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(ShapeError::new("matvec", a.shape(), (x.len(), 1)));
    }
    Ok(a.rows_iter()
        .map(|row| row.iter().zip(x).map(|(&p, &q)| p * q).sum())
        .collect())
}

/// Computes `a @ b` into `out` without allocating. `out` must already have
/// shape `(a.rows, b.cols)`; its prior contents are overwritten.
///
/// Bitwise-identical to [`matmul`] / [`matmul_naive`]: every output element
/// accumulates over the shared dimension in ascending order starting from
/// `0.0`. Goes parallel only when the multiply-add count amortizes thread
/// startup, so training-sized products stay serial and allocation-free.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    check(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    if out.shape() != (m, n) {
        return Err(ShapeError::new("matmul_into(out)", (m, n), out.shape()));
    }
    out.as_mut_slice().fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    if m >= PAR_ROW_THRESHOLD && m * k * n >= PAR_WORK_THRESHOLD {
        let band = (m / rayon::current_num_threads().max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(band * n)
            .enumerate()
            .for_each(|(chunk_idx, out_chunk)| {
                let i0 = chunk_idx * band;
                let rows_here = out_chunk.len() / n;
                block_rows_into(a, b, out_chunk, i0, rows_here, k, n);
            });
    } else {
        block_rows_into(a, b, out.as_mut_slice(), 0, m, k, n);
    }
    Ok(())
}

/// Computes `Aᵀ @ B` into `out` without materializing the transpose: both
/// operands are read in their stored row-major layout. `a` is `(r, m)`,
/// `b` is `(r, n)`, `out` must be `(m, n)`.
///
/// The kernel walks `p` (the shared leading dimension) in the outer loop
/// and accumulates the rank-1 update `a[p]ᵀ · b[p]`, so each output element
/// sums over `p` in ascending order — bitwise-identical to
/// `matmul(&a.transpose(), &b)`.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if a.rows() != b.rows() {
        return Err(ShapeError::new("matmul_at_b", a.shape(), b.shape()));
    }
    let (r, m) = a.shape();
    let n = b.cols();
    if out.shape() != (m, n) {
        return Err(ShapeError::new("matmul_at_b(out)", (m, n), out.shape()));
    }
    out.as_mut_slice().fill(0.0);
    if m == 0 || n == 0 || r == 0 {
        return Ok(());
    }
    if m >= PAR_ROW_THRESHOLD && m * r * n >= PAR_WORK_THRESHOLD {
        let band = (m / rayon::current_num_threads().max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(band * n)
            .enumerate()
            .for_each(|(chunk_idx, out_chunk)| {
                let i0 = chunk_idx * band;
                let rows_here = out_chunk.len() / n;
                at_b_rows_into(a, b, out_chunk, i0, rows_here, r, n);
            });
    } else {
        at_b_rows_into(a, b, out.as_mut_slice(), 0, m, r, n);
    }
    Ok(())
}

/// Computes `A @ Bᵀ` into `out` without materializing the transpose: both
/// operands are read in their stored row-major layout. `a` is `(m, k)`,
/// `b` is `(n, k)`, `out` must be `(m, n)`.
///
/// Each output element is the dot product of two stored rows, accumulated
/// over `k` in ascending order — bitwise-identical to
/// `matmul(&a, &b.transpose())`.
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_a_bt", a.shape(), b.shape()));
    }
    let m = a.rows();
    let n = b.rows();
    if out.shape() != (m, n) {
        return Err(ShapeError::new("matmul_a_bt(out)", (m, n), out.shape()));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let k = a.cols();
    let ncols = n;
    if m >= PAR_ROW_THRESHOLD && m * k * n >= PAR_WORK_THRESHOLD {
        let band = (m / rayon::current_num_threads().max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(band * ncols)
            .enumerate()
            .for_each(|(chunk_idx, out_chunk)| {
                let i0 = chunk_idx * band;
                let rows_here = out_chunk.len() / ncols;
                a_bt_rows_into(a, b, out_chunk, i0, rows_here, ncols);
            });
    } else {
        a_bt_rows_into(a, b, out.as_mut_slice(), 0, m, ncols);
    }
    Ok(())
}

/// Computes `a @ x` into `out` without allocating; `out.len()` must equal
/// `a.rows()`. Same per-row accumulation order as [`matvec`].
pub fn matvec_into(a: &Matrix, x: &[f64], out: &mut [f64]) -> TensorResult<()> {
    if a.cols() != x.len() {
        return Err(ShapeError::new("matvec", a.shape(), (x.len(), 1)));
    }
    if out.len() != a.rows() {
        return Err(ShapeError::new(
            "matvec(out)",
            (a.rows(), 1),
            (out.len(), 1),
        ));
    }
    for (o, row) in out.iter_mut().zip(a.rows_iter()) {
        *o = row.iter().zip(x).map(|(&p, &q)| p * q).sum();
    }
    Ok(())
}

/// Computes `out = f(a @ b + bias)` in a single pass, broadcasting the
/// length-`n` `bias` row and applying the elementwise map `f` while the
/// register-strip accumulators spill — the output is written exactly
/// once and never re-read. This is the fused affine+activation kernel
/// behind `Dense::apply_into`.
///
/// Bitwise-identical to `matmul_into` followed by a separate
/// `out[i][j] = f(out[i][j] + bias[j])` pass: the accumulation order per
/// element is unchanged and the bias add still happens after the full
/// sum, only the intermediate store/reload disappears. Parallelizes over
/// row bands with the same thresholds as [`matmul_into`].
pub fn matmul_bias_map_into<F>(
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    out: &mut Matrix,
    f: F,
) -> TensorResult<()>
where
    F: Fn(f64) -> f64 + Copy + Sync,
{
    check(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    if out.shape() != (m, n) {
        return Err(ShapeError::new(
            "matmul_bias_map_into(out)",
            (m, n),
            out.shape(),
        ));
    }
    if bias.len() != n {
        return Err(ShapeError::new(
            "matmul_bias_map_into(bias)",
            (1, n),
            (1, bias.len()),
        ));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        for r in 0..m {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(bias) {
                *o = f(bv);
            }
        }
        return Ok(());
    }
    if m >= PAR_ROW_THRESHOLD && m * k * n >= PAR_WORK_THRESHOLD {
        let band = (m / rayon::current_num_threads().max(1)).max(1);
        out.as_mut_slice()
            .par_chunks_mut(band * n)
            .enumerate()
            .for_each(|(chunk_idx, out_chunk)| {
                let i0 = chunk_idx * band;
                let rows_here = out_chunk.len() / n;
                block_rows_bias_map_into(a, b, bias, out_chunk, i0, rows_here, k, n, f);
            });
    } else {
        block_rows_bias_map_into(a, b, bias, out.as_mut_slice(), 0, m, k, n, f);
    }
    Ok(())
}

/// Computes the single-row fused affine `out = f(xᵀ @ a + bias)` without
/// allocating — the batched kernel of [`matmul_bias_map_into`] restricted
/// to one row, used by the single-sample inference path.
///
/// Unlike [`vecmat_into`] (rank-1 updates that read-modify-write `out`
/// per shared-dim step), this strips the output into register
/// accumulators and writes each element once; each element still sums
/// over `a`'s rows in ascending order, so the affine part is
/// bitwise-identical to `vecmat_into` + a separate bias/map pass.
pub fn vecmat_bias_map_into<F>(
    x: &[f64],
    a: &Matrix,
    bias: &[f64],
    out: &mut [f64],
    f: F,
) -> TensorResult<()>
where
    F: Fn(f64) -> f64,
{
    if x.len() != a.rows() {
        return Err(ShapeError::new("vecmat_bias_map", (1, x.len()), a.shape()));
    }
    let n = a.cols();
    if out.len() != n {
        return Err(ShapeError::new(
            "vecmat_bias_map(out)",
            (1, n),
            (1, out.len()),
        ));
    }
    if bias.len() != n {
        return Err(ShapeError::new(
            "vecmat_bias_map(bias)",
            (1, n),
            (1, bias.len()),
        ));
    }
    let mut j = 0;
    while j + STRIP <= n {
        let mut acc = [0.0f64; STRIP];
        for (&xp, row) in x.iter().zip(a.rows_iter()) {
            let arow = &row[j..j + STRIP];
            for (acw, &v) in acc.iter_mut().zip(arow) {
                *acw += xp * v;
            }
        }
        for (i, &s) in acc.iter().enumerate() {
            out[j + i] = f(s + bias[j + i]);
        }
        j += STRIP;
    }
    for (jj, o) in out.iter_mut().enumerate().skip(j) {
        let mut s = 0.0f64;
        for (&xp, row) in x.iter().zip(a.rows_iter()) {
            s += xp * row[jj];
        }
        *o = f(s + bias[jj]);
    }
    Ok(())
}

/// Computes the row vector `xᵀ @ a` into `out` without allocating;
/// `x.len()` must equal `a.rows()` and `out.len()` must equal `a.cols()`.
///
/// Accumulates over `a`'s rows in ascending order starting from `0.0`, so
/// the result is bitwise-identical to `matmul(&Matrix::row_vector(x), &a)`.
pub fn vecmat_into(x: &[f64], a: &Matrix, out: &mut [f64]) -> TensorResult<()> {
    if x.len() != a.rows() {
        return Err(ShapeError::new("vecmat", (1, x.len()), a.shape()));
    }
    if out.len() != a.cols() {
        return Err(ShapeError::new(
            "vecmat(out)",
            (1, a.cols()),
            (1, out.len()),
        ));
    }
    out.fill(0.0);
    for (&xp, row) in x.iter().zip(a.rows_iter()) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += xp * v;
        }
    }
    Ok(())
}

fn check(a: &Matrix, b: &Matrix) -> TensorResult<()> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    Ok(())
}

fn matmul_blocked_unchecked(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    block_rows_into(a, b, out.as_mut_slice(), 0, m, k, n);
    out
}

fn matmul_parallel_unchecked(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    // Split the output into contiguous row bands, one rayon task per band.
    let band = (m / rayon::current_num_threads().max(1)).max(1);
    out.as_mut_slice()
        .par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(chunk_idx, out_chunk)| {
            let i0 = chunk_idx * band;
            let rows_here = out_chunk.len() / n;
            block_rows_into(a, b, out_chunk, i0, rows_here, k, n);
        });
    out
}

/// Width of the register-accumulated output strip used by the serial
/// kernels: sixteen doubles span four AVX registers (eight SSE2), wide
/// enough to hide FP-add latency with independent accumulation chains
/// while still fitting the register file (32 spills, measured). Keeping
/// the strip in registers across the whole shared dimension removes the
/// per-element load/store of the output that otherwise bottlenecks the
/// store port.
const STRIP: usize = 16;

/// Computes rows `[i0, i0 + rows_here)` of `a @ b` into `out_chunk`
/// (row-major, `rows_here * n` elements; fully overwritten).
///
/// Each output element starts from `0.0` and accumulates over `p` in
/// ascending order — the register strip only changes *where* the running
/// sum lives, not the order of additions, so results are bit-for-bit
/// equal to the naive kernel.
fn block_rows_into(
    a: &Matrix,
    b: &Matrix,
    out_chunk: &mut [f64],
    i0: usize,
    rows_here: usize,
    k: usize,
    n: usize,
) {
    for local_i in 0..rows_here {
        let arow = a.row(i0 + local_i);
        debug_assert_eq!(arow.len(), k);
        let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j + STRIP <= n {
            let mut acc = [0.0f64; STRIP];
            // No zero-skip: inputs are assumed dense (activations and
            // weights almost never contain exact zeros), so the branch
            // would only add a mispredict per element.
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b.row(p)[j..j + STRIP];
                for (acw, &bv) in acc.iter_mut().zip(brow) {
                    *acw += aip * bv;
                }
            }
            orow[j..j + STRIP].copy_from_slice(&acc);
            j += STRIP;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            let mut s = 0.0f64;
            for (p, &aip) in arow.iter().enumerate() {
                s += aip * b.row(p)[jj];
            }
            *o = s;
        }
    }
}

/// Fused sibling of [`block_rows_into`]: computes rows
/// `[i0, i0 + rows_here)` of `f(a @ b + bias)` into `out_chunk`. The
/// strip accumulators are identical; `bias[j]` is added and `f` applied
/// as each element spills, so the chunk is written exactly once.
#[allow(clippy::too_many_arguments)]
fn block_rows_bias_map_into<F>(
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    out_chunk: &mut [f64],
    i0: usize,
    rows_here: usize,
    k: usize,
    n: usize,
    f: F,
) where
    F: Fn(f64) -> f64,
{
    for local_i in 0..rows_here {
        let arow = a.row(i0 + local_i);
        debug_assert_eq!(arow.len(), k);
        let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j + STRIP <= n {
            let mut acc = [0.0f64; STRIP];
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b.row(p)[j..j + STRIP];
                for (acw, &bv) in acc.iter_mut().zip(brow) {
                    *acw += aip * bv;
                }
            }
            for (i, &s) in acc.iter().enumerate() {
                orow[j + i] = f(s + bias[j + i]);
            }
            j += STRIP;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            let mut s = 0.0f64;
            for (p, &aip) in arow.iter().enumerate() {
                s += aip * b.row(p)[jj];
            }
            *o = f(s + bias[jj]);
        }
    }
}

/// Computes rows `[i0, i0 + rows_here)` of `aᵀ @ b` into `out_chunk`
/// (row-major, `rows_here * n` elements; fully overwritten). `a` is
/// `(r, m)`, `b` is `(r, n)`; output row `i` of the chunk is column
/// `i0 + i` of `a` dotted against `b`, accumulated over `p` in ascending
/// order (register strip as in [`block_rows_into`], same bit-exactness
/// argument).
fn at_b_rows_into(
    a: &Matrix,
    b: &Matrix,
    out_chunk: &mut [f64],
    i0: usize,
    rows_here: usize,
    r: usize,
    n: usize,
) {
    for local_i in 0..rows_here {
        let col = i0 + local_i;
        let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j + STRIP <= n {
            let mut acc = [0.0f64; STRIP];
            for p in 0..r {
                let api = a.row(p)[col];
                let brow = &b.row(p)[j..j + STRIP];
                for (acw, &bv) in acc.iter_mut().zip(brow) {
                    *acw += api * bv;
                }
            }
            orow[j..j + STRIP].copy_from_slice(&acc);
            j += STRIP;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            let mut s = 0.0f64;
            for p in 0..r {
                s += a.row(p)[col] * b.row(p)[jj];
            }
            *o = s;
        }
    }
}

/// Computes rows `[i0, i0 + rows_here)` of `a @ bᵀ` into `out_chunk`
/// (row-major, `rows_here * n` elements; fully overwritten). `a` is
/// `(m, k)`, `b` is `(n, k)`; each output element is a row-row dot
/// product accumulated over `k` in ascending order.
///
/// A 2×4 block of output elements (two `a` rows × four `b` rows) is
/// computed concurrently: the eight independent accumulation chains hide
/// the FP-add latency of a single serial dot product, and each loaded
/// operand value feeds several chains. Each element's own chain still
/// sums over `k` in ascending order, so the result is bit-for-bit
/// unchanged.
fn a_bt_rows_into(
    a: &Matrix,
    b: &Matrix,
    out_chunk: &mut [f64],
    i0: usize,
    rows_here: usize,
    n: usize,
) {
    let mut local_i = 0;
    while local_i + 2 <= rows_here {
        let arow0 = a.row(i0 + local_i);
        let arow1 = a.row(i0 + local_i + 1);
        let k = arow0.len();
        let (orow0, rest) = out_chunk[local_i * n..(local_i + 2) * n].split_at_mut(n);
        let orow1 = rest;
        let mut j = 0;
        while j + 8 <= n {
            let b0 = &b.row(j)[..k];
            let b1 = &b.row(j + 1)[..k];
            let b2 = &b.row(j + 2)[..k];
            let b3 = &b.row(j + 3)[..k];
            let b4 = &b.row(j + 4)[..k];
            let b5 = &b.row(j + 5)[..k];
            let b6 = &b.row(j + 6)[..k];
            let b7 = &b.row(j + 7)[..k];
            let mut s = [0.0f64; 16];
            for idx in 0..k {
                let a0 = arow0[idx];
                let a1 = arow1[idx];
                s[0] += a0 * b0[idx];
                s[1] += a0 * b1[idx];
                s[2] += a0 * b2[idx];
                s[3] += a0 * b3[idx];
                s[4] += a0 * b4[idx];
                s[5] += a0 * b5[idx];
                s[6] += a0 * b6[idx];
                s[7] += a0 * b7[idx];
                s[8] += a1 * b0[idx];
                s[9] += a1 * b1[idx];
                s[10] += a1 * b2[idx];
                s[11] += a1 * b3[idx];
                s[12] += a1 * b4[idx];
                s[13] += a1 * b5[idx];
                s[14] += a1 * b6[idx];
                s[15] += a1 * b7[idx];
            }
            orow0[j..j + 8].copy_from_slice(&s[..8]);
            orow1[j..j + 8].copy_from_slice(&s[8..]);
            j += 8;
        }
        for jj in j..n {
            let brow = &b.row(jj)[..k];
            let (mut s0, mut s1) = (0.0f64, 0.0f64);
            for idx in 0..k {
                s0 += arow0[idx] * brow[idx];
                s1 += arow1[idx] * brow[idx];
            }
            orow0[jj] = s0;
            orow1[jj] = s1;
        }
        local_i += 2;
    }
    // Odd trailing row: plain 4-column interleave.
    if local_i < rows_here {
        let arow = a.row(i0 + local_i);
        let k = arow.len();
        let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b.row(j)[..k];
            let b1 = &b.row(j + 1)[..k];
            let b2 = &b.row(j + 2)[..k];
            let b3 = &b.row(j + 3)[..k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (idx, &av) in arow.iter().enumerate() {
                s0 += av * b0[idx];
                s1 += av * b1[idx];
                s2 += av * b2[idx];
                s3 += av * b3[idx];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += 4;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            *o = arow.iter().zip(b.row(jj)).map(|(&p, &q)| p * q).sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(5, 5, -1.0, 1.0, &mut rng);
        let i = Matrix::identity(5);
        assert_close(&matmul(&a, &i).unwrap(), &a, 0.0);
        assert_close(&matmul(&i, &a).unwrap(), &a, 0.0);
    }

    #[test]
    fn kernels_agree_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m_, k_, n_) in &[(1, 1, 1), (3, 5, 7), (65, 70, 33), (130, 64, 65)] {
            let a = init::uniform(m_, k_, -1.0, 1.0, &mut rng);
            let b = init::uniform(k_, n_, -1.0, 1.0, &mut rng);
            let naive = matmul_naive(&a, &b).unwrap();
            let blocked = matmul_blocked(&a, &b).unwrap();
            let parallel = matmul_parallel(&a, &b).unwrap();
            assert_close(&naive, &blocked, 1e-10);
            assert_close(&naive, &parallel, 1e-10);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, 2.0];
        let v = matvec(&a, &x).unwrap();
        assert_eq!(v, vec![8.0, 18.5]);
    }

    #[test]
    fn matvec_shape_check() {
        let a = Matrix::zeros(2, 3);
        assert!(matvec(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_product() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m_, k_, n_) in &[(1, 1, 1), (3, 5, 7), (64, 3, 64), (130, 64, 65)] {
            let a = init::uniform(m_, k_, -1.0, 1.0, &mut rng);
            let b = init::uniform(k_, n_, -1.0, 1.0, &mut rng);
            let expect = matmul(&a, &b).unwrap();
            let mut out = Matrix::full(m_, n_, f64::NAN);
            matmul_into(&a, &b, &mut out).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice());
        }
    }

    #[test]
    fn into_kernels_reject_bad_out_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut bad = Matrix::zeros(2, 3);
        assert!(matmul_into(&a, &b, &mut bad).is_err());
        let at = Matrix::zeros(3, 2);
        assert!(matmul_at_b_into(&at, &b, &mut bad).is_err());
        let bt = Matrix::zeros(4, 3);
        assert!(matmul_a_bt_into(&a, &bt, &mut bad).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, 2.0];
        let mut out = [f64::NAN; 2];
        matvec_into(&a, &x, &mut out).unwrap();
        assert_eq!(out.to_vec(), matvec(&a, &x).unwrap());
        assert!(matvec_into(&a, &x, &mut [0.0; 3]).is_err());
        assert!(matvec_into(&a, &[1.0], &mut out).is_err());
    }

    #[test]
    fn vecmat_into_matches_row_vector_matmul() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = init::uniform(5, 4, -1.0, 1.0, &mut rng);
        let x = [0.3, -1.2, 2.5, 0.0, 7.75];
        let mut out = [f64::NAN; 4];
        vecmat_into(&x, &a, &mut out).unwrap();
        let expect = matmul(&Matrix::row_vector(&x), &a).unwrap();
        assert_eq!(&out[..], expect.as_slice());
        assert!(vecmat_into(&x[..3], &a, &mut out).is_err());
        assert!(vecmat_into(&x, &a, &mut [0.0; 3]).is_err());
    }

    #[test]
    fn matmul_bias_map_into_matches_unfused_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(m_, k_, n_) in &[
            (1, 1, 1),
            (3, 5, 7),
            (61, 3, 64),
            (61, 64, 64),
            (130, 64, 65),
        ] {
            let a = init::uniform(m_, k_, -1.0, 1.0, &mut rng);
            let b = init::uniform(k_, n_, -1.0, 1.0, &mut rng);
            let bias: Vec<f64> = (0..n_).map(|j| 0.01 * j as f64 - 0.2).collect();
            let act = |z: f64| if z > 0.0 { z } else { 0.5 * (z.exp() - 1.0) };
            let mut expect = Matrix::full(m_, n_, f64::NAN);
            matmul_into(&a, &b, &mut expect).unwrap();
            for r in 0..m_ {
                for (o, &bv) in expect.row_mut(r).iter_mut().zip(&bias) {
                    *o = act(*o + bv);
                }
            }
            let mut fused = Matrix::full(m_, n_, f64::NAN);
            matmul_bias_map_into(&a, &b, &bias, &mut fused, act).unwrap();
            assert_eq!(fused.as_slice(), expect.as_slice(), "({m_},{k_},{n_})");
        }
    }

    #[test]
    fn matmul_bias_map_into_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut bad = Matrix::zeros(2, 3);
        assert!(matmul_bias_map_into(&a, &b, &[0.0; 4], &mut bad, |z| z).is_err());
        let mut ok = Matrix::zeros(2, 4);
        assert!(matmul_bias_map_into(&a, &b, &[0.0; 3], &mut ok, |z| z).is_err());
        assert!(matmul_bias_map_into(&a, &b, &[0.0; 4], &mut ok, |z| z).is_ok());
    }

    #[test]
    fn vecmat_bias_map_into_matches_unfused_bitwise() {
        let mut rng = StdRng::seed_from_u64(14);
        for &(k_, n_) in &[(1, 1), (5, 4), (3, 64), (64, 64), (64, 1), (7, 19)] {
            let a = init::uniform(k_, n_, -1.0, 1.0, &mut rng);
            let x: Vec<f64> = (0..k_).map(|i| 0.3 * i as f64 - 1.0).collect();
            let bias: Vec<f64> = (0..n_).map(|j| 0.05 * j as f64).collect();
            let act = |z: f64| z.tanh();
            let mut expect = vec![f64::NAN; n_];
            vecmat_into(&x, &a, &mut expect).unwrap();
            for (o, &bv) in expect.iter_mut().zip(&bias) {
                *o = act(*o + bv);
            }
            let mut fused = vec![f64::NAN; n_];
            vecmat_bias_map_into(&x, &a, &bias, &mut fused, act).unwrap();
            assert_eq!(fused, expect, "({k_},{n_})");
        }
        let a = Matrix::zeros(2, 3);
        assert!(vecmat_bias_map_into(&[0.0; 3], &a, &[0.0; 3], &mut [0.0; 3], |z| z).is_err());
        assert!(vecmat_bias_map_into(&[0.0; 2], &a, &[0.0; 2], &mut [0.0; 3], |z| z).is_err());
        assert!(vecmat_bias_map_into(&[0.0; 2], &a, &[0.0; 3], &mut [0.0; 2], |z| z).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0..10.0f64, rows * cols)
                .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
        }

        proptest! {
            #[test]
            fn blocked_equals_naive(
                (m_, k_, n_) in (1usize..20, 1usize..20, 1usize..20),
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = init::uniform(m_, k_, -5.0, 5.0, &mut rng);
                let b = init::uniform(k_, n_, -5.0, 5.0, &mut rng);
                let x = matmul_naive(&a, &b).unwrap();
                let y = matmul_blocked(&a, &b).unwrap();
                for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-9);
                }
            }

            #[test]
            fn distributes_over_addition(a in arb_matrix(4, 3), b in arb_matrix(4, 3), c in arb_matrix(3, 5)) {
                // (A + B) C == A C + B C
                let sum = crate::ops::add(&a, &b).unwrap();
                let lhs = matmul(&sum, &c).unwrap();
                let rhs = crate::ops::add(
                    &matmul(&a, &c).unwrap(),
                    &matmul(&b, &c).unwrap(),
                ).unwrap();
                for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-8);
                }
            }

            #[test]
            fn at_b_into_equals_naive_oracle(
                (r_, m_, n_) in (1usize..20, 1usize..20, 1usize..20),
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = init::uniform(r_, m_, -5.0, 5.0, &mut rng);
                let b = init::uniform(r_, n_, -5.0, 5.0, &mut rng);
                let oracle = matmul_naive(&a.transpose(), &b).unwrap();
                let mut out = Matrix::full(m_, n_, f64::NAN);
                matmul_at_b_into(&a, &b, &mut out).unwrap();
                // Bitwise: both accumulate over the shared dim in ascending order.
                prop_assert_eq!(out.as_slice(), oracle.as_slice());
            }

            #[test]
            fn a_bt_into_equals_naive_oracle(
                (m_, k_, n_) in (1usize..20, 1usize..20, 1usize..20),
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = init::uniform(m_, k_, -5.0, 5.0, &mut rng);
                let b = init::uniform(n_, k_, -5.0, 5.0, &mut rng);
                let oracle = matmul_naive(&a, &b.transpose()).unwrap();
                let mut out = Matrix::full(m_, n_, f64::NAN);
                matmul_a_bt_into(&a, &b, &mut out).unwrap();
                prop_assert_eq!(out.as_slice(), oracle.as_slice());
            }

            #[test]
            fn matmul_into_equals_naive_oracle(
                (m_, k_, n_) in (1usize..20, 1usize..20, 1usize..20),
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = init::uniform(m_, k_, -5.0, 5.0, &mut rng);
                let b = init::uniform(k_, n_, -5.0, 5.0, &mut rng);
                let oracle = matmul_naive(&a, &b).unwrap();
                let mut out = Matrix::full(m_, n_, f64::NAN);
                matmul_into(&a, &b, &mut out).unwrap();
                prop_assert_eq!(out.as_slice(), oracle.as_slice());
            }

            #[test]
            fn transpose_reverses_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
                // (A B)^T == B^T A^T
                let lhs = matmul(&a, &b).unwrap().transpose();
                let rhs = matmul(&b.transpose(), &a.transpose()).unwrap();
                for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-9);
                }
            }
        }
    }
}
