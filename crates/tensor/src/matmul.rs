//! Matrix multiplication kernels: naive, cache-blocked, and parallel.
//!
//! The blocked kernel tiles the `k` and `j` loops so the working set of the
//! inner loops stays in cache; the parallel kernel splits output rows across
//! the rayon thread pool. Both produce bitwise-identical results to the
//! naive kernel (same accumulation order within a row), which the property
//! tests rely on.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Tile edge (elements) used by the blocked kernels. 64 doubles = 512 B per
/// row tile, which keeps a `BLOCK x BLOCK` tile comfortably inside L1.
const BLOCK: usize = 64;

/// Minimum number of output rows before [`matmul`] bothers going parallel.
const PAR_ROW_THRESHOLD: usize = 64;

/// Computes `a @ b`, choosing the parallel kernel for large outputs and the
/// blocked serial kernel otherwise.
pub fn matmul(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    if a.rows() >= PAR_ROW_THRESHOLD {
        Ok(matmul_parallel_unchecked(a, b))
    } else {
        Ok(matmul_blocked_unchecked(a, b))
    }
}

/// Reference triple-loop implementation. Slow; kept for testing.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            let brow = b.row(p);
            let orow = out.row_mut(i);
            for j in 0..n {
                orow[j] += aip * brow[j];
            }
        }
    }
    Ok(out)
}

/// Cache-blocked serial implementation.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    Ok(matmul_blocked_unchecked(a, b))
}

/// Row-parallel implementation on the rayon pool.
pub fn matmul_parallel(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    check(a, b)?;
    Ok(matmul_parallel_unchecked(a, b))
}

/// Computes `a @ x` where `x` is a length-`cols` vector, returning a vector.
pub fn matvec(a: &Matrix, x: &[f64]) -> TensorResult<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(ShapeError::new("matvec", a.shape(), (x.len(), 1)));
    }
    Ok(a.rows_iter()
        .map(|row| row.iter().zip(x).map(|(&p, &q)| p * q).sum())
        .collect())
}

fn check(a: &Matrix, b: &Matrix) -> TensorResult<()> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    Ok(())
}

fn matmul_blocked_unchecked(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    block_rows_into(a, b, out.as_mut_slice(), 0, m, k, n);
    out
}

fn matmul_parallel_unchecked(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    // Split the output into contiguous row bands, one rayon task per band.
    let band = (m / rayon::current_num_threads().max(1)).max(1);
    out.as_mut_slice()
        .par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(chunk_idx, out_chunk)| {
            let i0 = chunk_idx * band;
            let rows_here = out_chunk.len() / n;
            block_rows_into(a, b, out_chunk, i0, rows_here, k, n);
        });
    out
}

/// Computes rows `[i0, i0 + rows_here)` of `a @ b` into `out_chunk`
/// (row-major, `rows_here * n` elements, pre-zeroed).
fn block_rows_into(
    a: &Matrix,
    b: &Matrix,
    out_chunk: &mut [f64],
    i0: usize,
    rows_here: usize,
    k: usize,
    n: usize,
) {
    for pb in (0..k).step_by(BLOCK) {
        let pend = (pb + BLOCK).min(k);
        for jb in (0..n).step_by(BLOCK) {
            let jend = (jb + BLOCK).min(n);
            for local_i in 0..rows_here {
                let arow = a.row(i0 + local_i);
                let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                for (p, &aip) in arow.iter().enumerate().take(pend).skip(pb) {
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = b.row(p);
                    for j in jb..jend {
                        orow[j] += aip * brow[j];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(5, 5, -1.0, 1.0, &mut rng);
        let i = Matrix::identity(5);
        assert_close(&matmul(&a, &i).unwrap(), &a, 0.0);
        assert_close(&matmul(&i, &a).unwrap(), &a, 0.0);
    }

    #[test]
    fn kernels_agree_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m_, k_, n_) in &[(1, 1, 1), (3, 5, 7), (65, 70, 33), (130, 64, 65)] {
            let a = init::uniform(m_, k_, -1.0, 1.0, &mut rng);
            let b = init::uniform(k_, n_, -1.0, 1.0, &mut rng);
            let naive = matmul_naive(&a, &b).unwrap();
            let blocked = matmul_blocked(&a, &b).unwrap();
            let parallel = matmul_parallel(&a, &b).unwrap();
            assert_close(&naive, &blocked, 1e-10);
            assert_close(&naive, &parallel, 1e-10);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, 2.0];
        let v = matvec(&a, &x).unwrap();
        assert_eq!(v, vec![8.0, 18.5]);
    }

    #[test]
    fn matvec_shape_check() {
        let a = Matrix::zeros(2, 3);
        assert!(matvec(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_product() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0..10.0f64, rows * cols)
                .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
        }

        proptest! {
            #[test]
            fn blocked_equals_naive(
                (m_, k_, n_) in (1usize..20, 1usize..20, 1usize..20),
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = init::uniform(m_, k_, -5.0, 5.0, &mut rng);
                let b = init::uniform(k_, n_, -5.0, 5.0, &mut rng);
                let x = matmul_naive(&a, &b).unwrap();
                let y = matmul_blocked(&a, &b).unwrap();
                for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-9);
                }
            }

            #[test]
            fn distributes_over_addition(a in arb_matrix(4, 3), b in arb_matrix(4, 3), c in arb_matrix(3, 5)) {
                // (A + B) C == A C + B C
                let sum = crate::ops::add(&a, &b).unwrap();
                let lhs = matmul(&sum, &c).unwrap();
                let rhs = crate::ops::add(
                    &matmul(&a, &c).unwrap(),
                    &matmul(&b, &c).unwrap(),
                ).unwrap();
                for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-8);
                }
            }

            #[test]
            fn transpose_reverses_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
                // (A B)^T == B^T A^T
                let lhs = matmul(&a, &b).unwrap().transpose();
                let rhs = matmul(&b.transpose(), &a.transpose()).unwrap();
                for (p, q) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                    prop_assert!((p - q).abs() < 1e-9);
                }
            }
        }
    }
}
