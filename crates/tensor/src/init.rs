//! Deterministic random matrix initialization.
//!
//! All generators take an explicit `&mut impl Rng` so callers control
//! seeding; nothing in this crate reaches for a global RNG. Gaussian
//! sampling uses the Box–Muller transform to avoid a dependency on
//! `rand_distr`.

use crate::matrix::Matrix;
use rand::Rng;

/// Matrix with entries drawn uniformly from `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data).expect("generated length matches")
}

/// Samples one standard-normal value via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Matrix with entries drawn from `N(mean, std^2)`.
pub fn normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| mean + std * standard_normal(rng))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("generated length matches")
}

/// LeCun-normal initialization: `N(0, 1/fan_in)`.
///
/// This is the initialization self-normalizing networks (SELU) require to
/// keep activations in the self-normalizing regime (Klambauer et al. 2017).
pub fn lecun_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (1.0 / fan_in.max(1) as f64).sqrt();
    normal(fan_in, fan_out, 0.0, std, rng)
}

/// Glorot/Xavier-uniform initialization: `U(±sqrt(6/(fan_in+fan_out)))`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    uniform(fan_in, fan_out, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = uniform(20, 20, -2.0, 3.0, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_has_expected_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = normal(100, 100, 5.0, 2.0, &mut rng);
        let mean = reduce::mean(m.as_slice());
        let std = reduce::std_dev(m.as_slice());
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((std - 2.0).abs() < 0.05, "std {std}");
    }

    #[test]
    fn lecun_normal_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = lecun_normal(100, 200, &mut rng);
        let var = reduce::variance(m.as_slice());
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn glorot_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(10);
        let limit = (6.0_f64 / 30.0).sqrt();
        let m = glorot_uniform(10, 20, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn box_muller_is_finite() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
