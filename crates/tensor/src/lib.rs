//! Dense matrix and vector math used throughout the GPU-DVFS stack.
//!
//! The crate provides a small, dependency-light linear-algebra layer:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with shape-checked ops.
//! * Blocked and rayon-parallel matrix multiplication ([`matmul`]).
//! * Column statistics and feature scaling ([`stats`]).
//! * Deterministic random initialization ([`init`]).
//!
//! # The `_into` API
//!
//! Every hot-path operation has an allocation-free sibling that writes into
//! a caller-provided buffer: [`matmul::matmul_into`], the transpose-free
//! [`matmul::matmul_at_b_into`] (`Aᵀ·B`) and [`matmul::matmul_a_bt_into`]
//! (`A·Bᵀ`), [`matmul::matvec_into`] / [`matmul::vecmat_into`], and in
//! [`ops`]: `add_row_broadcast_into`, `scale_in_place`, `sum_rows_into`,
//! `gather_rows_into`. Each `_into` variant is **bitwise-identical** to its
//! allocating counterpart — same per-element accumulation order — so
//! callers can switch to buffer reuse without perturbing results. Combined
//! with [`Matrix::resize_to`] (which never reallocates within capacity),
//! these make steady-state training and inference loops allocation-free.
//!
//! The neural-network crate (`nn`) and the multi-learner baselines
//! (`baselines`) are built on top of these primitives. Training is `f64`
//! throughout: the datasets in this project are small (tens of thousands
//! of rows), so numerical robustness is worth more than the memory
//! savings of `f32`. The one exception is inference: [`f32x8`] provides
//! explicitly 8-lane-wide f32 kernels (packed/interleaved weight panels,
//! a fused GEMM + bias + activation pass, optional bf16-style storage)
//! for the latency-critical prediction hot path, with a documented error
//! bound instead of the bitwise contract.

pub mod error;
pub mod f32x8;
pub mod init;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod reduce;
pub mod stats;

pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
