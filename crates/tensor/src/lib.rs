//! Dense matrix and vector math used throughout the GPU-DVFS stack.
//!
//! The crate provides a small, dependency-light linear-algebra layer:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with shape-checked ops.
//! * Blocked and rayon-parallel matrix multiplication ([`matmul`]).
//! * Column statistics and feature scaling ([`stats`]).
//! * Deterministic random initialization ([`init`]).
//!
//! The neural-network crate (`nn`) and the multi-learner baselines
//! (`baselines`) are built on top of these primitives. Everything is `f64`:
//! the datasets in this project are small (tens of thousands of rows), so
//! numerical robustness is worth more than the memory savings of `f32`.

pub mod error;
pub mod init;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod reduce;
pub mod stats;

pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
