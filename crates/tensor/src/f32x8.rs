//! 8-lane f32 inference kernels: packed weight panels and a fused
//! GEMM + bias + activation pass.
//!
//! The f64 kernels in [`crate::matmul`] serve training, where bitwise
//! reproducibility is the contract. Inference has a different contract —
//! bounded error at maximum throughput — so this module trades the f64
//! accumulators for an explicitly 8-lane-wide f32 layout:
//!
//! * [`PackedF32`] stores a weight matrix as column *panels* of
//!   [`LANES`] = 8 floats, interleaved along the shared dimension. One
//!   panel holds `w[k][j0..j0+8]` contiguously for every `k`, so the
//!   inner GEMM loop loads one 256-bit vector per shared-dim step and
//!   never strides. Panels are zero-padded to a multiple of 8 columns;
//!   packing happens once per model snapshot, never per call.
//! * [`gemm_bias_act_into`] fuses the whole layer:
//!   `out = act(scale · x·W + b)` in a single pass, four input rows at a
//!   time against each panel (32 f32 accumulators = 4 YMM registers),
//!   with the bias add and activation applied at register-spill time so
//!   the output is written exactly once.
//! * [`exp32`] is a branch-free polynomial `e^x` (≤ ~2 ulp over the
//!   clamped range) so SELU-family activations stay vectorizable
//!   instead of calling scalar `libm`.
//! * [`bf16_truncate`] implements the storage quantizer for the
//!   reduced-precision serving mode: an f32 with the low 16 mantissa
//!   bits dropped is exactly a bfloat16 value, while arithmetic stays
//!   in f32 (bf16 storage, f32 accumulation).
//!
//! The `scale` operand exists for quantized storage: a caller packing
//! weights as `quant(w / scale)` passes `scale` back here and the kernel
//! rescales the accumulator before the bias add, keeping the stored
//! values centered in the quantizer's dynamic range. Full-precision f32
//! callers pass `scale = 1.0`.
//!
//! Unlike the f64 kernels these make no bitwise promise against a naive
//! oracle; the contract (tested in `nn`) is a documented error bound
//! against the f64 reference network.

use crate::matrix::Matrix;

/// Vector width of the packed layout: eight f32 lanes (one AVX2
/// register, two SSE registers). Also the column padding granularity.
pub const LANES: usize = 8;

/// Rows of the input processed per kernel iteration. Four rows × eight
/// lanes keeps 32 independent f32 accumulation chains live, enough to
/// hide FMA latency while reusing each loaded weight vector four times.
const MR: usize = 4;

/// Drops the low 16 mantissa bits of `v`, i.e. rounds toward zero to
/// the nearest bfloat16-representable value (8-bit significand, full
/// f32 exponent range). Truncation keeps the quantizer monotone and
/// branch-free; its worst-case relative error is `2^-7` (one ulp of the
/// 7-bit stored mantissa, vs `2^-8` for round-to-nearest).
#[inline]
pub fn bf16_truncate(v: f32) -> f32 {
    f32::from_bits(v.to_bits() & 0xffff_0000)
}

/// Branch-free polynomial `e^x` for f32.
///
/// Cody–Waite range reduction (`x = n·ln2 + r`, two-constant split)
/// followed by a degree-6 minimax polynomial on `[-ln2/2, ln2/2]` and a
/// `2^n` reconstruction via exponent-bit arithmetic. Inputs are clamped
/// to `[-87, 88]`, so the result saturates instead of over/underflowing.
/// Maximum relative error is ~2 ulp (< 3e-7), measured against f64
/// `exp` in this module's tests. Every step is straight-line float/int
/// arithmetic, so the autovectorizer can run eight of these per
/// iteration inside the fused activation pass.
#[inline]
// The literals are exact by construction (`LN2_HI` has a short binary
// mantissa so `n·LN2_HI` is error-free; the polynomial coefficients are
// Cephes' verbatim) — clippy's shorter decimal spellings would hide that.
#[allow(clippy::excessive_precision)]
pub fn exp32(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.0, 88.0);
    // Ties-to-even maps to a single vector rounding instruction;
    // half-away-from-zero (`round`) lowers to a scalar-ish sequence. The
    // tie direction only shifts which side of the reduction interval a
    // half-integer lands on — accuracy is unchanged.
    let n = (x * LOG2E).round_ties_even();
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Cephes expf polynomial: e^r ≈ 1 + r + r²·p(r).
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5.000_000_1e-1;
    let poly = p * r * r + r + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    poly * scale
}

/// A weight matrix packed once into the interleaved panel layout
/// consumed by [`gemm_bias_act_into`].
///
/// Logical shape is `(in_dim × out_dim)` row-major, like a layer weight
/// matrix. Physically the columns are split into `ceil(out_dim / 8)`
/// panels of [`LANES`] columns; within panel `p`, element
/// `data[(p·in_dim + k)·LANES + l]` is `w[k][p·LANES + l]` (zero for
/// padded lanes past `out_dim`).
#[derive(Debug, Clone)]
pub struct PackedF32 {
    in_dim: usize,
    out_dim: usize,
    data: Vec<f32>,
}

impl PackedF32 {
    /// Packs `w` with plain f64→f32 rounding.
    pub fn pack(w: &Matrix) -> Self {
        Self::pack_with(w, |v| v as f32)
    }

    /// Packs `w`, mapping every element through `quant` (e.g.
    /// [`bf16_truncate`] composed with a scale) — the hook for
    /// reduced-precision storage.
    pub fn pack_with(w: &Matrix, quant: impl Fn(f64) -> f32) -> Self {
        let (in_dim, out_dim) = w.shape();
        let panels = out_dim.div_ceil(LANES);
        let mut data = vec![0.0f32; panels * in_dim * LANES];
        for p in 0..panels {
            let j0 = p * LANES;
            let width = LANES.min(out_dim - j0);
            let panel = &mut data[p * in_dim * LANES..][..in_dim * LANES];
            for k in 0..in_dim {
                let row = w.row(k);
                for l in 0..width {
                    panel[k * LANES + l] = quant(row[j0 + l]);
                }
            }
        }
        Self {
            in_dim,
            out_dim,
            data,
        }
    }

    /// Shared (input) dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output (column) dimension before padding.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn panels(&self) -> usize {
        self.out_dim.div_ceil(LANES)
    }
}

/// Spills one panel's worth of row-block accumulators: bias add, scale
/// and activation over all [`LANES`] lanes (fixed trip count, so the
/// whole pass vectorizes), then a width-prefix copy into `out` — padded
/// lanes are computed on zeros and discarded.
#[inline(always)]
// A register-spill helper is all position, no abstraction: every
// argument is a loop-carried index or kernel operand, so bundling them
// into a struct would just move the argument list.
#[allow(clippy::too_many_arguments)]
fn spill_block<F: Fn(f32) -> f32>(
    accs: &[&[f32; LANES]],
    bias: &[f32],
    scale: f32,
    act: &F,
    out: &mut [f32],
    r: usize,
    n: usize,
    j0: usize,
) {
    let width = LANES.min(n - j0);
    let mut bv = [0.0f32; LANES];
    bv[..width].copy_from_slice(&bias[j0..j0 + width]);
    for (m, acc) in accs.iter().enumerate() {
        let mut vals = [0.0f32; LANES];
        for l in 0..LANES {
            vals[l] = act(acc[l] * scale + bv[l]);
        }
        out[(r + m) * n + j0..][..width].copy_from_slice(&vals[..width]);
    }
}

/// Fused layer kernel: `out = act(scale · (x @ W) + bias)`, written in a
/// single pass.
///
/// `x` is `(rows × in_dim)` row-major, `out` is `(rows × out_dim)`
/// row-major and fully overwritten. Accumulation is f32, over the shared
/// dimension in ascending order per element; the bias add, scale and
/// activation happen when the register accumulators spill, so each
/// output element is stored exactly once and never re-read.
///
/// # Panics
/// Panics if `x`, `bias` or `out` disagree with `w`'s dimensions.
pub fn gemm_bias_act_into<F>(
    x: &[f32],
    rows: usize,
    w: &PackedF32,
    bias: &[f32],
    scale: f32,
    act: F,
    out: &mut [f32],
) where
    F: Fn(f32) -> f32,
{
    let k = w.in_dim;
    let n = w.out_dim;
    assert_eq!(x.len(), rows * k, "gemm_bias_act_into: input length");
    assert_eq!(bias.len(), n, "gemm_bias_act_into: bias length");
    assert_eq!(out.len(), rows * n, "gemm_bias_act_into: output length");
    if rows == 0 || n == 0 {
        return;
    }
    let panels = w.panels();
    let mut r = 0;
    // Main kernel: MR input rows against two panels at a time. The dual
    // panel is what saturates the FMA units: four rows × one panel is
    // only 4 independent accumulation chains, not enough to cover FMA
    // latency (~4 cycles at 2/cycle needs ~8 live chains); pairing
    // panels doubles that to 8 chains per loop step and reuses each
    // broadcast input element across both, measured ~1.5× on the
    // 64×64 layer.
    while r + MR <= rows {
        let x0 = &x[r * k..(r + 1) * k];
        let x1 = &x[(r + 1) * k..(r + 2) * k];
        let x2 = &x[(r + 2) * k..(r + 3) * k];
        let x3 = &x[(r + 3) * k..(r + 4) * k];
        let mut p = 0;
        while p + 2 <= panels {
            let pa = &w.data[p * k * LANES..][..k * LANES];
            let pb = &w.data[(p + 1) * k * LANES..][..k * LANES];
            let mut a0 = [0.0f32; LANES];
            let mut a1 = [0.0f32; LANES];
            let mut a2 = [0.0f32; LANES];
            let mut a3 = [0.0f32; LANES];
            let mut b0 = [0.0f32; LANES];
            let mut b1 = [0.0f32; LANES];
            let mut b2 = [0.0f32; LANES];
            let mut b3 = [0.0f32; LANES];
            // `mul_add` is the only way to get hardware FMA from safe
            // Rust (the compiler never contracts `a*b + c` on its own);
            // with `target-cpu` lacking FMA it would fall back to slow
            // libm fma, but every AVX2 target this kernel cares about
            // has it. Fused rounding also tightens the accumulation.
            // Lockstep iterators (no per-step bounds checks) over the
            // shared dim, one 8-wide FMA per live row per panel per step.
            let was = pa.chunks_exact(LANES);
            let wbs = pb.chunks_exact(LANES);
            for (((((wa, wb), &v0), &v1), &v2), &v3) in was.zip(wbs).zip(x0).zip(x1).zip(x2).zip(x3)
            {
                for l in 0..LANES {
                    a0[l] = v0.mul_add(wa[l], a0[l]);
                    a1[l] = v1.mul_add(wa[l], a1[l]);
                    a2[l] = v2.mul_add(wa[l], a2[l]);
                    a3[l] = v3.mul_add(wa[l], a3[l]);
                    b0[l] = v0.mul_add(wb[l], b0[l]);
                    b1[l] = v1.mul_add(wb[l], b1[l]);
                    b2[l] = v2.mul_add(wb[l], b2[l]);
                    b3[l] = v3.mul_add(wb[l], b3[l]);
                }
            }
            spill_block(
                &[&a0, &a1, &a2, &a3],
                bias,
                scale,
                &act,
                out,
                r,
                n,
                p * LANES,
            );
            spill_block(
                &[&b0, &b1, &b2, &b3],
                bias,
                scale,
                &act,
                out,
                r,
                n,
                (p + 1) * LANES,
            );
            p += 2;
        }
        // Odd trailing panel: same per-element accumulation order, one
        // panel's worth of chains.
        while p < panels {
            let panel = &w.data[p * k * LANES..][..k * LANES];
            let mut a0 = [0.0f32; LANES];
            let mut a1 = [0.0f32; LANES];
            let mut a2 = [0.0f32; LANES];
            let mut a3 = [0.0f32; LANES];
            let wvs = panel.chunks_exact(LANES);
            for ((((wv, &v0), &v1), &v2), &v3) in wvs.zip(x0).zip(x1).zip(x2).zip(x3) {
                for l in 0..LANES {
                    a0[l] = v0.mul_add(wv[l], a0[l]);
                    a1[l] = v1.mul_add(wv[l], a1[l]);
                    a2[l] = v2.mul_add(wv[l], a2[l]);
                    a3[l] = v3.mul_add(wv[l], a3[l]);
                }
            }
            spill_block(
                &[&a0, &a1, &a2, &a3],
                bias,
                scale,
                &act,
                out,
                r,
                n,
                p * LANES,
            );
            p += 1;
        }
        r += MR;
    }
    // Remainder rows, one at a time (same per-element accumulation order).
    while r < rows {
        let xr = &x[r * k..(r + 1) * k];
        for p in 0..panels {
            let panel = &w.data[p * k * LANES..][..k * LANES];
            let mut acc = [0.0f32; LANES];
            for (wv, &v) in panel.chunks_exact(LANES).zip(xr) {
                for l in 0..LANES {
                    acc[l] = v.mul_add(wv[l], acc[l]);
                }
            }
            spill_block(&[&acc], bias, scale, &act, out, r, n, p * LANES);
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// f64 oracle of the fused kernel, computed with f32-rounded inputs
    /// but otherwise naive loops.
    fn oracle(x: &[f32], rows: usize, w: &Matrix, bias: &[f32], scale: f32) -> Vec<f32> {
        let (k, n) = w.shape();
        let mut out = vec![0.0f32; rows * n];
        for r in 0..rows {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += x[r * k + p] * (w.row(p)[j] as f32);
                }
                out[r * n + j] = acc * scale + bias[j];
            }
        }
        out
    }

    #[test]
    fn packed_layout_interleaves_panels() {
        // 2×10 matrix: two panels, second padded to 8 lanes.
        let w = Matrix::from_vec(2, 10, (0..20).map(f64::from).collect()).unwrap();
        let p = PackedF32::pack(&w);
        assert_eq!(p.panels(), 2);
        assert_eq!(p.data.len(), 2 * 2 * LANES);
        // Panel 0, k = 0 holds w[0][0..8]; k = 1 holds w[1][0..8].
        assert_eq!(&p.data[..8], &[0., 1., 2., 3., 4., 5., 6., 7.]);
        assert_eq!(&p.data[8..16], &[10., 11., 12., 13., 14., 15., 16., 17.]);
        // Panel 1 is zero-padded past column 10.
        assert_eq!(&p.data[16..24], &[8., 9., 0., 0., 0., 0., 0., 0.]);
        assert_eq!(&p.data[24..32], &[18., 19., 0., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn gemm_matches_naive_oracle_all_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(rows, k, n) in &[
            (1, 1, 1),
            (1, 3, 64),
            (4, 64, 64),
            (5, 64, 64),
            (7, 3, 10),
            (61, 3, 64),
            (61, 64, 1),
            (8, 0, 4),
        ] {
            let w = init::uniform(k, n, -2.0, 2.0, &mut rng);
            let xin = init::uniform(rows, k, -2.0, 2.0, &mut rng);
            let x: Vec<f32> = xin.as_slice().iter().map(|&v| v as f32).collect();
            let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25 - 1.0).collect();
            let packed = PackedF32::pack(&w);
            let mut out = vec![f32::NAN; rows * n];
            gemm_bias_act_into(&x, rows, &packed, &bias, 1.0, |v| v, &mut out);
            let want = oracle(&x, rows, &w, &bias, 1.0);
            for (idx, (got, exp)) in out.iter().zip(&want).enumerate() {
                let tol = 1e-4 * (1.0 + exp.abs());
                assert!(
                    (got - exp).abs() <= tol,
                    "({rows},{k},{n})[{idx}]: {got} vs {exp}"
                );
            }
        }
    }

    #[test]
    fn remainder_rows_match_main_kernel_bitwise() {
        // Row 4 computed via the MR block (rows 4..8) must equal row 4
        // computed via the remainder path (rows 0..5): per-row chains are
        // independent and accumulate in the same order.
        let mut rng = StdRng::seed_from_u64(10);
        let w = init::uniform(16, 24, -1.0, 1.0, &mut rng);
        let xin = init::uniform(8, 16, -1.0, 1.0, &mut rng);
        let x: Vec<f32> = xin.as_slice().iter().map(|&v| v as f32).collect();
        let bias = vec![0.125f32; 24];
        let packed = PackedF32::pack(&w);
        let mut full = vec![0.0f32; 8 * 24];
        gemm_bias_act_into(&x, 8, &packed, &bias, 1.0, |v| v, &mut full);
        let mut part = vec![0.0f32; 5 * 24];
        gemm_bias_act_into(&x[..5 * 16], 5, &packed, &bias, 1.0, |v| v, &mut part);
        assert_eq!(&full[4 * 24..5 * 24], &part[4 * 24..5 * 24]);
    }

    #[test]
    fn scale_rescales_accumulator_before_bias() {
        // Pack w/4 with scale 4: affine result must match the unscaled
        // kernel exactly (power-of-two scaling is lossless in binary fp).
        let mut rng = StdRng::seed_from_u64(11);
        let w = init::uniform(6, 9, -3.0, 3.0, &mut rng);
        let wq = Matrix::from_vec(6, 9, w.as_slice().iter().map(|v| v / 4.0).collect()).unwrap();
        let xin = init::uniform(3, 6, -1.0, 1.0, &mut rng);
        let x: Vec<f32> = xin.as_slice().iter().map(|&v| v as f32).collect();
        let bias = vec![-0.5f32; 9];
        let mut a = vec![0.0f32; 27];
        let mut b = vec![0.0f32; 27];
        gemm_bias_act_into(&x, 3, &PackedF32::pack(&w), &bias, 1.0, |v| v, &mut a);
        gemm_bias_act_into(&x, 3, &PackedF32::pack(&wq), &bias, 4.0, |v| v, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn activation_is_applied_at_spill() {
        let w = Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap();
        let mut out = vec![0.0f32; 2];
        gemm_bias_act_into(
            &[2.0f32],
            1,
            &PackedF32::pack(&w),
            &[0.0, 0.0],
            1.0,
            |v| v.max(0.0),
            &mut out,
        );
        assert_eq!(out, vec![2.0, 0.0]);
    }

    #[test]
    fn exp32_stays_within_3e7_relative() {
        let mut worst = 0.0f64;
        let mut x = -87.0f64;
        while x <= 88.0 {
            // Compare against exp of the *f32-rounded* input: the input
            // rounding is the caller's error, not the kernel's.
            let xin = x as f32;
            let got = exp32(xin) as f64;
            let want = f64::from(xin).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.0137;
        }
        assert!(worst < 3e-7, "worst relative error {worst:e}");
        // Saturation, not overflow/NaN, outside the clamped range.
        assert!(exp32(1e4).is_finite());
        assert_eq!(exp32(f32::NEG_INFINITY), exp32(-87.0));
        assert_eq!(exp32(0.0), 1.0);
    }

    #[test]
    fn bf16_truncate_drops_low_mantissa() {
        assert_eq!(bf16_truncate(1.0), 1.0);
        assert_eq!(bf16_truncate(-2.5), -2.5);
        let v = 1.000_061f32; // below the bf16 step above 1.0 (2^-8)
        let t = bf16_truncate(v);
        assert_eq!(t, 1.0);
        // Relative error bounded by 2^-7 (truncation) across magnitudes.
        for &v in &[
            std::f32::consts::PI,
            -0.001234,
            6.02e23,
            -2.7e-12,
            1.9999999,
        ] {
            let t = bf16_truncate(v);
            assert!(((t - v) / v).abs() <= 2.0f32.powi(-7));
        }
    }
}
