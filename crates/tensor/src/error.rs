//! Error types for shape-checked tensor operations.

use std::fmt;

/// A mismatch between the shapes two operands of a tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable name of the operation that failed.
    pub op: &'static str,
    /// Shape of the left-hand operand, `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand, `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with the two offending
    /// operand shapes.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in `{}`: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// Convenience alias for results of shape-checked operations.
pub type TensorResult<T> = Result<T, ShapeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_shapes() {
        let e = ShapeError::new("matmul", (2, 3), (4, 5));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ShapeError::new("add", (1, 1), (2, 2)));
    }
}
