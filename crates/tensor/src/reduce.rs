//! Reductions over slices and matrices.

/// Sum of a slice (empty slices sum to 0).
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Arithmetic mean; returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    sum(xs) / xs.len() as f64
}

/// Population variance; returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; returns `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `None` for an empty slice. NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::min)
}

/// Maximum value; `None` for an empty slice. NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::max)
}

/// Index of the minimum value; `None` for an empty slice.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .filter(|(_, x)| !x.is_nan())
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN filtered"))
        .map(|(i, _)| i)
}

/// Index of the maximum value; `None` for an empty slice.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .filter(|(_, x)| !x.is_nan())
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN filtered"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reductions() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(sum(&xs), 12.0);
        assert_eq!(mean(&xs), 4.0);
        assert!((variance(&xs) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(min(&xs), Some(2.0));
        assert_eq!(max(&xs), Some(6.0));
    }

    #[test]
    fn empty_behaviour() {
        assert_eq!(sum(&[]), 0.0);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert_eq!(min(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn arg_reductions() {
        let xs = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(argmin(&xs), Some(1)); // first minimum wins
        assert_eq!(argmax(&xs), Some(0));
    }

    #[test]
    fn nan_is_skipped() {
        let xs = [f64::NAN, 2.0, 1.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(argmin(&xs), Some(2));
    }

    #[test]
    fn constant_slice_has_zero_variance() {
        let xs = [5.0; 10];
        assert_eq!(variance(&xs), 0.0);
        assert_eq!(std_dev(&xs), 0.0);
    }
}
