//! Reductions over slices and matrices.

/// Sum of a slice (empty slices sum to 0).
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Arithmetic mean; returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    sum(xs) / xs.len() as f64
}

/// Population variance; returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; returns `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `None` for an empty slice. NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::min)
}

/// Maximum value; `None` for an empty slice. NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f64::max)
}

/// Index of the minimum value; `None` for an empty slice.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .filter(|(_, x)| !x.is_nan())
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN filtered"))
        .map(|(i, _)| i)
}

/// Index of the maximum value; `None` for an empty slice.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .filter(|(_, x)| !x.is_nan())
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN filtered"))
        .map(|(i, _)| i)
}

/// Drives a fixed-shape pairwise tree reduction over `n` slots,
/// accumulating the result into slot 0.
///
/// `combine(dst, src)` must fold slot `src` into slot `dst`. The call
/// sequence depends only on `n` — level by level, stride doubling:
/// `(0,1) (2,3) (4,5)…`, then `(0,2) (4,6)…`, then `(0,4)…` — so any
/// executor (a serial loop, worker threads, one combine per task) that
/// honors the emitted order performs the *identical* sequence of
/// floating-point additions. This is what makes the data-parallel
/// gradient reduction bitwise reproducible for every thread count: the
/// tree's shape is a function of the shard count alone.
///
/// Combines within one level are independent (disjoint slot pairs), so a
/// parallel executor may run a level's combines concurrently; levels must
/// stay ordered.
pub fn tree_combine(n: usize, mut combine: impl FnMut(usize, usize)) {
    let mut step = 1;
    while step < n {
        let mut dst = 0;
        while dst + step < n {
            combine(dst, dst + step);
            dst += 2 * step;
        }
        step *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reductions() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(sum(&xs), 12.0);
        assert_eq!(mean(&xs), 4.0);
        assert!((variance(&xs) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(min(&xs), Some(2.0));
        assert_eq!(max(&xs), Some(6.0));
    }

    #[test]
    fn empty_behaviour() {
        assert_eq!(sum(&[]), 0.0);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert_eq!(min(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn arg_reductions() {
        let xs = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(argmin(&xs), Some(1)); // first minimum wins
        assert_eq!(argmax(&xs), Some(0));
    }

    #[test]
    fn nan_is_skipped() {
        let xs = [f64::NAN, 2.0, 1.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(argmin(&xs), Some(2));
    }

    #[test]
    fn constant_slice_has_zero_variance() {
        let xs = [5.0; 10];
        assert_eq!(variance(&xs), 0.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    /// Recursive specification of the pairwise tree: fold the first half
    /// and the second half independently, then combine their roots.
    fn tree_spec(base: usize, n: usize, pairs: &mut Vec<(usize, usize)>) {
        if n < 2 {
            return;
        }
        let mut half = 1;
        while half * 2 < n {
            half *= 2;
        }
        tree_spec(base, half, pairs);
        tree_spec(base + half, n - half, pairs);
        pairs.push((base, base + half));
    }

    #[test]
    fn tree_combine_touches_every_slot_exactly_once_as_src() {
        for n in 1..=17 {
            let mut seen_src = vec![false; n];
            let mut sum_reached_root = vec![false; n];
            sum_reached_root[0] = true;
            tree_combine(n, |dst, src| {
                assert!(dst < src, "tree combines fold right into left");
                assert!(src < n);
                assert!(!seen_src[src], "slot {src} consumed twice (n={n})");
                seen_src[src] = true;
            });
            assert_eq!(
                seen_src.iter().filter(|&&s| s).count(),
                n.saturating_sub(1),
                "every non-root slot is folded exactly once (n={n})"
            );
        }
    }

    #[test]
    fn tree_combine_matches_recursive_specification() {
        // The level-order loop must perform the same *set* of combines as
        // the recursive halving spec, and within any dst slot the same
        // src order (ascending strides) — i.e. the same reduction tree.
        for n in 1..=16 {
            let mut emitted = Vec::new();
            tree_combine(n, |d, s| emitted.push((d, s)));
            let mut spec = Vec::new();
            tree_spec(0, n, &mut spec);
            let mut a = emitted.clone();
            let mut b = spec.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "combine set diverged for n={n}");
            // Per-destination order is ascending in stride in both.
            for dst in 0..n {
                let ea: Vec<_> = emitted.iter().filter(|p| p.0 == dst).collect();
                let eb: Vec<_> = spec.iter().filter(|p| p.0 == dst).collect();
                assert_eq!(ea, eb, "per-slot fold order diverged for n={n}");
            }
        }
    }

    #[test]
    fn tree_combine_sums_are_deterministic_and_complete() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut slots: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.1).collect();
            let expect: f64 = {
                let mut s = slots.clone();
                tree_combine(n, |d, src| {
                    let v = s[src];
                    s[d] += v;
                });
                s[0]
            };
            tree_combine(n, |d, src| {
                let v = slots[src];
                slots[d] += v;
            });
            assert_eq!(slots[0], expect);
        }
    }
}
