//! Row-major dense `f64` matrix.

use crate::error::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// Vectors are represented as `n x 1` (column) or `1 x n` (row) matrices.
/// All arithmetic entry points are shape checked; panicking variants exist
/// only through the `Index` operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> TensorResult<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> TensorResult<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ShapeError::new(
                    "from_rows",
                    (rows.len(), cols),
                    (1, r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Returns a new matrix whose rows are the rows of `self` selected by
    /// `indices` (in order, duplicates allowed).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Vertically stacks `self` on top of `other`.
    pub fn vstack(&self, other: &Self) -> TensorResult<Self> {
        if self.cols != other.cols {
            return Err(ShapeError::new("vstack", self.shape(), other.shape()));
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies the contents of `src` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(
            self.shape(),
            src.shape(),
            "copy_from: shape mismatch {:?} vs {:?}",
            self.shape(),
            src.shape()
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes the matrix to `rows x cols`, growing the backing storage
    /// only if the new element count exceeds its capacity. Contents after
    /// the call are unspecified; callers are expected to overwrite them.
    ///
    /// This is the workhorse of buffer reuse: shrinking or same-size
    /// resizes never touch the allocator, so a buffer sized for the
    /// largest batch can be reused for every smaller one.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn from_rows_empty_is_0x0() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn transpose_swaps_shape_and_elements() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_rejects_mismatched_cols() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]).unwrap();
        let abs = m.map(f64::abs);
        assert_eq!(abs.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut dst = Matrix::full(2, 2, 9.0);
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "copy_from")]
    fn copy_from_panics_on_shape_mismatch() {
        let src = Matrix::zeros(2, 3);
        let mut dst = Matrix::zeros(3, 2);
        dst.copy_from(&src);
    }

    #[test]
    fn resize_to_reuses_capacity_when_shrinking() {
        let mut m = Matrix::zeros(8, 4);
        let ptr = m.as_slice().as_ptr();
        m.resize_to(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrink must not reallocate");
        m.resize_to(8, 4);
        assert_eq!(m.shape(), (8, 4));
        assert_eq!(
            m.as_slice().as_ptr(),
            ptr,
            "regrow within capacity must not reallocate"
        );
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
