//! Column statistics and feature scaling.
//!
//! [`Standardizer`] (z-score) and [`MinMaxScaler`] are fitted on a training
//! matrix and can then transform any matrix with the same column count —
//! the usual fit/transform split so validation and deployment data are
//! scaled with *training* statistics.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;
use crate::reduce;
use serde::{Deserialize, Serialize};

/// Per-column mean of a matrix.
pub fn col_means(m: &Matrix) -> Vec<f64> {
    (0..m.cols()).map(|c| reduce::mean(&m.col(c))).collect()
}

/// Per-column population standard deviation of a matrix.
pub fn col_stds(m: &Matrix) -> Vec<f64> {
    (0..m.cols()).map(|c| reduce::std_dev(&m.col(c))).collect()
}

/// Z-score scaler: `x' = (x - mean) / std`, per column.
///
/// Columns with zero variance are passed through centred but unscaled
/// (divide-by-one) so constant features do not produce NaNs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the scaler to the columns of `m`.
    pub fn fit(m: &Matrix) -> Self {
        let means = col_means(m);
        let stds = col_stds(m)
            .into_iter()
            .map(|s| if s > 0.0 { s } else { 1.0 })
            .collect();
        Self { means, stds }
    }

    /// Number of columns the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Transforms `m` using the fitted statistics.
    pub fn transform(&self, m: &Matrix) -> TensorResult<Matrix> {
        if m.cols() != self.means.len() {
            return Err(ShapeError::new(
                "standardize",
                m.shape(),
                (1, self.means.len()),
            ));
        }
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (mean, std)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = (*v - mean) / std;
            }
        }
        Ok(out)
    }

    /// Inverse transform: maps scaled values back to the original units.
    pub fn inverse_transform(&self, m: &Matrix) -> TensorResult<Matrix> {
        if m.cols() != self.means.len() {
            return Err(ShapeError::new(
                "unstandardize",
                m.shape(),
                (1, self.means.len()),
            ));
        }
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (mean, std)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = *v * std + mean;
            }
        }
        Ok(out)
    }
}

/// Min-max scaler: `x' = (x - min) / (max - min)`, per column, into [0, 1].
///
/// Constant columns map to 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to the columns of `m`.
    pub fn fit(m: &Matrix) -> Self {
        let mut mins = Vec::with_capacity(m.cols());
        let mut ranges = Vec::with_capacity(m.cols());
        for c in 0..m.cols() {
            let col = m.col(c);
            let lo = reduce::min(&col).unwrap_or(0.0);
            let hi = reduce::max(&col).unwrap_or(0.0);
            mins.push(lo);
            ranges.push(if hi > lo { hi - lo } else { 1.0 });
        }
        Self { mins, ranges }
    }

    /// Number of columns the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.mins.len()
    }

    /// Transforms `m` using the fitted min/range.
    pub fn transform(&self, m: &Matrix) -> TensorResult<Matrix> {
        if m.cols() != self.mins.len() {
            return Err(ShapeError::new("minmax", m.shape(), (1, self.mins.len())));
        }
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (min, range)) in row.iter_mut().zip(self.mins.iter().zip(&self.ranges)) {
                *v = (*v - min) / range;
            }
        }
        Ok(out)
    }

    /// Inverse transform back to original units.
    pub fn inverse_transform(&self, m: &Matrix) -> TensorResult<Matrix> {
        if m.cols() != self.mins.len() {
            return Err(ShapeError::new("unminmax", m.shape(), (1, self.mins.len())));
        }
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (min, range)) in row.iter_mut().zip(self.mins.iter().zip(&self.ranges)) {
                *v = *v * range + min;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let x = m(4, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x).unwrap();
        for c in 0..2 {
            let col = t.col(c);
            assert!(reduce::mean(&col).abs() < 1e-12);
            assert!((reduce::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_inverse_round_trip() {
        let x = m(3, 2, &[1.0, -5.0, 2.0, 0.0, 3.0, 5.0]);
        let s = Standardizer::fit(&x);
        let back = s.inverse_transform(&s.transform(&x).unwrap()).unwrap();
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_column_no_nan() {
        let x = m(3, 1, &[7.0, 7.0, 7.0]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x).unwrap();
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn standardizer_rejects_wrong_width() {
        let x = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = Standardizer::fit(&x);
        assert!(s.transform(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn minmax_maps_into_unit_interval() {
        let x = m(3, 1, &[5.0, 10.0, 15.0]);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x).unwrap();
        assert_eq!(t.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn minmax_inverse_round_trip() {
        let x = m(3, 2, &[1.0, 100.0, 5.0, 300.0, 9.0, 200.0]);
        let s = MinMaxScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x).unwrap()).unwrap();
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_constant_column_maps_to_zero() {
        let x = m(3, 1, &[4.0, 4.0, 4.0]);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x).unwrap();
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transform_generalizes_to_new_data() {
        let train = m(2, 1, &[0.0, 10.0]);
        let s = MinMaxScaler::fit(&train);
        let test = m(1, 1, &[20.0]);
        // Out-of-range data extrapolates past 1.0 rather than clamping.
        assert_eq!(s.transform(&test).unwrap().as_slice(), &[2.0]);
    }
}
