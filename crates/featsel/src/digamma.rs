//! The digamma function ψ(x), needed by the KSG estimator.

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Digamma ψ(x) for x > 0, via upward recurrence into the asymptotic
/// regime and a truncated Stirling series.
///
/// Accuracy is ~1e-12 for x ≥ 1e-3, far beyond what the MI estimate needs.
///
/// # Panics
/// Panics for non-positive `x`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    // psi(x) = psi(x + 1) - 1/x; shift until x >= 10 for the series.
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    // Stirling series:
    // ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6) + 1/(240x^8).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_one_is_minus_gamma() {
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-10);
    }

    #[test]
    fn psi_half_known_value() {
        // psi(1/2) = -gamma - 2 ln 2.
        let expect = -EULER_GAMMA - 2.0 * (2.0f64).ln();
        assert!((digamma(0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn recurrence_holds() {
        for &x in &[0.1, 0.7, 1.3, 2.5, 10.0] {
            let lhs = digamma(x + 1.0);
            let rhs = digamma(x) + 1.0 / x;
            assert!((lhs - rhs).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    fn integer_values_are_harmonic_sums() {
        // psi(n) = -gamma + sum_{k=1}^{n-1} 1/k.
        let mut h = 0.0;
        for n in 1..20u32 {
            if n > 1 {
                h += 1.0 / f64::from(n - 1);
            }
            assert!((digamma(f64::from(n)) - (h - EULER_GAMMA)).abs() < 1e-10);
        }
    }

    #[test]
    fn large_argument_behaves_like_log() {
        let x = 1.0e6;
        assert!((digamma(x) - x.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn nonpositive_rejected() {
        let _ = digamma(0.0);
    }
}
