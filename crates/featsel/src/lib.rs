//! Mutual-information feature selection (paper Section 4.2, Figure 3).
//!
//! Implements the Kraskov–Stögbauer–Grassberger (KSG) k-nearest-neighbour
//! estimator of mutual information between continuous variables — the same
//! estimator behind scikit-learn's `mutual_info_regression`, which the
//! paper uses to rank ten GPU utilization features against the two
//! predictands (power and execution time) and select the top three
//! (`fp_active`, `sm_app_clock`, `dram_active`).

pub mod digamma;
pub mod ksg;
pub mod ranking;

pub use ksg::mutual_information;
pub use ranking::{rank_features, FeatureScore};
