//! Ranking candidate features by mutual information with a predictand.

use crate::ksg::{mutual_information, KsgOptions};
use serde::{Deserialize, Serialize};

/// One feature's MI score against a predictand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScore {
    /// Feature name.
    pub name: String,
    /// Estimated mutual information in nats.
    pub mi: f64,
}

/// Computes the MI of every feature column against `target` and returns the
/// scores sorted descending (the paper's Figure 3, one panel per
/// predictand).
///
/// `features` is column-major: `features[f]` is the f-th feature's samples.
///
/// # Panics
/// Panics if `names` and `features` lengths differ, or any column length
/// differs from `target`.
pub fn rank_features(
    names: &[&str],
    features: &[Vec<f64>],
    target: &[f64],
    opts: KsgOptions,
) -> Vec<FeatureScore> {
    assert_eq!(names.len(), features.len(), "one name per feature column");
    let mut scores: Vec<FeatureScore> = names
        .iter()
        .zip(features)
        .map(|(&name, col)| FeatureScore {
            name: name.to_string(),
            mi: mutual_information(col, target, opts),
        })
        .collect();
    scores.sort_by(|a, b| b.mi.partial_cmp(&a.mi).expect("MI is finite"));
    scores
}

/// Returns the names of the top `n` features by MI.
pub fn top_n(scores: &[FeatureScore], n: usize) -> Vec<&str> {
    scores.iter().take(n).map(|s| s.name.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn informative_feature_ranks_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let target: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let informative: Vec<f64> = target.iter().map(|&t| 2.0 * t + 1.0).collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let scores = rank_features(
            &["noise", "informative"],
            &[noise, informative],
            &target,
            KsgOptions::default(),
        );
        assert_eq!(scores[0].name, "informative");
        assert!(scores[0].mi > scores[1].mi + 0.5);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300;
        let target: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                target
                    .iter()
                    .map(|&t| t * (k as f64 / 4.0) + rng.random::<f64>())
                    .collect()
            })
            .collect();
        let scores = rank_features(&["a", "b", "c", "d"], &cols, &target, KsgOptions::default());
        assert!(scores.windows(2).all(|w| w[0].mi >= w[1].mi));
    }

    #[test]
    fn top_n_selects_prefix() {
        let scores = vec![
            FeatureScore {
                name: "x".into(),
                mi: 2.0,
            },
            FeatureScore {
                name: "y".into(),
                mi: 1.0,
            },
            FeatureScore {
                name: "z".into(),
                mi: 0.5,
            },
        ];
        assert_eq!(top_n(&scores, 2), vec!["x", "y"]);
        assert_eq!(top_n(&scores, 10).len(), 3);
    }

    #[test]
    #[should_panic(expected = "one name per feature")]
    fn name_count_mismatch_panics() {
        let _ = rank_features(
            &["a"],
            &[vec![1.0], vec![2.0]],
            &[1.0],
            KsgOptions::default(),
        );
    }
}
