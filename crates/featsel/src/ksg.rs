//! KSG estimator (algorithm 1 of Kraskov et al. 2004) for I(X; Y) between
//! two scalar variables.

use crate::digamma::digamma;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`mutual_information`].
#[derive(Debug, Clone, Copy)]
pub struct KsgOptions {
    /// Neighbour count `k` (scikit-learn defaults to 3).
    pub k: usize,
    /// Relative amplitude of the deterministic tie-breaking jitter added to
    /// each variable (scikit-learn adds `1e-10 * scale` noise for the same
    /// reason). Set to 0 to disable.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for KsgOptions {
    fn default() -> Self {
        Self {
            k: 3,
            jitter: 1e-10,
            seed: 0x5EED,
        }
    }
}

/// Estimates the mutual information I(X; Y) in nats between two paired
/// scalar samples using the KSG k-NN estimator. Returns 0 for degenerate
/// inputs (fewer than `k + 1` points or a constant variable).
///
/// # Panics
/// Panics if `x` and `y` lengths differ.
pub fn mutual_information(x: &[f64], y: &[f64], opts: KsgOptions) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    if n <= opts.k + 1 {
        return 0.0;
    }

    // Standardize each variable to unit scale so the max-norm in the joint
    // space weighs both equally, and add tie-breaking jitter.
    let xs = standardize_with_jitter(x, opts, 1);
    let ys = standardize_with_jitter(y, opts, 2);
    let (Some(xs), Some(ys)) = (xs, ys) else {
        return 0.0; // constant variable carries no information
    };

    let k = opts.k;
    let mut acc = 0.0;
    // O(n^2) neighbour search — datasets here are a few thousand rows.
    let mut dists: Vec<f64> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        for j in 0..n {
            if j != i {
                let d = (xs[i] - xs[j]).abs().max((ys[i] - ys[j]).abs());
                dists.push(d);
            }
        }
        // k-th smallest joint distance (Chebyshev norm).
        let (_, eps, _) =
            dists.select_nth_unstable_by(k - 1, |a, b| a.partial_cmp(b).expect("finite distances"));
        let eps = *eps;

        // Strict marginal counts within eps.
        let nx = xs
            .iter()
            .enumerate()
            .filter(|&(j, &v)| j != i && (v - xs[i]).abs() < eps)
            .count();
        let ny = ys
            .iter()
            .enumerate()
            .filter(|&(j, &v)| j != i && (v - ys[i]).abs() < eps)
            .count();
        acc += digamma((nx + 1) as f64) + digamma((ny + 1) as f64);
    }

    let mi = digamma(k as f64) + digamma(n as f64) - acc / n as f64;
    mi.max(0.0)
}

/// Standardizes to zero mean / unit variance and adds jitter; `None` if the
/// variable is constant.
fn standardize_with_jitter(v: &[f64], opts: KsgOptions, salt: u64) -> Option<Vec<f64>> {
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= 0.0 {
        return None;
    }
    let std = var.sqrt();
    let mut rng = StdRng::seed_from_u64(opts.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    Some(
        v.iter()
            .map(|&x| (x - mean) / std + opts.jitter * (rng.random::<f64>() - 0.5))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_pairs(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut normal = move || {
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = normal();
            let b = normal();
            x.push(a);
            y.push(rho * a + (1.0 - rho * rho).sqrt() * b);
        }
        (x, y)
    }

    #[test]
    fn independent_variables_have_near_zero_mi() {
        let (x, y) = gaussian_pairs(800, 0.0, 1);
        let mi = mutual_information(&x, &y, KsgOptions::default());
        assert!(mi < 0.08, "MI of independent vars = {mi}");
    }

    #[test]
    fn correlated_gaussians_match_analytic_mi() {
        // I = -0.5 ln(1 - rho^2).
        for &rho in &[0.5, 0.9] {
            let (x, y) = gaussian_pairs(1500, rho, 2);
            let mi = mutual_information(&x, &y, KsgOptions::default());
            let expect = -0.5 * (1.0 - rho * rho).ln();
            assert!(
                (mi - expect).abs() < 0.12,
                "rho {rho}: MI {mi:.3} vs analytic {expect:.3}"
            );
        }
    }

    #[test]
    fn stronger_dependence_scores_higher() {
        let (x1, y1) = gaussian_pairs(600, 0.3, 3);
        let (x2, y2) = gaussian_pairs(600, 0.95, 3);
        let lo = mutual_information(&x1, &y1, KsgOptions::default());
        let hi = mutual_information(&x2, &y2, KsgOptions::default());
        assert!(hi > lo + 0.3, "hi {hi} vs lo {lo}");
    }

    #[test]
    fn nonlinear_dependence_is_detected() {
        // y = x^2 is uncorrelated with x on a symmetric domain but highly
        // dependent — the key reason MI beats Pearson for feature selection.
        let (x, _) = gaussian_pairs(800, 0.0, 4);
        let y: Vec<f64> = x.iter().map(|&v| v * v).collect();
        let mi = mutual_information(&x, &y, KsgOptions::default());
        assert!(mi > 0.5, "MI(x, x^2) = {mi}");
    }

    #[test]
    fn invariant_under_affine_transforms() {
        let (x, y) = gaussian_pairs(700, 0.7, 5);
        let mi1 = mutual_information(&x, &y, KsgOptions::default());
        let x2: Vec<f64> = x.iter().map(|&v| 1000.0 * v + 77.0).collect();
        let y2: Vec<f64> = y.iter().map(|&v| -0.01 * v).collect();
        let mi2 = mutual_information(&x2, &y2, KsgOptions::default());
        assert!((mi1 - mi2).abs() < 0.05, "{mi1} vs {mi2}");
    }

    #[test]
    fn constant_variable_gives_zero() {
        let x = vec![5.0; 100];
        let y: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(mutual_information(&x, &y, KsgOptions::default()), 0.0);
    }

    #[test]
    fn tiny_sample_gives_zero() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(mutual_information(&x, &y, KsgOptions::default()), 0.0);
    }

    #[test]
    fn duplicate_heavy_data_does_not_panic() {
        // Discrete-ish data with heavy ties relies on the jitter.
        let x: Vec<f64> = (0..500).map(|i| (i % 3) as f64).collect();
        let y: Vec<f64> = (0..500).map(|i| (i % 3) as f64).collect();
        let mi = mutual_information(&x, &y, KsgOptions::default());
        assert!(
            mi > 0.5,
            "identical ternary vars should share information, got {mi}"
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = mutual_information(&[1.0], &[1.0, 2.0], KsgOptions::default());
    }

    #[test]
    fn deterministic_given_options() {
        let (x, y) = gaussian_pairs(300, 0.6, 6);
        let a = mutual_information(&x, &y, KsgOptions::default());
        let b = mutual_information(&x, &y, KsgOptions::default());
        assert_eq!(a, b);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// MI is non-negative for arbitrary data.
            #[test]
            fn nonnegative(seed in 0u64..500, rho in -0.95..0.95f64) {
                let (x, y) = gaussian_pairs(120, rho, seed);
                prop_assert!(mutual_information(&x, &y, KsgOptions::default()) >= 0.0);
            }

            /// MI is (approximately) symmetric in its arguments: the jitter
            /// streams differ per argument slot, so allow estimator noise.
            #[test]
            fn symmetric(seed in 0u64..500) {
                let (x, y) = gaussian_pairs(400, 0.7, seed);
                let axy = mutual_information(&x, &y, KsgOptions::default());
                let ayx = mutual_information(&y, &x, KsgOptions::default());
                prop_assert!((axy - ayx).abs() < 0.15, "{axy} vs {ayx}");
            }
        }
    }
}
