//! Criterion benches for model training and online prediction — the
//! paper's Section 4.3 claims: ~6.5 s power-model training, ~2.6 s time
//! model, ~0.2 s prediction across the DVFS space.
//!
//! The `nn_training` group is the before/after guard for the
//! zero-allocation engine: `epoch_reference` times the original
//! allocating path (preserved verbatim in `nn::reference`), while
//! `epoch_workspace` times `Trainer::fit` on identical data, topology,
//! and seeds. Both paths are bitwise-identical in output, so the group
//! isolates the pure cost of buffer churn.
//!
//! Set `BENCH_SMOKE=1` to shrink the heavy model-training workloads so
//! `scripts/check.sh` can exercise every bench body in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels};
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
use nn::activation::Activation;
use nn::network::{Network, NetworkBuilder};
use nn::reference;
use nn::train::{TrainConfig, Trainer};
use std::hint::black_box;
use tensor::Matrix;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Caps an epoch budget in smoke mode so check.sh finishes quickly.
fn epochs(full: usize) -> usize {
    if smoke() {
        full.min(2)
    } else {
        full
    }
}

fn campaign_dataset() -> (DeviceSpec, Dataset) {
    let spec = DeviceSpec::ga100();
    let grid = DvfsGrid::for_spec(&spec);
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c")
            .flops(2e13)
            .bytes(2e11)
            .kappa_compute(0.9)
            .build(),
        SignatureBuilder::new("m")
            .flops(2e11)
            .bytes(2e13)
            .kappa_memory(0.85)
            .build(),
        SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
        SignatureBuilder::new("y")
            .flops(3e12)
            .bytes(1e12)
            .kappa_compute(0.5)
            .build(),
    ];
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in &grid.used() {
            for run in 0..3 {
                samples.push(gpu_model::sample::measure(&spec, sig, f, run, &nm));
            }
        }
    }
    let ds = Dataset::from_samples(&spec, &samples).unwrap();
    (spec, ds)
}

fn bench_training(c: &mut Criterion) {
    let (_, ds) = campaign_dataset();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("power_model_100_epochs", |b| {
        b.iter(|| {
            PowerTimeModels::train_with(
                black_box(&ds),
                ModelConfig {
                    epochs: epochs(ModelConfig::paper_power().epochs),
                    ..ModelConfig::paper_power()
                },
                // Train only the time model minimally: this bench targets
                // the power model's 100-epoch cost.
                ModelConfig {
                    epochs: 1,
                    ..ModelConfig::paper_time()
                },
            )
        })
    });
    group.bench_function("time_model_25_epochs", |b| {
        b.iter(|| {
            PowerTimeModels::train_with(
                black_box(&ds),
                ModelConfig {
                    epochs: 1,
                    ..ModelConfig::paper_power()
                },
                ModelConfig {
                    epochs: epochs(ModelConfig::paper_time().epochs),
                    ..ModelConfig::paper_time()
                },
            )
        })
    });
    group.finish();
}

/// The tentpole before/after benchmark: one 5-epoch fit of the paper
/// topology (3 -> 64 -> 64 -> 64 -> 1, SELU, RMSprop, batch 64) on 512
/// synthetic rows, via the workspace engine vs the preserved allocating
/// reference. Output is bitwise-identical between the two.
fn bench_epoch_cost(c: &mut Criterion) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let x = tensor::init::uniform(512, 3, 0.0, 1.0, &mut rng);
    let y_vals: Vec<f64> = x
        .rows_iter()
        .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
        .collect();
    let y = Matrix::col_vector(&y_vals);
    let net: Network = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(7)
        .build();
    // Paper-default config (batch 64, 80/20 split) at a 5-epoch budget:
    // the per-epoch cost is what the zero-allocation engine targets.
    let cfg = TrainConfig {
        epochs: epochs(5),
        ..TrainConfig::default()
    };

    let mut group = c.benchmark_group("nn_training");
    group.sample_size(10);
    group.bench_function("epoch_workspace", |b| {
        b.iter(|| {
            let mut trainer = Trainer::new(net.clone(), cfg);
            trainer.fit(black_box(&x), black_box(&y)).unwrap()
        })
    });
    // The same fit through the data-parallel engine at 4 explicit worker
    // threads (8 shards). Output is bitwise identical to the serial run;
    // the delta is pure engine speedup (or, on boxes with fewer cores,
    // pure coordination overhead).
    let par_cfg = TrainConfig { threads: 4, ..cfg };
    group.bench_function("epoch_parallel", |b| {
        b.iter(|| {
            let mut trainer = Trainer::new(net.clone(), par_cfg);
            trainer.fit(black_box(&x), black_box(&y)).unwrap()
        })
    });
    group.bench_function("epoch_reference", |b| {
        b.iter(|| {
            let mut n = net.clone();
            reference::fit(&mut n, &cfg, black_box(&x), black_box(&y)).unwrap()
        })
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (spec, ds) = campaign_dataset();
    let models = PowerTimeModels::train(&ds);
    let grid = DvfsGrid::for_spec(&spec);
    let freqs = grid.used();
    c.bench_function("predict_power_time_61_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &freqs {
                acc += models.predict_power_w(&spec, black_box(0.6), black_box(0.5), f);
                acc += models.predict_time_ratio(&spec, black_box(0.6), black_box(0.5), f);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_training, bench_epoch_cost, bench_prediction);
criterion_main!(benches);
