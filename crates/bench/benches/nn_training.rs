//! Criterion benches for model training and online prediction — the
//! paper's Section 4.3 claims: ~6.5 s power-model training, ~2.6 s time
//! model, ~0.2 s prediction across the DVFS space.

use criterion::{criterion_group, criterion_main, Criterion};
use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels};
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
use std::hint::black_box;

fn campaign_dataset() -> (DeviceSpec, Dataset) {
    let spec = DeviceSpec::ga100();
    let grid = DvfsGrid::for_spec(&spec);
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c")
            .flops(2e13)
            .bytes(2e11)
            .kappa_compute(0.9)
            .build(),
        SignatureBuilder::new("m")
            .flops(2e11)
            .bytes(2e13)
            .kappa_memory(0.85)
            .build(),
        SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
        SignatureBuilder::new("y")
            .flops(3e12)
            .bytes(1e12)
            .kappa_compute(0.5)
            .build(),
    ];
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in &grid.used() {
            for run in 0..3 {
                samples.push(gpu_model::sample::measure(&spec, sig, f, run, &nm));
            }
        }
    }
    let ds = Dataset::from_samples(&spec, &samples).unwrap();
    (spec, ds)
}

fn bench_training(c: &mut Criterion) {
    let (_, ds) = campaign_dataset();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("power_model_100_epochs", |b| {
        b.iter(|| {
            PowerTimeModels::train_with(
                black_box(&ds),
                ModelConfig::paper_power(),
                // Train only the time model minimally: this bench targets
                // the power model's 100-epoch cost.
                ModelConfig {
                    epochs: 1,
                    ..ModelConfig::paper_time()
                },
            )
        })
    });
    group.bench_function("time_model_25_epochs", |b| {
        b.iter(|| {
            PowerTimeModels::train_with(
                black_box(&ds),
                ModelConfig {
                    epochs: 1,
                    ..ModelConfig::paper_power()
                },
                ModelConfig::paper_time(),
            )
        })
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (spec, ds) = campaign_dataset();
    let models = PowerTimeModels::train(&ds);
    let grid = DvfsGrid::for_spec(&spec);
    let freqs = grid.used();
    c.bench_function("predict_power_time_61_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &freqs {
                acc += models.predict_power_w(&spec, black_box(0.6), black_box(0.5), f);
                acc += models.predict_time_ratio(&spec, black_box(0.6), black_box(0.5), f);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
