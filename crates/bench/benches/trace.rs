//! Criterion benches for the flight recorder's record path: per-event cost
//! with tracing enabled (instant / counter / complete forms) and the cost
//! of the disabled gate (one relaxed atomic load and a branch), which every
//! instrumented hot path pays even when no trace is requested.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::trace;
use obs::ArgValue;
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    let name = trace::intern("bench.event");
    let arg = trace::intern("i");

    trace::set_enabled(true);
    group.bench_function("instant_enabled", |b| {
        b.iter(|| trace::instant(black_box(name), &[(arg, ArgValue::U64(black_box(7)))]))
    });
    group.bench_function("counter_enabled", |b| {
        b.iter(|| trace::counter(black_box(name), black_box(1.5)))
    });
    group.bench_function("complete_enabled", |b| {
        b.iter(|| {
            let t0 = trace::now_ns();
            trace::complete(black_box(name), t0, &[]);
        })
    });

    trace::set_enabled(false);
    group.bench_function("instant_disabled", |b| {
        b.iter(|| trace::instant(black_box(name), &[(arg, ArgValue::U64(black_box(7)))]))
    });
    group.finish();
    trace::reset();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
