//! Criterion benches for the tensor substrate: the three matmul kernels
//! (naive / blocked / rayon-parallel) that everything else builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::{init, matmul};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let b = init::uniform(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| matmul::matmul_naive(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| matmul::matmul_blocked(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| matmul::matmul_parallel(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = init::uniform(512, 512, -1.0, 1.0, &mut rng);
    let x: Vec<f64> = (0..512).map(|i| i as f64 * 0.01).collect();
    c.bench_function("matvec_512", |b| {
        b.iter(|| matmul::matvec(black_box(&a), black_box(&x)).unwrap())
    });
}

criterion_group!(benches, bench_matmul, bench_matvec);
criterion_main!(benches);
