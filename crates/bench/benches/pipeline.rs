//! Criterion benches for the pipeline stages around the models: dataset
//! assembly, KSG mutual information, optimal-frequency selection, the
//! simulated measurement sweep, and the offline collection sweep (the
//! campaign's workload × frequency × run profiling fan-out).

use criterion::{criterion_group, criterion_main, Criterion};
use dvfs_core::dataset::Dataset;
use dvfs_core::objective::{select_optimal, Objective};
use featsel::ksg::KsgOptions;
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, PhasedWorkload, SignatureBuilder};
use std::hint::black_box;
use telemetry::{CollectionCampaign, GpuBackend, LaunchConfig, SimulatorBackend};

fn bench_selection(c: &mut Criterion) {
    let freqs: Vec<f64> = (0..61).map(|i| 510.0 + 15.0 * i as f64).collect();
    let times: Vec<f64> = freqs.iter().map(|&f| 1410.0 / f).collect();
    let energies: Vec<f64> = freqs
        .iter()
        .zip(&times)
        .map(|(&f, &t)| (100.0 + 400.0 * (f / 1410.0).powi(3)) * t)
        .collect();
    c.bench_function("select_optimal_edp_61", |b| {
        b.iter(|| {
            select_optimal(
                black_box(&freqs),
                black_box(&energies),
                black_box(&times),
                Objective::Ed2p,
                Some(0.05),
            )
        })
    });
}

fn bench_mi(c: &mut Criterion) {
    let x: Vec<f64> = (0..800).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| v * v + 0.1 * ((v * 50.0).sin()))
        .collect();
    c.bench_function("ksg_mi_800_points", |b| {
        b.iter(|| featsel::mutual_information(black_box(&x), black_box(&y), KsgOptions::default()))
    });
}

fn bench_measurement_sweep(c: &mut Criterion) {
    let spec = DeviceSpec::ga100();
    let grid = DvfsGrid::for_spec(&spec);
    let sig = SignatureBuilder::new("sweep")
        .flops(1e13)
        .bytes(1e12)
        .build();
    let nm = NoiseModel::default_bench();
    c.bench_function("measure_61_states", |b| {
        b.iter(|| {
            grid.used()
                .iter()
                .map(|&f| gpu_model::sample::measure(&spec, &sig, f, 0, &nm).power_usage)
                .sum::<f64>()
        })
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let spec = DeviceSpec::ga100();
    let grid = DvfsGrid::for_spec(&spec);
    let nm = NoiseModel::default_bench();
    let sig = SignatureBuilder::new("w").flops(1e13).bytes(1e12).build();
    let samples: Vec<_> = grid
        .used()
        .iter()
        .flat_map(|&f| (0..3).map(move |r| (f, r)))
        .map(|(f, r)| gpu_model::sample::measure(&spec, &sig, f, r, &nm))
        .collect();
    c.bench_function("dataset_from_183_samples", |b| {
        b.iter(|| Dataset::from_samples(black_box(&spec), black_box(&samples)).unwrap())
    });
}

/// The offline phase's data-collection sweep: the paper's 21 training
/// workloads profiled over the GA100 grid, three runs per point — the
/// stage the concurrent campaign parallelizes across workloads. Smoke
/// mode strides the grid to keep check.sh fast.
fn bench_offline_sweep(c: &mut Criterion) {
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let backend = SimulatorBackend::ga100();
    let spec = backend.spec().clone();
    let workloads: Vec<PhasedWorkload> = kernels::suite::training_suite()
        .iter()
        .map(|k| k.workload(&spec))
        .collect();
    let stride = if smoke { 8 } else { 1 };
    let freqs: Vec<f64> = backend.grid().used().into_iter().step_by(stride).collect();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("offline_sweep", |b| {
        b.iter(|| {
            let campaign = CollectionCampaign::new(
                &backend,
                LaunchConfig {
                    frequencies: freqs.clone(),
                    runs: 3,
                    output: None,
                    threads: 0,
                },
            );
            campaign.collect(black_box(&workloads)).unwrap().len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_mi,
    bench_measurement_sweep,
    bench_dataset_build,
    bench_offline_sweep
);
criterion_main!(benches);
