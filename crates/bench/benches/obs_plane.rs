//! Criterion benches for the observability plane: the per-tick cost of
//! the time-series sampler (registry snapshot + ring push), windowed
//! stat derivation (rates + histogram-delta percentiles), a full
//! Prometheus text render, and the strict parse of that output. These
//! bound what a live `dvfs serve` pays per `DVFS_TS_INTERVAL` and per
//! scrape.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::timeseries::TimeSeries;
use obs::{prom, MetricsRegistry};
use std::hint::black_box;
use std::time::Duration;

fn loaded_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for i in 0..24 {
        reg.counter(&format!("serve.counter_{i}")).set(i * 1000 + 7);
    }
    for i in 0..12 {
        reg.gauge(&format!("serve.gauge_{i}")).set(i as f64 * 0.37);
    }
    for name in [
        "serve.request_ns",
        "serve.batch_len",
        "loadgen.rtt_ns",
        "cache.probe_ns",
        "obs.ts_sample_ns",
    ] {
        let h = reg.histogram(name);
        for k in 0..512u64 {
            h.record(k * k * 37 + 100);
        }
    }
    reg
}

fn bench_obs_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_plane");
    let reg = loaded_registry();

    let series = TimeSeries::new(128);
    series.sample(&reg);
    group.bench_function("sampler_tick", |b| b.iter(|| series.sample(&reg)));

    // Pre-fill a ring so window derivation walks a realistic span.
    let filled = TimeSeries::new(128);
    for _ in 0..64 {
        filled.sample(&reg);
    }
    group.bench_function("window_stats", |b| {
        b.iter(|| {
            let w = filled.window(Duration::from_secs(3600)).expect("window");
            black_box(w.rate("serve.counter_0"));
            black_box(w.ratio("serve.counter_1", "serve.counter_2"));
            if let Some(d) = w.hist_delta("serve.request_ns") {
                black_box(d.percentile(0.50));
                black_box(d.percentile(0.99));
            }
        })
    });

    group.bench_function("prom_render", |b| b.iter(|| black_box(prom::render(&reg))));

    let text = prom::render(&reg);
    group.bench_function("prom_parse", |b| {
        b.iter(|| prom::parse(black_box(&text)).expect("render output parses"))
    });
    group.finish();
}

criterion_group!(benches, bench_obs_plane);
criterion_main!(benches);
