//! Criterion benches for a cross-section of the instrumented CPU kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::accel::{Bfs, Fft, Spmv, Stencil};
use kernels::micro::{Dgemm, Stream};
use kernels::Kernel;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    let suite: Vec<Box<dyn Kernel>> = vec![
        Box::new(Dgemm { n: 128 }),
        Box::new(Stream { len: 1 << 18 }),
        Box::new(Stencil { n: 32, iters: 2 }),
        Box::new(Fft {
            len: 1024,
            batch: 16,
        }),
        Box::new(Spmv {
            n: 10_000,
            nnz_per_row: 16,
        }),
        Box::new(Bfs {
            nodes: 20_000,
            degree: 6,
        }),
    ];
    for k in suite {
        group.bench_function(k.name(), |b| b.iter(|| black_box(k.run(1.0))));
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
