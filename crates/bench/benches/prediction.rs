//! Criterion benches for the online prediction phase: scalar per-frequency
//! forward passes vs the batched sweep vs the cache-aware path, each over
//! the full 61-state GA100 DVFS grid (the headline comparison for the
//! batch-first online phase).

use criterion::{criterion_group, criterion_main, Criterion};
use dvfs_core::cache::ProfileCache;
use dvfs_core::dataset::Dataset;
use dvfs_core::models::PowerTimeModels;
use dvfs_core::predictor::{PredictedProfile, Predictor};
use gpu_model::{DeviceSpec, DvfsGrid, MetricSample, NoiseModel, SignatureBuilder};
use nn::activation::Activation;
use nn::network::NetworkBuilder;
use nn::{reference, Workspace};
use std::hint::black_box;
use tensor::Matrix;

/// A small but representative training campaign: enough coverage that the
/// trained networks behave like the real ones, cheap enough that the bench
/// binary starts in seconds.
fn trained_models(spec: &DeviceSpec) -> PowerTimeModels {
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c1")
            .flops(2e13)
            .bytes(2e11)
            .kappa_compute(0.9)
            .build(),
        SignatureBuilder::new("m1")
            .flops(2e11)
            .bytes(2e13)
            .kappa_memory(0.85)
            .build(),
        SignatureBuilder::new("x1").flops(8e12).bytes(3e12).build(),
        SignatureBuilder::new("x2")
            .flops(4e12)
            .bytes(8e11)
            .kappa_compute(0.5)
            .build(),
    ];
    let grid = DvfsGrid::for_spec(spec);
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in grid.used().iter().step_by(4) {
            samples.push(gpu_model::sample::measure(spec, sig, f, 0, &nm));
        }
        samples.push(gpu_model::sample::measure(
            spec,
            sig,
            spec.max_core_mhz,
            0,
            &nm,
        ));
    }
    PowerTimeModels::train(&Dataset::from_samples(spec, &samples).unwrap())
}

fn reference_sample(spec: &DeviceSpec) -> MetricSample {
    let sig = SignatureBuilder::new("unseen")
        .flops(1.5e13)
        .bytes(1.0e12)
        .build();
    gpu_model::sample::measure(spec, &sig, spec.max_core_mhz, 0, &NoiseModel::none())
}

/// The pre-batching online phase: two scalar forward passes per frequency
/// (2F single-row network evaluations for an F-state sweep).
fn scalar_profile(
    models: &PowerTimeModels,
    spec: &DeviceSpec,
    reference: &MetricSample,
    freqs: &[f64],
) -> PredictedProfile {
    let fp = reference.fp_active();
    let dram = reference.dram_active;
    let ratio_at_max = models.predict_time_ratio(spec, fp, dram, spec.max_core_mhz);
    let anchor = reference.exec_time / ratio_at_max.max(1e-9);
    let power_w: Vec<f64> = freqs
        .iter()
        .map(|&f| models.predict_power_w(spec, fp, dram, f))
        .collect();
    let time_s: Vec<f64> = freqs
        .iter()
        .map(|&f| anchor * models.predict_time_ratio(spec, fp, dram, f))
        .collect();
    PredictedProfile::new(reference.workload.clone(), freqs.to_vec(), power_w, time_s)
}

fn bench_prediction(c: &mut Criterion) {
    let spec = DeviceSpec::ga100();
    let models = trained_models(&spec);
    let predictor = Predictor::new(&models, spec.clone());
    let freqs = DvfsGrid::for_spec(&spec).used();
    assert_eq!(freqs.len(), 61);
    let reference = reference_sample(&spec);

    let mut group = c.benchmark_group("predict_61_states");
    group.bench_function("scalar_loop", |b| {
        b.iter(|| scalar_profile(&models, &spec, black_box(&reference), black_box(&freqs)))
    });
    group.bench_function("batched", |b| {
        b.iter(|| predictor.predict_from_reference(black_box(&reference), black_box(&freqs)))
    });
    let cache = ProfileCache::new(16);
    // Warm the single entry so the steady-state (hit) path is measured.
    let _ = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
    group.bench_function("cached_hit", |b| {
        b.iter(|| {
            predictor.predict_from_reference_cached(
                &cache,
                black_box(&reference),
                black_box(&freqs),
            )
        })
    });
    group.finish();
}

/// Before/after guard for the zero-allocation inference path: a raw
/// paper-topology network evaluated over a 61-row feature matrix (one
/// DVFS sweep) through the preserved allocating reference, the
/// workspace-backed `predict`, a caller-held `predict_into` workspace,
/// and the single-row `predict_one` vector path. All four produce
/// bitwise-identical numbers.
fn bench_nn_forward(c: &mut Criterion) {
    let net = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(21)
        .build();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
    let x = tensor::init::uniform(61, 3, 0.0, 1.0, &mut rng);
    let rows: Vec<Vec<f64>> = x.rows_iter().map(|r| r.to_vec()).collect();

    let mut group = c.benchmark_group("nn_forward_61_states");
    group.bench_function("reference_alloc", |b| {
        b.iter(|| reference::predict(&net, black_box(&x)))
    });
    group.bench_function("workspace_predict", |b| {
        b.iter(|| net.predict(black_box(&x)))
    });
    let mut ws = Workspace::for_network(&net, x.rows());
    group.bench_function("predict_into", |b| {
        b.iter(|| {
            let out: &Matrix = net.predict_into(black_box(&x), &mut ws);
            out.as_slice()[0]
        })
    });
    group.bench_function("predict_one_x61", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &rows {
                acc += net.predict_one(black_box(row))[0];
            }
            acc
        })
    });
    // The batch-fused engines: one packed GEMM per layer over all 61
    // rows, f32 lanes (engine_f32) or bf16-truncated weights with f32
    // accumulation (engine_bf16) — the serving fast path.
    let engine_f32 = nn::InferenceEngine::compile(&net, nn::Precision::F32);
    let engine_bf16 = nn::InferenceEngine::compile(&net, nn::Precision::Bf16);
    let mut out = Vec::new();
    group.bench_function("engine_f32", |b| {
        b.iter(|| {
            engine_f32.predict_into(black_box(&x), &mut out);
            out[0]
        })
    });
    group.bench_function("engine_bf16", |b| {
        b.iter(|| {
            engine_bf16.predict_into(black_box(&x), &mut out);
            out[0]
        })
    });
    group.bench_function("engine_one_x61", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &rows {
                engine_f32.predict_one_into(black_box(row), &mut out);
                acc += out[0];
            }
            acc
        })
    });
    group.finish();
}

/// Guards the self-instrumentation budget: the cached-hit request path adds
/// one `Instant` pair plus one histogram record, which must stay well under
/// 10% of the ~1 µs cached lookup it wraps (i.e. double-digit nanoseconds).
fn bench_obs_overhead(c: &mut Criterion) {
    let hist = obs::global().histogram("bench.overhead_ns");
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("instant_pair_plus_record", |b| {
        b.iter(|| {
            let t0 = std::time::Instant::now();
            hist.record_duration(black_box(t0.elapsed()));
        })
    });
    group.bench_function("counter_inc", |b| {
        let requests = obs::global().counter("bench.requests");
        b.iter(|| requests.inc())
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| obs::span::Span::enter(black_box("bench-span")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prediction,
    bench_nn_forward,
    bench_obs_overhead
);
criterion_main!(benches);
