//! Guard for the batch-fused inference engine: the packed f32 engine's
//! full 61-state sweep must beat the f64 workspace `predict_into` path
//! by ≥2× (min-to-min over several attempts, the same statistic
//! `BENCH_nn.json` records).
//!
//! Timing ratios are only meaningful with optimizations on, so the
//! guard logs and exits under a debug build (`cargo test -q` tier-1
//! runs); `scripts/check.sh` runs it in release. Either way it asserts
//! the f64 engine mode reproduces the workspace path bitwise, so the
//! speedup never comes at the price of correctness.

use nn::activation::Activation;
use nn::network::{Network, NetworkBuilder};
use nn::{InferenceEngine, Precision, Workspace};
use tensor::Matrix;

fn paper_net() -> Network {
    NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(21)
        .build()
}

fn sweep_input() -> Matrix {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
    tensor::init::uniform(61, 3, 0.0, 1.0, &mut rng)
}

/// Minimum wall time of `iters` runs of `f`, over `attempts` attempts.
fn min_seconds(mut f: impl FnMut(), iters: usize, attempts: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..attempts {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

#[test]
fn fused_f32_sweep_beats_workspace_predict_into_2x() {
    let net = paper_net();
    let x = sweep_input();

    // Correctness leg, valid in any build: the f64 engine is the
    // workspace path (bitwise), and the f32 engine tracks it closely.
    let mut ws = Workspace::for_network(&net, x.rows());
    let reference = net.predict_into(&x, &mut ws).as_slice().to_vec();
    let engine_f64 = InferenceEngine::compile(&net, Precision::F64);
    let engine_f32 = InferenceEngine::compile(&net, Precision::F32);
    let mut out = Vec::new();
    engine_f64.predict_into(&x, &mut out);
    assert_eq!(out, reference, "f64 engine diverged from workspace path");
    engine_f32.predict_into(&x, &mut out);
    for (got, want) in out.iter().zip(&reference) {
        assert!(
            (got - want).abs() <= 1e-4 + 1e-4 * want.abs(),
            "f32 engine outside documented bound: {got} vs {want}"
        );
    }

    if cfg!(debug_assertions) {
        eprintln!("engine_speedup: debug build, timing guard skipped");
        return;
    }

    const ITERS: usize = 200;
    const ATTEMPTS: usize = 5;
    let t_workspace = min_seconds(
        || {
            let y = net.predict_into(&x, &mut ws);
            std::hint::black_box(y.as_slice()[0]);
        },
        ITERS,
        ATTEMPTS,
    );
    let t_engine = min_seconds(
        || {
            engine_f32.predict_into(&x, &mut out);
            std::hint::black_box(out[0]);
        },
        ITERS,
        ATTEMPTS,
    );
    let speedup = t_workspace / t_engine;
    eprintln!(
        "engine_speedup: workspace {:.1} µs, fused f32 {:.1} µs ({speedup:.2}x)",
        t_workspace * 1e6,
        t_engine * 1e6
    );
    assert!(
        speedup >= 2.0,
        "fused f32 sweep must be ≥2× faster than predict_into \
         (workspace {:.1} µs, engine {:.1} µs, {speedup:.2}x)",
        t_workspace * 1e6,
        t_engine * 1e6
    );
}
