//! Guard for the deterministic data-parallel training engine: at 4
//! worker threads the whole-fit wall time must beat the serial workspace
//! path by ≥1.8× (min-to-min over several attempts, the same statistic
//! `BENCH_nn.json` records).
//!
//! The guard only engages on hosts with ≥4 available cores — on smaller
//! boxes (such as single-core CI containers) the parallel engine can
//! only add coordination overhead, so the test logs and exits. Either
//! way it asserts the two paths produce bitwise-identical networks, so
//! the speedup never comes at the price of reproducibility.

use nn::activation::Activation;
use nn::network::{Network, NetworkBuilder};
use nn::train::{TrainConfig, Trainer};
use tensor::Matrix;

fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let x = tensor::init::uniform(n, 3, 0.0, 1.0, &mut rng);
    let y_vals: Vec<f64> = x
        .rows_iter()
        .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
        .collect();
    (x, Matrix::col_vector(&y_vals))
}

fn paper_net() -> Network {
    NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(7)
        .build()
}

/// Minimum fit wall time over `attempts` runs, plus the final network of
/// the last run (all runs produce identical networks by construction).
fn min_fit_seconds(
    net: &Network,
    cfg: TrainConfig,
    x: &Matrix,
    y: &Matrix,
    attempts: usize,
) -> (f64, Network) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..attempts {
        let mut trainer = Trainer::new(net.clone(), cfg);
        let t0 = std::time::Instant::now();
        trainer.fit(x, y).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(trainer.into_network());
    }
    (best, last.expect("at least one attempt"))
}

#[test]
fn parallel_fit_speedup_guard() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (x, y) = dataset(512, 11);
    let net = paper_net();
    let cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    let serial_cfg = TrainConfig { threads: 1, ..cfg };
    let parallel_cfg = TrainConfig { threads: 4, ..cfg };

    // Identity always holds, whatever the host looks like.
    let (t_serial, net_serial) = min_fit_seconds(&net, serial_cfg, &x, &y, 3);
    let (t_parallel, net_parallel) = min_fit_seconds(&net, parallel_cfg, &x, &y, 3);
    for (ls, lp) in net_serial.layers().iter().zip(net_parallel.layers()) {
        assert_eq!(
            ls.weights().as_slice(),
            lp.weights().as_slice(),
            "parallel fit diverged from serial"
        );
        assert_eq!(ls.bias().as_slice(), lp.bias().as_slice());
    }

    if cores < 4 {
        eprintln!(
            "parallel_fit_speedup_guard: host has {cores} core(s) < 4 — \
             speedup assertion skipped (serial {t_serial:.3}s, parallel {t_parallel:.3}s)"
        );
        return;
    }
    let speedup = t_serial / t_parallel;
    assert!(
        speedup >= 1.8,
        "parallel fit speedup {speedup:.2}x < 1.8x at 4 threads \
         (serial min {t_serial:.3}s, parallel min {t_parallel:.3}s)"
    );
}
