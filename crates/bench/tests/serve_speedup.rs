//! Guard for the serve request path: a real in-process `dvfs serve`
//! instance hammered by the pipelined closed-loop load generator must
//! clear the throughput floor and p99 ceiling that `BENCH_nn.json`
//! records for the full run (`serve_qps` ≥ 33 382 — 3× the pre-sharded
//! baseline's 11 127 — and `serve_p99_us` ≤ 600).
//!
//! Timing gates are only meaningful with optimizations on, so the guard
//! logs and exits under a debug build (`cargo test -q` tier-1 runs);
//! `scripts/check.sh` runs it in release. Slow or noisy hosts can relax
//! both bounds with `SERVE_BUDGET_SCALE` (floor divided, ceiling
//! multiplied), the same escape hatch `TRACE_BUDGET_SCALE` provides for
//! the trace-overhead guard. Either way the functional leg runs: every
//! request must be answered ok and in order (the loadgen aborts the run
//! on an out-of-order workload echo).

use dvfs_core::dataset::Dataset;
use dvfs_core::models::PowerTimeModels;
use dvfs_core::serve::loadgen::{self, LoadgenConfig, Pacing};
use dvfs_core::serve::{ServeConfig, Server};
use dvfs_core::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
use std::sync::Arc;

/// Throughput floor, requests/second (3× the single-queue baseline).
const QPS_FLOOR: f64 = 33_382.0;
/// Latency ceiling, microseconds at the 99th percentile.
const P99_CEILING_US: f64 = 600.0;

fn budget_scale() -> f64 {
    std::env::var("SERVE_BUDGET_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 1.0)
        .unwrap_or(1.0)
}

fn trained_models() -> PowerTimeModels {
    let spec = DeviceSpec::ga100();
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
        SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
        SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
    ];
    let grid = DvfsGrid::for_spec(&spec);
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in grid.used().iter().step_by(6) {
            samples.push(gpu_model::sample::measure(&spec, sig, f, 0, &nm));
        }
        samples.push(gpu_model::sample::measure(
            &spec,
            sig,
            spec.max_core_mhz,
            0,
            &nm,
        ));
    }
    PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap())
}

#[test]
fn pipelined_serve_clears_qps_floor_and_p99_ceiling() {
    let snapshot = ModelSnapshot::new(
        trained_models(),
        DeviceSpec::ga100(),
        SnapshotMeta {
            label: "serve-gate".into(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
    );
    let store = Arc::new(ModelStore::new(snapshot));
    let server = Server::start(ServeConfig::default(), store).expect("bind");
    let addr = server.local_addr().to_string();

    let debug_build = cfg!(debug_assertions);
    // 4 connections × depth 4 = 16 outstanding: enough to saturate the
    // workers while keeping queueing delay (outstanding/throughput) a
    // small fraction of the p99 ceiling.
    let config = LoadgenConfig {
        addr,
        connections: 4,
        // Enough load for stable percentiles in release; a quick
        // correctness pass (ordering + ok replies) in debug.
        requests: if debug_build { 2_000 } else { 60_000 },
        pacing: Pacing::Closed,
        pipeline: 4,
        shutdown_after: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen run (aborts on out-of-order replies)");
    server.join();

    assert_eq!(
        report.errors, 0.0,
        "pipelined load must not produce error replies"
    );
    assert_eq!(report.ok, config.requests as f64);

    if debug_build {
        eprintln!("serve_speedup: debug build, timing gate skipped");
        return;
    }
    let scale = budget_scale();
    let floor = QPS_FLOOR / scale;
    let ceiling = P99_CEILING_US * scale;
    eprintln!(
        "serve_speedup: {:.0} req/s (floor {floor:.0}), p99 {:.0} µs (ceiling {ceiling:.0})",
        report.qps, report.p99_us
    );
    assert!(
        report.qps >= floor,
        "serve throughput regressed: {:.0} req/s < floor {floor:.0} \
         (set SERVE_BUDGET_SCALE to relax on slow hosts)",
        report.qps
    );
    assert!(
        report.p99_us <= ceiling,
        "serve p99 regressed: {:.0} µs > ceiling {ceiling:.0} \
         (set SERVE_BUDGET_SCALE to relax on slow hosts)",
        report.p99_us
    );
}
