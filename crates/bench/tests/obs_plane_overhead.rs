//! Budget guard for the observability plane's periodic work: a sampler
//! tick (capturing a registry snapshot into the time series plus
//! deriving window stats) and a full Prometheus render. Both run inside
//! a live `dvfs serve` — the tick every `DVFS_TS_INTERVAL` on the
//! sampler thread, the render on every scrape — so they must stay far
//! below the request path's latency budget or the plane itself would
//! show up in the p99 it reports.
//!
//! Budgets (min over several trials, debug build): < 250 µs per tick
//! and < 500 µs per render on a registry sized like a busy server
//! (dozens of counters/gauges, several live histograms). Slow hosts can
//! relax with `OBS_BUDGET_SCALE=2 cargo test ...`.

use obs::timeseries::TimeSeries;
use obs::{prom, MetricsRegistry};
use std::hint::black_box;
use std::time::{Duration, Instant};

const TRIALS: usize = 7;
const ITERS: u32 = 50;

/// A registry shaped like a serve process under load: cache + serve
/// counters, window gauges, and latency histograms with spread-out
/// values (so sparse-bucket walks do real work).
fn loaded_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for i in 0..24 {
        reg.counter(&format!("serve.counter_{i}")).set(i * 1000 + 7);
    }
    for i in 0..12 {
        reg.gauge(&format!("serve.gauge_{i}")).set(i as f64 * 0.37);
    }
    for name in [
        "serve.request_ns",
        "serve.batch_len",
        "loadgen.rtt_ns",
        "cache.probe_ns",
        "obs.ts_sample_ns",
    ] {
        let h = reg.histogram(name);
        for k in 0..512u64 {
            h.record(k * k * 37 + 100);
        }
    }
    reg
}

/// Minimum seconds/call of `f` over `TRIALS` batches of `ITERS` calls.
fn min_per_call<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(t0.elapsed() / ITERS);
    }
    best
}

fn budget_scale() -> u32 {
    std::env::var("OBS_BUDGET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn sampler_tick_and_prom_render_stay_within_budget() {
    let scale = budget_scale();
    let reg = loaded_registry();

    // One tick = capture + ring push; plus the window stats a live
    // tick's consumers derive (rate + percentile deltas), which the
    // serve `publish_live` hook computes on the same cadence.
    let series = TimeSeries::new(128);
    series.sample(&reg);
    let tick = min_per_call(|| {
        series.sample(&reg);
        if let Some(w) = series.window(Duration::from_secs(3600)) {
            black_box(w.rate("serve.counter_0"));
            if let Some(d) = w.hist_delta("serve.request_ns") {
                black_box(d.percentile(0.99));
            }
        }
    });

    let render = min_per_call(|| {
        black_box(prom::render(&reg));
    });

    println!(
        "obs plane: sampler tick {:?}, prom render {:?} (scale {scale})",
        tick, render
    );
    let tick_budget = Duration::from_micros(250) * scale;
    let render_budget = Duration::from_micros(500) * scale;
    assert!(
        tick < tick_budget,
        "sampler tick too slow: {tick:?} (budget {tick_budget:?}; \
         set OBS_BUDGET_SCALE to relax on slow hosts)"
    );
    assert!(
        render < render_budget,
        "prom render too slow: {render:?} (budget {render_budget:?}; \
         set OBS_BUDGET_SCALE to relax on slow hosts)"
    );
}
