//! Budget guard for the flight recorder's record path. The recorder only
//! stays "always-armable" if recording an event is far cheaper than the
//! work it annotates, and if the disabled gate is close to free — the
//! instrumented hot loops (trainer epochs, batch prediction) run with
//! tracing off in every normal invocation.
//!
//! Budgets (min over several trials, the same statistic the criterion
//! `trace_overhead` group reports): < 60 ns per recorded event with
//! tracing enabled, < 5 ns per call with tracing disabled. Slow or noisy
//! hosts can relax both with `TRACE_BUDGET_SCALE=2 cargo test ...`.

use obs::trace;
use obs::ArgValue;
use std::hint::black_box;
use std::time::Instant;

const TRIALS: usize = 7;
const ITERS: u64 = 200_000;

/// Minimum ns/call of `f` over `TRIALS` batches of `ITERS` calls.
fn min_ns_per_call<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / ITERS as f64);
    }
    best
}

fn budget_scale() -> f64 {
    std::env::var("TRACE_BUDGET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

#[test]
fn record_path_stays_within_budget() {
    let scale = budget_scale();
    let name = trace::intern("overhead.guard");
    let arg = trace::intern("i");

    trace::set_enabled(true);
    let enabled_ns = min_ns_per_call(|| {
        trace::instant(black_box(name), &[(arg, ArgValue::U64(black_box(3)))]);
    });

    trace::set_enabled(false);
    let disabled_ns = min_ns_per_call(|| {
        trace::instant(black_box(name), &[(arg, ArgValue::U64(black_box(3)))]);
    });
    trace::reset();

    println!("trace record path: enabled {enabled_ns:.1} ns/event, disabled {disabled_ns:.2} ns/call (scale {scale})");
    assert!(
        enabled_ns < 60.0 * scale,
        "enabled record path too slow: {enabled_ns:.1} ns/event (budget {} ns; \
         set TRACE_BUDGET_SCALE to relax on slow hosts)",
        60.0 * scale
    );
    assert!(
        disabled_ns < 5.0 * scale,
        "disabled gate too slow: {disabled_ns:.2} ns/call (budget {} ns; \
         set TRACE_BUDGET_SCALE to relax on slow hosts)",
        5.0 * scale
    );
}
