//! Guard for the decision journal's hot-path cost: the same pipelined
//! load is driven twice through in-process `dvfs serve` instances —
//! once bare, once with `--journal-dir` enabled — and the journal leg's
//! p99 must stay within 5% of the bare leg's (and its throughput within
//! 5% below). The journal is fed off the hot path through per-worker
//! rings, so the worker only pays an encode + ring push per decision;
//! this gate keeps that claim honest.
//!
//! Timing gates are only meaningful with optimizations on, so under a
//! debug build (`cargo test -q` tier-1) the guard runs the functional
//! legs — every request answered, every decision journaled, nothing
//! dropped — and skips the budget check. Slow or noisy hosts can relax
//! it with `JOURNAL_BUDGET_SCALE` (the allowed regression factor is
//! multiplied), mirroring `SERVE_BUDGET_SCALE`.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::PowerTimeModels;
use dvfs_core::serve::loadgen::{self, LoadgenConfig, Pacing};
use dvfs_core::serve::{ServeConfig, Server};
use dvfs_core::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
use std::sync::Arc;

/// Allowed p99 (and inverse qps) regression of the journal leg.
const BUDGET: f64 = 1.05;

fn budget_scale() -> f64 {
    std::env::var("JOURNAL_BUDGET_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 1.0)
        .unwrap_or(1.0)
}

/// The 5% claim is about the worker-side cost of journaling (encode
/// into a reused buffer + one ring swap); the dedicated writer thread
/// is designed to drain on a spare core. On a host with a single
/// hardware thread the whole process timeshares one core, so every
/// byte the writer checksums and buffers is paid for by the serving
/// workers and its drain bursts land straight in the tail. The gate
/// still has to catch genuine hot-path regressions there (the
/// unbuffered-write bug it was born from was a 3x), so instead of
/// skipping it widens to x1.6.
fn host_scale() -> f64 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() <= 1 => 1.6,
        _ => 1.0,
    }
}

fn trained_models() -> PowerTimeModels {
    let spec = DeviceSpec::ga100();
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
        SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
        SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
    ];
    let grid = DvfsGrid::for_spec(&spec);
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in grid.used().iter().step_by(6) {
            samples.push(gpu_model::sample::measure(&spec, sig, f, 0, &nm));
        }
        samples.push(gpu_model::sample::measure(
            &spec,
            sig,
            spec.max_core_mhz,
            0,
            &nm,
        ));
    }
    PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap())
}

/// Starts a server (optionally journaling into `journal_dir`), drives
/// the standard pipelined load, joins, and returns the loadgen report.
fn run_leg(
    models: &PowerTimeModels,
    journal_dir: Option<std::path::PathBuf>,
    requests: u64,
) -> loadgen::LoadgenReport {
    let snapshot = ModelSnapshot::new(
        models.clone(),
        DeviceSpec::ga100(),
        SnapshotMeta {
            label: "journal-gate".into(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
    );
    let store = Arc::new(ModelStore::new(snapshot));
    let config = ServeConfig {
        journal: journal_dir.map(obs::journal::JournalConfig::new),
        ..ServeConfig::default()
    };
    let server = Server::start(config, store).expect("bind");
    let addr = server.local_addr().to_string();
    let config = LoadgenConfig {
        addr,
        connections: 4,
        requests,
        pacing: Pacing::Closed,
        pipeline: 4,
        shutdown_after: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen run");
    server.join();
    assert_eq!(report.errors, 0.0);
    assert_eq!(report.ok, requests as f64);
    report
}

#[test]
fn journal_keeps_p99_within_five_percent_of_bare_serving() {
    let models = trained_models();
    let debug_build = cfg!(debug_assertions);
    let requests: u64 = if debug_build { 2_000 } else { 60_000 };
    let dir = std::env::temp_dir().join(format!("dvfs-journal-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Bare leg first, journal leg second: identical load, fresh server
    // each, so the only delta is the journal feed.
    let bare = run_leg(&models, None, requests);
    let journaled = run_leg(&models, Some(dir.clone()), requests);

    // Functional half of the gate, debug and release alike: the journal
    // leg must have made every decision durable.
    let scan = obs::journal::scan_dir(&dir).expect("scan journal");
    assert_eq!(scan.records, requests, "every decision must be journaled");
    assert_eq!(scan.torn_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();

    if debug_build {
        eprintln!("journal_overhead: debug build, timing gate skipped");
        return;
    }
    let host = host_scale();
    if host > 1.0 {
        eprintln!(
            "journal_overhead: single hardware thread — the writer timeshares \
             the serving core, widening the budget ×{host:.1}"
        );
    }
    let budget = BUDGET * host * budget_scale();
    eprintln!(
        "journal_overhead: bare p99 {:.1} µs / {:.0} req/s, journaled p99 {:.1} µs / {:.0} req/s \
         (budget ×{budget:.2})",
        bare.p99_us, bare.qps, journaled.p99_us, journaled.qps
    );
    assert!(
        journaled.p99_us <= bare.p99_us * budget,
        "journal p99 overhead above budget: {:.1} µs vs {:.1} µs ×{budget:.2} \
         (set JOURNAL_BUDGET_SCALE to relax on slow hosts)",
        journaled.p99_us,
        bare.p99_us
    );
    assert!(
        journaled.qps * budget >= bare.qps,
        "journal throughput overhead above budget: {:.0} req/s vs {:.0} req/s \
         (set JOURNAL_BUDGET_SCALE to relax on slow hosts)",
        journaled.qps,
        bare.qps
    );
}
