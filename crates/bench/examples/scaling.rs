//! Parallel-scaling probe for the deterministic data-parallel training
//! engine: fits the paper topology (3 -> 64 -> 64 -> 64 -> 1, SELU,
//! RMSprop, batch 64) on 512 synthetic rows at 1/2/4/8 worker threads
//! and prints min-of-3 wall times plus the speedup over the serial run.
//! The final networks are asserted bitwise identical across all thread
//! counts, so whatever the host, only speed may vary — never the model.
//!
//! ```bash
//! cargo run --release -p bench --example scaling
//! ```

use nn::activation::Activation;
use nn::network::{Network, NetworkBuilder};
use nn::train::{TrainConfig, Trainer};
use tensor::Matrix;

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let x = tensor::init::uniform(512, 3, 0.0, 1.0, &mut rng);
    let y_vals: Vec<f64> = x
        .rows_iter()
        .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
        .collect();
    let y = Matrix::col_vector(&y_vals);
    let net: Network = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(7)
        .build();
    let cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores}");
    println!("{:>7}  {:>10}  {:>8}", "threads", "min fit", "speedup");

    let mut baseline = None;
    let mut reference: Option<Network> = None;
    for threads in [1usize, 2, 4, 8] {
        let run_cfg = TrainConfig { threads, ..cfg };
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..3 {
            let mut trainer = Trainer::new(net.clone(), run_cfg);
            let t0 = std::time::Instant::now();
            trainer.fit(&x, &y).expect("synthetic dataset is valid");
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(trainer.into_network());
        }
        let fitted = last.expect("at least one attempt ran");
        match &reference {
            None => reference = Some(fitted),
            Some(serial) => {
                for (ls, lt) in serial.layers().iter().zip(fitted.layers()) {
                    assert_eq!(
                        ls.weights().as_slice(),
                        lt.weights().as_slice(),
                        "fit at {threads} threads diverged from serial"
                    );
                    assert_eq!(ls.bias().as_slice(), lt.bias().as_slice());
                }
            }
        }
        let base = *baseline.get_or_insert(best);
        println!(
            "{:>7}  {:>8.1}ms  {:>7.2}x",
            threads,
            best * 1e3,
            base / best
        );
    }
    println!("networks bitwise identical across all thread counts: yes");
}
