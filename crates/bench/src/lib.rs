//! Experiment harness shared by the per-figure binaries and the Criterion
//! benches.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures: it builds a [`dvfs_core::experiments::Lab`], runs the matching
//! driver, prints the rendered rows/series, and (when `DVFS_RESULTS_DIR`
//! is set) writes the JSON report next to it.

use dvfs_core::experiments::Lab;
use serde::Serialize;

/// Builds the Lab for a harness binary. `DVFS_QUICK=1` subsamples the
/// training grid (stride 4) for fast smoke runs; the default is the
/// paper's full 61-state campaign.
pub fn build_lab() -> Lab {
    let quick = std::env::var("DVFS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    if quick {
        obs::log!(Info, "[harness] DVFS_QUICK=1: subsampled training grid");
        Lab::with_stride(4)
    } else {
        obs::log!(
            Info,
            "[harness] building full paper lab (21 benchmarks x 61 states x 3 runs)..."
        );
        Lab::paper()
    }
}

/// Prints a rendered report and optionally persists the JSON payload.
pub fn emit<T: Serialize>(name: &str, rendered: &str, report: &T) {
    println!("{rendered}");
    if let Ok(dir) = std::env::var("DVFS_RESULTS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    obs::log!(Error, "[harness] failed to write {}: {e}", path.display());
                } else {
                    obs::log!(Info, "[harness] wrote {}", path.display());
                }
            }
            Err(e) => obs::log!(Error, "[harness] failed to serialize {name}: {e}"),
        }
    }
}
