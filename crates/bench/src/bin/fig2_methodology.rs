//! Regenerates the paper's Figure 2 (methodology overview) as an executed
//! pipeline walk.

use dvfs_core::experiments::fig2;

fn main() {
    let lab = bench::build_lab();
    let report = fig2::run(&lab);
    bench::emit("fig2_methodology", &report.render(), &report);
}
