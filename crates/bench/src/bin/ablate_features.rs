//! Ablation: input feature subsets.
//!
//! Validates the MI-based selection (paper Section 4.2): the three chosen
//! features beat any strict subset of them for power prediction.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::BATCH_SIZE;
use nn::{Activation, Loss, NetworkBuilder, OptimizerKind, TrainConfig, Trainer};
use telemetry::GpuBackend;
use tensor::Matrix;

/// Column subsets of (fp_active, dram_active, f_norm).
const SUBSETS: [(&str, &[usize]); 6] = [
    ("f", &[2]),
    ("fp", &[0]),
    ("fp+f", &[0, 2]),
    ("dram+f", &[1, 2]),
    ("fp+dram", &[0, 1]),
    ("fp+dram+f", &[0, 1, 2]),
];

fn select_columns(x: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), cols.len());
    for r in 0..x.rows() {
        for (j, &c) in cols.iter().enumerate() {
            out[(r, j)] = x[(r, c)];
        }
    }
    out
}

fn main() {
    let lab = bench::build_lab();
    let ds: &Dataset = &lab.pipeline.dataset;
    let spec = lab.ga100.spec().clone();

    println!("== Ablation: feature subsets (power model) ==");
    println!(
        "{:<12} {:>12} {:>16}",
        "features", "val loss", "app accuracy(%)"
    );
    for (name, cols) in SUBSETS {
        let x = select_columns(&ds.x, cols);
        let y = Matrix::col_vector(&ds.y_power);
        let net = {
            let mut b = NetworkBuilder::new(cols.len()).seed(0xFEA7);
            for _ in 0..3 {
                b = b.hidden(64, Activation::Selu);
            }
            b.output(1, Activation::Linear).build()
        };
        let mut trainer = Trainer::new(
            net,
            TrainConfig {
                epochs: 100,
                batch_size: BATCH_SIZE,
                optimizer: OptimizerKind::paper_default(),
                loss: Loss::Mse,
                validation_split: 0.2,
                shuffle_seed: 7,
                early_stop_patience: None,
                ..TrainConfig::default()
            },
        );
        let history = trainer.fit(&x, &y).expect("dataset is valid");
        let net = trainer.into_network();

        let mut acc_sum = 0.0;
        for app in &lab.apps {
            let measured = &lab.measured_ga100[&app.name];
            let (fp, dram) = app.activities(&spec, spec.max_core_mhz);
            let pred: Vec<f64> = measured
                .frequencies
                .iter()
                .map(|&f| {
                    let full = [fp, dram, f / spec.max_core_mhz];
                    let row: Vec<f64> = cols.iter().map(|&c| full[c]).collect();
                    (net.predict_one(&row)[0] * spec.tdp_w).max(0.0)
                })
                .collect();
            acc_sum += nn::metrics::accuracy_from_mape(&pred, &measured.power_w);
        }
        println!(
            "{:<12} {:>12.6} {:>16.1}",
            name,
            history.val_loss.last().copied().unwrap_or(f64::NAN),
            acc_sum / lab.apps.len() as f64
        );
    }
}
