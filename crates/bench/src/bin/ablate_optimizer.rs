//! Ablation: training optimizer (the paper's Section 4.3 sweep).
//!
//! The paper compared Adam, Adamax, Nadam, RMSprop and AdaDelta and chose
//! RMSprop. This binary reports the power model's final train/validation
//! losses under each optimizer at the paper's epoch budget.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels};
use nn::OptimizerKind;

fn main() {
    let lab = bench::build_lab();
    let ds: &Dataset = &lab.pipeline.dataset;

    let candidates = [
        OptimizerKind::RmsProp {
            lr: 1e-3,
            rho: 0.9,
            eps: 1e-7,
        },
        OptimizerKind::Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        OptimizerKind::Adamax {
            lr: 2e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        OptimizerKind::Nadam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        OptimizerKind::AdaDelta {
            lr: 1.0,
            rho: 0.95,
            eps: 1e-7,
        },
        OptimizerKind::Sgd {
            lr: 1e-2,
            momentum: 0.9,
        },
    ];

    println!("== Ablation: optimizer (power model, 100 epochs) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "optimizer", "train loss", "val loss", "wall (s)"
    );
    for opt in candidates {
        let cfg = ModelConfig {
            optimizer: opt,
            ..ModelConfig::paper_power()
        };
        let models = PowerTimeModels::train_with(
            ds,
            cfg,
            ModelConfig {
                optimizer: opt,
                ..ModelConfig::paper_time()
            },
        );
        println!(
            "{:<10} {:>14.6} {:>14.6} {:>10.2}",
            opt.name(),
            models.power_history.train_loss.last().unwrap(),
            models
                .power_history
                .val_loss
                .last()
                .copied()
                .unwrap_or(f64::NAN),
            models.power_history.train_seconds
        );
    }
}
