//! Scores the trained models on their own training benchmarks (the
//! generalization-gap companion analysis).

use dvfs_core::experiments::training_fit;

fn main() {
    let lab = bench::build_lab();
    let report = training_fit::run(&lab);
    bench::emit("training_fit", &report.render(), &report);
}
