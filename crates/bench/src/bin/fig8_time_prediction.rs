//! Regenerates the paper's Figure 8 (normalized time panels).

use dvfs_core::experiments::fig8;

fn main() {
    let lab = bench::build_lab();
    let report = fig8::run(&lab);
    bench::emit("fig8_time_prediction", &report.render(), &report);
}
