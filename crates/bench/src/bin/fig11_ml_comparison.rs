//! Regenerates the paper's Figure 11 (multi-learner comparison).

use dvfs_core::experiments::fig11;

fn main() {
    let lab = bench::build_lab();
    let report = fig11::run(&lab);
    bench::emit("fig11_ml_comparison", &report.render(), &report);
}
