//! Regenerates the paper's Figure 9 (optimal DVFS selections).

use dvfs_core::experiments::fig9;

fn main() {
    let lab = bench::build_lab();
    let report = fig9::run(&lab);
    bench::emit("fig9_optimal_selection", &report.render(), &report);
}
