//! Ablation: the multi-objective function.
//!
//! Compares EDP, ED²P, energy-only, time-only and a weighted E·T^1.5
//! objective on measured data across the six applications — the paper's
//! Section 7 discussion ("ultimately, the quality of the objective
//! function determines the power-performance trade-off").

use dvfs_core::evaluation::trade_off;
use dvfs_core::objective::Objective;

fn main() {
    let lab = bench::build_lab();
    let objectives = [
        Objective::EnergyOnly,
        Objective::Edp,
        Objective::Weighted { time_weight: 1.5 },
        Objective::Ed2p,
        Objective::TimeOnly,
    ];

    println!("== Ablation: objective function (measured data, GA100) ==");
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "objective", "avg f (MHz)", "avg energy(%)", "avg time(%)"
    );
    for obj in objectives {
        let mut f_sum = 0.0;
        let mut e_sum = 0.0;
        let mut t_sum = 0.0;
        for app in &lab.apps {
            let m = &lab.measured_ga100[&app.name];
            let sel = m.select(obj, None);
            let t = trade_off(m, sel.index);
            f_sum += sel.frequency_mhz;
            e_sum += t.energy_saving_pct;
            t_sum += t.time_change_pct;
        }
        let n = lab.apps.len() as f64;
        println!(
            "{:<10} {:>12.0} {:>14.1} {:>12.1}",
            obj.name(),
            f_sum / n,
            e_sum / n,
            t_sum / n
        );
    }
}
