//! Regenerates the paper's Figure 3 (feature MI ranking).

use dvfs_core::experiments::fig3;

fn main() {
    let lab = bench::build_lab();
    let report = fig3::run(&lab);
    bench::emit("fig3_feature_mi", &report.render(), &report);
}
