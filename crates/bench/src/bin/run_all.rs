//! Regenerates every table and figure of the paper in one pass, reusing a
//! single trained lab. This is the one-shot reproduction entry point:
//!
//! ```text
//! cargo run --release -p bench --bin run_all
//! ```

use dvfs_core::experiments::*;

fn main() {
    let t0 = std::time::Instant::now();
    let lab = bench::build_lab();
    obs::log!(
        Info,
        "[run_all] lab ready in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    // Each figure runs under its own span, so `DVFS_LOG=debug` plus the
    // span table gives a per-figure timing breakdown of the full pass.
    macro_rules! emit {
        ($name:literal, $module:ident) => {{
            let report = {
                obs::span!(concat!("figure/", $name));
                $module::run(&lab)
            };
            bench::emit($name, &report.render(), &report);
            if let Some(stat) = obs::span::stat(concat!("figure/", $name)) {
                obs::log!(
                    Debug,
                    "[run_all] {} took {}",
                    $name,
                    obs::fmt_ns(stat.total_ns as f64)
                );
            }
        }};
    }

    emit!("table1_specs", table1);
    emit!("table2_apps", table2);
    emit!("fig2_methodology", fig2);
    emit!("fig1_motivation", fig1);
    emit!("fig3_feature_mi", fig3);
    emit!("fig4_dvfs_invariance", fig4);
    emit!("fig5_input_invariance", fig5);
    emit!("fig6_training_loss", fig6);
    emit!("fig7_power_prediction", fig7);
    emit!("fig8_time_prediction", fig8);
    emit!("fig9_optimal_selection", fig9);
    emit!("fig10_savings", fig10);
    emit!("fig11_ml_comparison", fig11);
    emit!("table3_accuracy", table3);
    emit!("table4_frequencies", table4);
    emit!("table5_savings", table5);
    emit!("table6_thresholds", table6);
    emit!("training_fit", training_fit);

    obs::log!(Info, "[run_all] total {:.1}s", t0.elapsed().as_secs_f64());
}
