//! Ablation: hidden activation function (the paper's Section 4.3 sweep).
//!
//! The paper tested ReLU, ELU, Leaky ReLU, SELU, sigmoid, tanh, softplus
//! and softsign and chose SELU. This binary reruns that sweep on the power
//! model and reports final validation loss and real-application accuracy.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels};
use nn::Activation;

fn main() {
    let lab = bench::build_lab();
    let ds: &Dataset = &lab.pipeline.dataset;
    let spec = lab.pipeline.train_spec.clone();

    let candidates = [
        Activation::Selu,
        Activation::Relu,
        Activation::LeakyRelu { alpha: 0.01 },
        Activation::Elu { alpha: 1.0 },
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
        Activation::Softsign,
    ];

    println!("== Ablation: activation function (power model) ==");
    println!(
        "{:<12} {:>12} {:>16}",
        "activation", "val loss", "app accuracy(%)"
    );
    for act in candidates {
        let cfg = ModelConfig {
            activation: act,
            ..ModelConfig::paper_power()
        };
        let models = PowerTimeModels::train_with(
            ds,
            cfg,
            ModelConfig {
                activation: act,
                ..ModelConfig::paper_time()
            },
        );
        let val = models
            .power_history
            .val_loss
            .last()
            .copied()
            .unwrap_or(f64::NAN);

        // Mean power accuracy over the six applications under this model.
        let mut acc_sum = 0.0;
        for app in &lab.apps {
            let measured = &lab.measured_ga100[&app.name];
            let (fp, dram) = app.activities(&spec, spec.max_core_mhz);
            let pred: Vec<f64> = measured
                .frequencies
                .iter()
                .map(|&f| models.predict_power_w(&spec, fp, dram, f))
                .collect();
            acc_sum += nn::metrics::accuracy_from_mape(&pred, &measured.power_w);
        }
        println!(
            "{:<12} {:>12.6} {:>16.1}",
            act.name(),
            val,
            acc_sum / lab.apps.len() as f64
        );
    }
}
