//! Future-work extension: joint frequency + voltage optimization.
//!
//! The paper's conclusion proposes evaluating the *voltage* design space
//! with the same methodology. This harness does that on the simulator:
//! for each application it compares
//!
//! 1. the frequency-only ED²P optimum (the paper's method), and
//! 2. the joint (frequency, undervolt) ED²P optimum, where each frequency
//!    may additionally run at any stable voltage offset.
//!
//! Undervolting cuts power quadratically at zero performance cost, so the
//! joint optimum always saves at least as much energy — the question is how
//! much more, and whether it shifts the chosen frequency.

use gpu_model::undervolt::{self, VoltageOffset};
use telemetry::GpuBackend;

fn main() {
    let lab = bench::build_lab();
    let spec = lab.ga100.spec().clone();
    let offsets: Vec<VoltageOffset> = [0.0, 2.0, 4.0, 6.0, 8.0]
        .iter()
        .map(|&p| VoltageOffset::undervolt_pct(p))
        .collect();

    println!("== Future work: joint frequency + voltage ED2P optimization (GA100) ==");
    println!(
        "{:<10} {:>12} {:>10} | {:>9} {:>8} {:>10} | {:>8}",
        "app", "f-only MHz", "E saved", "joint MHz", "UV (%)", "E saved", "extra"
    );
    for app in &lab.apps {
        // Both searches run in the same (noise-free) analytical space so
        // the joint optimum is guaranteed to dominate the f-only one.
        let app_energy = |f: f64, off: VoltageOffset| -> Option<f64> {
            let mut e = 0.0;
            for phase in &app.phases {
                e += phase.repeats * undervolt::energy(&spec, &phase.signature, f, off)?;
            }
            Some(e)
        };

        let freqs = lab.ga100.grid().used();
        let f_max = *freqs.last().expect("non-empty grid");
        let e_max = app_energy(f_max, VoltageOffset::nominal()).expect("nominal is stable");

        let mut f_only: Option<(f64, f64)> = None; // (f, ed2p)
        let mut joint: Option<(f64, f64, f64)> = None; // (f, uv_pct, ed2p)
        for &f in &freqs {
            let t = app.exec_time(&spec, f);
            for off in &offsets {
                let Some(e) = app_energy(f, *off) else {
                    continue;
                };
                let score = e * t * t;
                if off.scale == 1.0 && f_only.is_none_or(|(_, b)| score < b) {
                    f_only = Some((f, score));
                }
                if joint.is_none_or(|(_, _, b)| score < b) {
                    joint = Some((f, (1.0 - off.scale) * 100.0, score));
                }
            }
        }
        let (ff, _) = f_only.expect("nominal column is always stable");
        let (jf, juv, _) = joint.expect("grid is non-empty");
        let f_only_saving = 1.0 - app_energy(ff, VoltageOffset::nominal()).expect("stable") / e_max;
        let joint_saving = 1.0
            - app_energy(jf, VoltageOffset::undervolt_pct(juv)).expect("joint optimum is stable")
                / e_max;
        println!(
            "{:<10} {:>12.0} {:>9.1}% | {:>9.0} {:>8.1} {:>9.1}% | {:>+7.1}%",
            app.name,
            ff,
            100.0 * f_only_saving,
            jf,
            juv,
            100.0 * joint_saving,
            100.0 * (joint_saving - f_only_saving)
        );
    }
    println!(
        "\n(time cost of the joint optimum equals the frequency-only cost at the\n\
         same frequency: voltage offsets do not move execution time)"
    );
}
