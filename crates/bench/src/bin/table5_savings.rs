//! Regenerates the paper's Table 5 (energy/time trade-offs).

use dvfs_core::experiments::table5;

fn main() {
    let lab = bench::build_lab();
    let report = table5::run(&lab);
    bench::emit("table5_savings", &report.render(), &report);
}
