//! Regenerates the paper's Table 6 (performance thresholds).

use dvfs_core::experiments::table6;

fn main() {
    let lab = bench::build_lab();
    let report = table6::run(&lab);
    bench::emit("table6_thresholds", &report.render(), &report);
}
