//! Regenerates the paper's Figure 7 (power prediction panels).

use dvfs_core::experiments::fig7;

fn main() {
    let lab = bench::build_lab();
    let report = fig7::run(&lab);
    bench::emit("fig7_power_prediction", &report.render(), &report);
}
