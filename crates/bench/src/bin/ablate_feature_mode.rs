//! Ablation: which feature values enter the training rows.
//!
//! Compares [`FeatureMode::PerSample`], [`FeatureMode::DefaultClock`] and
//! the default [`FeatureMode::Both`] — the design choice DESIGN.md calls
//! out: per-sample rows give the network feature-space coverage while
//! default-clock rows anchor the online regime.

use dvfs_core::dataset::{Dataset, FeatureMode};
use dvfs_core::models::PowerTimeModels;
use telemetry::GpuBackend;

fn main() {
    let lab = bench::build_lab();
    let spec = lab.ga100.spec().clone();

    println!("== Ablation: training feature mode ==");
    println!(
        "{:<14} {:>8} {:>18} {:>17}",
        "mode", "rows", "power app acc(%)", "time app acc(%)"
    );
    for (name, mode) in [
        ("per-sample", FeatureMode::PerSample),
        ("default-clock", FeatureMode::DefaultClock),
        ("both", FeatureMode::Both),
    ] {
        let ds = Dataset::from_samples_with(&spec, &lab.pipeline.samples, mode)
            .expect("campaign covers the default clock");
        let models = PowerTimeModels::train(&ds);
        let mut p_acc = 0.0;
        let mut t_acc = 0.0;
        for app in &lab.apps {
            let measured = &lab.measured_ga100[&app.name];
            let (fp, dram) = app.activities(&spec, spec.max_core_mhz);
            let pred_p: Vec<f64> = measured
                .frequencies
                .iter()
                .map(|&f| models.predict_power_w(&spec, fp, dram, f))
                .collect();
            let pred_t: Vec<f64> = measured
                .frequencies
                .iter()
                .map(|&f| models.predict_time_ratio(&spec, fp, dram, f))
                .collect();
            let pred_t_norm: Vec<f64> =
                pred_t.iter().map(|&t| t / pred_t.last().unwrap()).collect();
            p_acc += nn::metrics::accuracy_from_mape(&pred_p, &measured.power_w);
            t_acc += nn::metrics::accuracy_from_mape(&pred_t_norm, &measured.normalized_time());
        }
        let n = lab.apps.len() as f64;
        println!(
            "{:<14} {:>8} {:>18.1} {:>17.1}",
            name,
            ds.len(),
            p_acc / n,
            t_acc / n
        );
    }
}
