//! Regenerates the paper's Table 2 (application list).

use dvfs_core::experiments::table2;

fn main() {
    let lab = bench::build_lab();
    let report = table2::run(&lab);
    bench::emit("table2_apps", &report.render(), &report);
}
