//! Ablation: network depth and width around the paper's 3x64 choice.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels};

fn main() {
    let lab = bench::build_lab();
    let ds: &Dataset = &lab.pipeline.dataset;

    println!("== Ablation: hidden layers x width (power model) ==");
    println!(
        "{:<8} {:<8} {:>12} {:>14} {:>10}",
        "layers", "width", "params", "val loss", "wall (s)"
    );
    for layers in [1usize, 2, 3, 4] {
        for width in [16usize, 64, 128] {
            let cfg = ModelConfig {
                hidden_layers: layers,
                width,
                ..ModelConfig::paper_power()
            };
            let net = cfg.build_network();
            let params = net.num_params();
            let models = PowerTimeModels::train_with(
                ds,
                cfg,
                ModelConfig {
                    hidden_layers: layers,
                    width,
                    ..ModelConfig::paper_time()
                },
            );
            println!(
                "{:<8} {:<8} {:>12} {:>14.6} {:>10.2}",
                layers,
                width,
                params,
                models
                    .power_history
                    .val_loss
                    .last()
                    .copied()
                    .unwrap_or(f64::NAN),
                models.power_history.train_seconds
            );
        }
    }
}
