//! Regenerates the paper's Figure 4 (DVFS activity invariance).

use dvfs_core::experiments::fig4;

fn main() {
    let lab = bench::build_lab();
    let report = fig4::run(&lab);
    bench::emit("fig4_dvfs_invariance", &report.render(), &report);
}
