//! Regenerates the paper's Table 3 (model accuracy incl. portability).

use dvfs_core::experiments::table3;

fn main() {
    let lab = bench::build_lab();
    let report = table3::run(&lab);
    bench::emit("table3_accuracy", &report.render(), &report);
}
