//! Regenerates the paper's Figure 5 (input-size activity invariance).

use dvfs_core::experiments::fig5;

fn main() {
    let lab = bench::build_lab();
    let report = fig5::run(&lab);
    bench::emit("fig5_input_invariance", &report.render(), &report);
}
