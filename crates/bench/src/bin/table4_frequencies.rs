//! Regenerates the paper's Table 4 (optimal frequencies).

use dvfs_core::experiments::table4;

fn main() {
    let lab = bench::build_lab();
    let report = table4::run(&lab);
    bench::emit("table4_frequencies", &report.render(), &report);
}
