//! Regenerates the paper's Figure 10 (ED2P energy/time changes).

use dvfs_core::experiments::fig10;

fn main() {
    let lab = bench::build_lab();
    let report = fig10::run(&lab);
    bench::emit("fig10_savings", &report.render(), &report);
}
