//! Regenerates the paper's Figure 1 (motivation curves).

use dvfs_core::experiments::fig1;

fn main() {
    let lab = bench::build_lab();
    let report = fig1::run(&lab);
    bench::emit("fig1_motivation", &report.render(), &report);
}
