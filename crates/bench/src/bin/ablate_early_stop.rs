//! Ablation: fixed epoch budgets vs validation-based early stopping.
//!
//! The paper chose 100 / 25 epochs by watching the Figure 6 loss curves for
//! incipient overfitting. This binary checks that automated early stopping
//! (patience on the validation loss) lands in the same neighbourhood and
//! costs no application accuracy.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::{ModelConfig, PowerTimeModels, BATCH_SIZE};
use nn::{Loss, OptimizerKind, TrainConfig, Trainer};
use telemetry::GpuBackend;
use tensor::Matrix;

fn main() {
    let lab = bench::build_lab();
    let ds: &Dataset = &lab.pipeline.dataset;
    let spec = lab.ga100.spec().clone();

    println!("== Ablation: fixed epochs vs early stopping (power model) ==");
    println!(
        "{:<22} {:>8} {:>14} {:>16}",
        "policy", "epochs", "val loss", "app accuracy(%)"
    );

    // Paper-fixed budget, straight from the lab's pipeline.
    report(
        &lab,
        &spec,
        "paper (100 fixed)",
        &lab.pipeline.models,
        lab.pipeline.models.power_history.train_loss.len(),
    );

    // Early stopping with a generous ceiling.
    for patience in [3usize, 8, 15] {
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: BATCH_SIZE,
            optimizer: OptimizerKind::paper_default(),
            loss: Loss::Mse,
            validation_split: 0.2,
            shuffle_seed: 0xE5,
            early_stop_patience: Some(patience),
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(ModelConfig::paper_power().build_network(), cfg);
        let history = trainer
            .fit(&ds.x, &Matrix::col_vector(&ds.y_power))
            .expect("dataset is valid");
        let epochs = history.train_loss.len();
        // Wrap into a PowerTimeModels shell so the accuracy helper applies
        // (the time model is irrelevant here; reuse the pipeline's).
        let models = PowerTimeModels {
            power: trainer.into_network(),
            time: lab.pipeline.models.time.clone(),
            power_history: history,
            time_history: lab.pipeline.models.time_history.clone(),
        };
        report(
            &lab,
            &spec,
            &format!("early stop (p={patience})"),
            &models,
            epochs,
        );
    }
}

fn report(
    lab: &dvfs_core::experiments::Lab,
    spec: &gpu_model::DeviceSpec,
    label: &str,
    models: &PowerTimeModels,
    epochs: usize,
) {
    let mut acc = 0.0;
    for app in &lab.apps {
        let measured = &lab.measured_ga100[&app.name];
        let (fp, dram) = app.activities(spec, spec.max_core_mhz);
        let pred: Vec<f64> = measured
            .frequencies
            .iter()
            .map(|&f| models.predict_power_w(spec, fp, dram, f))
            .collect();
        acc += nn::metrics::accuracy_from_mape(&pred, &measured.power_w);
    }
    println!(
        "{:<22} {:>8} {:>14.6} {:>16.1}",
        label,
        epochs,
        models
            .power_history
            .val_loss
            .last()
            .copied()
            .unwrap_or(f64::NAN),
        acc / lab.apps.len() as f64
    );
}
