//! Regenerates the paper's Figure 6 (training loss curves).

use dvfs_core::experiments::fig6;

fn main() {
    let lab = bench::build_lab();
    let report = fig6::run(&lab);
    bench::emit("fig6_training_loss", &report.render(), &report);
}
