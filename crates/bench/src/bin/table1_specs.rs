//! Regenerates the paper's Table 1 (GPU specifications).

use dvfs_core::experiments::table1;

fn main() {
    let lab = bench::build_lab();
    let report = table1::run(&lab);
    bench::emit("table1_specs", &report.render(), &report);
}
