//! Launch module: orchestrates a data-collection campaign
//! (paper Section 4.1).
//!
//! A campaign specifies the DVFS configurations, the workloads, the number
//! of repeated runs and the output path. Samples are streamed from the
//! collection loop to the CSV writer over a crossbeam channel, so results
//! land on disk as they are produced — the shape a long-running collection
//! framework needs when a campaign takes hours on real hardware.

use crate::backend::GpuBackend;
use crate::control::ClockController;
use crate::csv;
use crate::profiler::Profiler;
use crossbeam::channel;
use gpu_model::{MetricSample, PhasedWorkload};
use std::path::PathBuf;

/// Configuration of one collection campaign.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// DVFS configurations to sweep (MHz); empty = all used grid states.
    pub frequencies: Vec<f64>,
    /// Repeated runs per (workload, frequency) pair; the paper uses 3.
    pub runs: u32,
    /// Optional CSV output path.
    pub output: Option<PathBuf>,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        Self {
            frequencies: Vec::new(),
            runs: 3,
            output: None,
        }
    }
}

/// A campaign bound to a backend.
pub struct CollectionCampaign<'a, B: GpuBackend + ?Sized> {
    backend: &'a B,
    config: LaunchConfig,
}

impl<'a, B: GpuBackend + ?Sized> CollectionCampaign<'a, B> {
    /// Creates a campaign on `backend`.
    pub fn new(backend: &'a B, config: LaunchConfig) -> Self {
        Self { backend, config }
    }

    /// The frequencies this campaign will sweep.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.config.frequencies.is_empty() {
            self.backend.grid().used()
        } else {
            self.config.frequencies.clone()
        }
    }

    /// Runs the campaign: for every workload × frequency × run, applies the
    /// clock, profiles the execution, and streams the sample out. Returns
    /// all samples; also writes the CSV if configured.
    pub fn collect(&self, workloads: &[PhasedWorkload]) -> std::io::Result<Vec<MetricSample>> {
        let freqs = self.frequencies();
        let controller = ClockController::new(self.backend);
        let profiler = Profiler::new(self.backend);

        let (tx, rx) = channel::unbounded::<MetricSample>();
        let collector = std::thread::spawn(move || {
            let mut all = Vec::new();
            while let Ok(s) = rx.recv() {
                all.push(s);
            }
            all
        });

        for workload in workloads {
            for &f in &freqs {
                let applied = controller.apply_nearest(f);
                debug_assert_eq!(applied, f, "campaign frequencies must be on grid");
                for run in 0..self.config.runs {
                    let profile = profiler.profile_run(workload, run);
                    tx.send(profile.sample).expect("collector thread alive");
                }
            }
        }
        drop(tx);
        let samples = collector.join().expect("collector thread panicked");

        // Leave the device at its default clock, as the paper's framework
        // does after a campaign.
        self.backend.reset_clock();

        if let Some(path) = &self.config.output {
            csv::write_samples(path, &samples)?;
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use gpu_model::SignatureBuilder;

    fn workloads() -> Vec<PhasedWorkload> {
        vec![
            PhasedWorkload::single(SignatureBuilder::new("wa").flops(1e13).bytes(1e11).build()),
            PhasedWorkload::single(SignatureBuilder::new("wb").flops(1e11).bytes(1e12).build()),
        ]
    }

    #[test]
    fn sweeps_all_used_frequencies_by_default() {
        let b = SimulatorBackend::ga100();
        let c = CollectionCampaign::new(
            &b,
            LaunchConfig {
                runs: 1,
                ..Default::default()
            },
        );
        let samples = c.collect(&workloads()).unwrap();
        assert_eq!(samples.len(), 2 * 61);
    }

    #[test]
    fn respects_explicit_frequency_list_and_runs() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1410.0],
            runs: 3,
            output: None,
        };
        let c = CollectionCampaign::new(&b, cfg);
        let samples = c.collect(&workloads()).unwrap();
        assert_eq!(samples.len(), 2 * 2 * 3);
        assert!(samples
            .iter()
            .all(|s| s.sm_app_clock == 510.0 || s.sm_app_clock == 1410.0));
    }

    #[test]
    fn resets_clock_after_campaign() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0],
            runs: 1,
            output: None,
        };
        CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn writes_csv_when_configured() {
        let dir = std::env::temp_dir().join("gpu_dvfs_launch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.csv");
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![1410.0],
            runs: 2,
            output: Some(path.clone()),
        };
        let samples = CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        let back = crate::csv::read_samples(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn samples_are_grouped_by_workload_then_frequency() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1410.0],
            runs: 1,
            output: None,
        };
        let samples = CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        assert_eq!(samples[0].workload, "wa");
        assert_eq!(samples[1].workload, "wa");
        assert_eq!(samples[2].workload, "wb");
    }
}
