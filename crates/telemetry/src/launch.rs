//! Launch module: orchestrates a data-collection campaign
//! (paper Section 4.1).
//!
//! A campaign specifies the DVFS configurations, the workloads, the number
//! of repeated runs, the worker-thread count and the output path. On
//! backends whose measurements are pure functions of the frequency (the
//! simulator), workloads are profiled **concurrently** through
//! [`GpuBackend::profile_at_clock`] and reassembled in the canonical
//! workload → frequency → run order, so the sample stream is bitwise
//! identical for every thread count. Hardware backends that serialize
//! clock changes take the classic loop, streaming samples to the CSV
//! writer over a crossbeam channel as they are produced — the shape a
//! long-running collection framework needs when a campaign takes hours.

use crate::backend::GpuBackend;
use crate::control::ClockController;
use crate::csv;
use crate::profiler::Profiler;
use crossbeam::channel;
use gpu_model::{MetricSample, PhasedWorkload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of one collection campaign.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// DVFS configurations to sweep (MHz); empty = all used grid states.
    pub frequencies: Vec<f64>,
    /// Repeated runs per (workload, frequency) pair; the paper uses 3.
    pub runs: u32,
    /// Optional CSV output path.
    pub output: Option<PathBuf>,
    /// Worker threads for concurrent collection when the backend supports
    /// it; `0` = auto (the `DVFS_THREADS` environment variable, else all
    /// available cores). Ignored on backends that serialize clock changes.
    pub threads: usize,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        Self {
            frequencies: Vec::new(),
            runs: 3,
            output: None,
            threads: 0,
        }
    }
}

/// Resolves `requested` worker threads: an explicit count wins, else the
/// `DVFS_THREADS` environment variable, else all available cores.
fn worker_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("DVFS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A campaign bound to a backend.
pub struct CollectionCampaign<'a, B: GpuBackend + ?Sized> {
    backend: &'a B,
    config: LaunchConfig,
}

impl<'a, B: GpuBackend + ?Sized> CollectionCampaign<'a, B> {
    /// Creates a campaign on `backend`.
    pub fn new(backend: &'a B, config: LaunchConfig) -> Self {
        Self { backend, config }
    }

    /// The frequencies this campaign will sweep.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.config.frequencies.is_empty() {
            self.backend.grid().used()
        } else {
            self.config.frequencies.clone()
        }
    }

    /// Runs the campaign: for every workload × frequency × run, profiles
    /// the execution and collects the sample, in a fixed
    /// workload → frequency → run order. Returns all samples; also writes
    /// the CSV if configured.
    ///
    /// On backends that support concurrent profiling (the simulator),
    /// workloads are fanned out across [`LaunchConfig::threads`] workers
    /// through the side-effect-free [`GpuBackend::profile_at_clock`]
    /// path; results are reassembled in the canonical order, so the
    /// output is **bitwise identical** to the serial sweep for every
    /// thread count. Backends that must serialize real clock changes take
    /// the classic apply-then-profile loop.
    pub fn collect(&self, workloads: &[PhasedWorkload]) -> std::io::Result<Vec<MetricSample>> {
        let freqs = self.frequencies();
        let samples = if self.backend.supports_concurrent_profiling() {
            self.collect_concurrent(workloads, &freqs)
        } else {
            self.collect_serial(workloads, &freqs)
        };

        // Leave the device at its default clock, as the paper's framework
        // does after a campaign.
        self.backend.reset_clock();

        if let Some(path) = &self.config.output {
            csv::write_samples(path, &samples)?;
        }
        Ok(samples)
    }

    /// Classic single-threaded sweep: applies each clock on the device,
    /// profiles every run, and streams the samples to the writer thread
    /// over a channel — the shape a real-hardware campaign needs.
    fn collect_serial(&self, workloads: &[PhasedWorkload], freqs: &[f64]) -> Vec<MetricSample> {
        let controller = ClockController::new(self.backend);
        let profiler = Profiler::new(self.backend);

        let (tx, rx) = channel::unbounded::<MetricSample>();
        let collector = std::thread::spawn(move || {
            let mut all = Vec::new();
            while let Ok(s) = rx.recv() {
                all.push(s);
            }
            all
        });

        for workload in workloads {
            for &f in freqs {
                let applied = controller.apply_nearest(f);
                debug_assert_eq!(applied, f, "campaign frequencies must be on grid");
                for run in 0..self.config.runs {
                    let profile = profiler.profile_run(workload, run);
                    tx.send(profile.sample).expect("collector thread alive");
                }
            }
        }
        drop(tx);
        collector.join().expect("collector thread panicked")
    }

    /// Concurrent sweep over the pure profiling path: workloads are
    /// claimed from a shared counter by a fixed pool of scoped workers,
    /// each producing its workload's full frequency × run block; blocks
    /// are then reassembled by workload index, preserving the canonical
    /// sample order exactly.
    fn collect_concurrent(&self, workloads: &[PhasedWorkload], freqs: &[f64]) -> Vec<MetricSample> {
        let threads = worker_threads(self.config.threads)
            .min(workloads.len())
            .max(1);
        // Each workload's block lands on the flight-recorder timeline as
        // one complete event tagged with the workload name, so a trace
        // shows how blocks interleaved across campaign workers.
        let trace_block = obs::trace::intern("campaign.profile_block");
        let arg_workload = obs::trace::intern("workload");
        let profile_block = |workload: &PhasedWorkload| -> Vec<MetricSample> {
            let t0 = obs::trace::now_ns();
            let mut block = Vec::with_capacity(freqs.len() * self.config.runs as usize);
            for &f in freqs {
                let snapped = self.backend.grid().nearest(f);
                debug_assert_eq!(snapped, f, "campaign frequencies must be on grid");
                for run in 0..self.config.runs {
                    let sample = self
                        .backend
                        .profile_at_clock(workload, snapped, run)
                        .expect("backend advertised concurrent profiling");
                    block.push(sample);
                }
            }
            obs::trace::complete(
                trace_block,
                t0,
                &[(
                    arg_workload,
                    obs::trace::ArgValue::Str(obs::trace::intern(&workload.name)),
                )],
            );
            block
        };

        if threads <= 1 {
            return workloads.iter().flat_map(profile_block).collect();
        }

        let next = AtomicUsize::new(0);
        let parent = obs::span::current_path();
        let mut blocks: Vec<(usize, Vec<MetricSample>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let profile_block = &profile_block;
                    let parent = parent.clone();
                    scope.spawn(move || {
                        // Graft the worker under the dispatching thread's
                        // span tree (and the trace timeline).
                        let _span = parent
                            .as_deref()
                            .map(|pp| obs::span::Span::enter_under(pp, "campaign_worker"));
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= workloads.len() {
                                break;
                            }
                            mine.push((i, profile_block(&workloads[i])));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("collection worker panicked"))
                .collect()
        });
        blocks.sort_by_key(|&(i, _)| i);
        blocks.into_iter().flat_map(|(_, block)| block).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use gpu_model::SignatureBuilder;

    fn workloads() -> Vec<PhasedWorkload> {
        vec![
            PhasedWorkload::single(SignatureBuilder::new("wa").flops(1e13).bytes(1e11).build()),
            PhasedWorkload::single(SignatureBuilder::new("wb").flops(1e11).bytes(1e12).build()),
        ]
    }

    #[test]
    fn sweeps_all_used_frequencies_by_default() {
        let b = SimulatorBackend::ga100();
        let c = CollectionCampaign::new(
            &b,
            LaunchConfig {
                runs: 1,
                ..Default::default()
            },
        );
        let samples = c.collect(&workloads()).unwrap();
        assert_eq!(samples.len(), 2 * 61);
    }

    #[test]
    fn respects_explicit_frequency_list_and_runs() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1410.0],
            runs: 3,
            output: None,
            threads: 0,
        };
        let c = CollectionCampaign::new(&b, cfg);
        let samples = c.collect(&workloads()).unwrap();
        assert_eq!(samples.len(), 2 * 2 * 3);
        assert!(samples
            .iter()
            .all(|s| s.sm_app_clock == 510.0 || s.sm_app_clock == 1410.0));
    }

    #[test]
    fn resets_clock_after_campaign() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0],
            runs: 1,
            output: None,
            threads: 0,
        };
        CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn writes_csv_when_configured() {
        let dir = std::env::temp_dir().join("gpu_dvfs_launch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.csv");
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![1410.0],
            runs: 2,
            output: Some(path.clone()),
            threads: 0,
        };
        let samples = CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        let back = crate::csv::read_samples(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        std::fs::remove_file(&path).ok();
    }

    /// Delegating wrapper that hides the simulator's concurrent-profiling
    /// capability, forcing the serial fallback path.
    struct SerialOnly<'a>(&'a SimulatorBackend);

    impl GpuBackend for SerialOnly<'_> {
        fn spec(&self) -> &gpu_model::DeviceSpec {
            self.0.spec()
        }
        fn grid(&self) -> &gpu_model::DvfsGrid {
            self.0.grid()
        }
        fn set_app_clock(&self, mhz: f64) -> Result<(), crate::backend::BackendError> {
            self.0.set_app_clock(mhz)
        }
        fn app_clock(&self) -> f64 {
            self.0.app_clock()
        }
        fn run_profiled(&self, workload: &PhasedWorkload, run: u32) -> MetricSample {
            self.0.run_profiled(workload, run)
        }
    }

    #[test]
    fn concurrent_collection_matches_serial_bitwise() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1005.0, 1410.0],
            runs: 2,
            output: None,
            threads: 4,
        };
        let concurrent = CollectionCampaign::new(&b, cfg.clone())
            .collect(&workloads())
            .unwrap();
        let serial_backend = SerialOnly(&b);
        let serial = CollectionCampaign::new(&serial_backend, cfg)
            .collect(&workloads())
            .unwrap();
        assert_eq!(concurrent, serial);
    }

    #[test]
    fn collection_is_identical_for_every_thread_count() {
        let b = SimulatorBackend::ga100();
        let base = CollectionCampaign::new(
            &b,
            LaunchConfig {
                runs: 2,
                threads: 1,
                ..Default::default()
            },
        )
        .collect(&workloads())
        .unwrap();
        for threads in [2usize, 4, 8] {
            let got = CollectionCampaign::new(
                &b,
                LaunchConfig {
                    runs: 2,
                    threads,
                    ..Default::default()
                },
            )
            .collect(&workloads())
            .unwrap();
            assert_eq!(base, got, "sample stream diverged at {threads} threads");
        }
    }

    #[test]
    fn concurrent_workers_graft_spans_and_trace_blocks() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1410.0],
            runs: 1,
            output: None,
            threads: 2,
        };
        {
            let _root = obs::span::Span::enter("campaign-graft-test");
            CollectionCampaign::new(&b, cfg)
                .collect(&workloads())
                .unwrap();
        }
        let stat = obs::span::stat("campaign-graft-test/campaign_worker")
            .expect("campaign workers graft under the dispatching span");
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn samples_are_grouped_by_workload_then_frequency() {
        let b = SimulatorBackend::ga100();
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1410.0],
            runs: 1,
            output: None,
            threads: 0,
        };
        let samples = CollectionCampaign::new(&b, cfg)
            .collect(&workloads())
            .unwrap();
        assert_eq!(samples[0].workload, "wa");
        assert_eq!(samples[1].workload, "wa");
        assert_eq!(samples[2].workload, "wb");
    }
}
