//! Field identifiers for the collected metrics, mirroring DCGM's
//! `DCGM_FI_*` identifier scheme.

use serde::{Deserialize, Serialize};

/// The twelve metrics the paper collects (Section 4.1), tagged with
/// DCGM-style numeric field ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldId {
    /// FP64 engine activity (DCGM 1006).
    Fp64Active,
    /// FP32 engine activity (DCGM 1007).
    Fp32Active,
    /// SM application clock (DCGM 100).
    SmAppClock,
    /// DRAM activity (DCGM 1005).
    DramActive,
    /// Graphics engine activity (DCGM 1001).
    GrEngineActive,
    /// Coarse GPU utilization (DCGM 203).
    GpuUtilization,
    /// Board power draw (DCGM 155).
    PowerUsage,
    /// SM active fraction (DCGM 1002).
    SmActive,
    /// SM occupancy (DCGM 1003).
    SmOccupancy,
    /// PCIe transmitted bytes (DCGM 1009).
    PcieTxBytes,
    /// PCIe received bytes (DCGM 1010).
    PcieRxBytes,
    /// Wall-clock execution time of the profiled run (framework-side).
    ExecTime,
}

impl FieldId {
    /// All twelve fields in the paper's listing order.
    pub fn all() -> [FieldId; 12] {
        [
            FieldId::Fp64Active,
            FieldId::Fp32Active,
            FieldId::SmAppClock,
            FieldId::DramActive,
            FieldId::GrEngineActive,
            FieldId::GpuUtilization,
            FieldId::PowerUsage,
            FieldId::SmActive,
            FieldId::SmOccupancy,
            FieldId::PcieTxBytes,
            FieldId::PcieRxBytes,
            FieldId::ExecTime,
        ]
    }

    /// DCGM-style numeric id.
    pub fn dcgm_id(&self) -> u16 {
        match self {
            FieldId::Fp64Active => 1006,
            FieldId::Fp32Active => 1007,
            FieldId::SmAppClock => 100,
            FieldId::DramActive => 1005,
            FieldId::GrEngineActive => 1001,
            FieldId::GpuUtilization => 203,
            FieldId::PowerUsage => 155,
            FieldId::SmActive => 1002,
            FieldId::SmOccupancy => 1003,
            FieldId::PcieTxBytes => 1009,
            FieldId::PcieRxBytes => 1010,
            FieldId::ExecTime => 0,
        }
    }

    /// Snake-case metric name as used in the paper and the CSV header.
    pub fn name(&self) -> &'static str {
        match self {
            FieldId::Fp64Active => "fp64_active",
            FieldId::Fp32Active => "fp32_active",
            FieldId::SmAppClock => "sm_app_clock",
            FieldId::DramActive => "dram_active",
            FieldId::GrEngineActive => "gr_engine_active",
            FieldId::GpuUtilization => "gpu_utilization",
            FieldId::PowerUsage => "power_usage",
            FieldId::SmActive => "sm_active",
            FieldId::SmOccupancy => "sm_occupancy",
            FieldId::PcieTxBytes => "pcie_tx_bytes",
            FieldId::PcieRxBytes => "pcie_rx_bytes",
            FieldId::ExecTime => "exec_time",
        }
    }

    /// Extracts this field's value from a metric sample.
    pub fn extract(&self, s: &gpu_model::MetricSample) -> f64 {
        match self {
            FieldId::Fp64Active => s.fp64_active,
            FieldId::Fp32Active => s.fp32_active,
            FieldId::SmAppClock => s.sm_app_clock,
            FieldId::DramActive => s.dram_active,
            FieldId::GrEngineActive => s.gr_engine_active,
            FieldId::GpuUtilization => s.gpu_utilization,
            FieldId::PowerUsage => s.power_usage,
            FieldId::SmActive => s.sm_active,
            FieldId::SmOccupancy => s.sm_occupancy,
            FieldId::PcieTxBytes => s.pcie_tx_bytes,
            FieldId::PcieRxBytes => s.pcie_rx_bytes,
            FieldId::ExecTime => s.exec_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_fields_listed() {
        assert_eq!(FieldId::all().len(), 12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = FieldId::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn dcgm_ids_match_documented_values() {
        assert_eq!(FieldId::PowerUsage.dcgm_id(), 155);
        assert_eq!(FieldId::GrEngineActive.dcgm_id(), 1001);
        assert_eq!(FieldId::SmAppClock.dcgm_id(), 100);
    }

    #[test]
    fn extract_pulls_matching_field() {
        use gpu_model::{DeviceSpec, NoiseModel, SignatureBuilder};
        let spec = DeviceSpec::ga100();
        let sig = SignatureBuilder::new("t").flops(1e12).bytes(1e10).build();
        let s = gpu_model::sample::measure(&spec, &sig, 1200.0, 0, &NoiseModel::none());
        assert_eq!(FieldId::SmAppClock.extract(&s), 1200.0);
        assert_eq!(FieldId::PowerUsage.extract(&s), s.power_usage);
        assert_eq!(FieldId::ExecTime.extract(&s), s.exec_time);
    }
}
