//! DCGM-like GPU data-collection framework (paper Section 4.1).
//!
//! The paper's framework is "transparent and extensible (no compiling or
//! linking needed)" and consists of three modules, reproduced here one to
//! one:
//!
//! * the **launch module** ([`launch`]) orchestrates a collection campaign:
//!   which DVFS configurations, which workloads, how many runs, where the
//!   CSV results go;
//! * the **control module** ([`control`]) applies core-clock settings
//!   through the backend (DCGM's `dcgmi config --set` equivalent);
//! * the **profile module** ([`profiler`]) runs a workload and samples the
//!   twelve utilization metrics over its execution.
//!
//! The hardware is abstracted behind [`backend::GpuBackend`]; this
//! repository ships the [`backend::SimulatorBackend`] over the `gpu-model`
//! crate, and a real NVML/DCGM backend could be slotted in without touching
//! the pipeline.

pub mod backend;
pub mod control;
pub mod csv;
pub mod fields;
pub mod launch;
pub mod profiler;
pub mod replay;

pub use backend::{GpuBackend, SimulatorBackend};
pub use control::ClockController;
pub use launch::{CollectionCampaign, LaunchConfig};
pub use profiler::Profiler;
pub use replay::ReplayBackend;
