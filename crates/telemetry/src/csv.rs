//! CSV persistence for collected metric samples (the launch module's
//! output format).

use gpu_model::MetricSample;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes samples to `path` as CSV with the standard header.
pub fn write_samples(path: &Path, samples: &[MetricSample]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "{}", MetricSample::csv_header().replace(' ', ""))?;
    for s in samples {
        writeln!(out, "{}", s.to_csv_row())?;
    }
    out.flush()
}

/// Reads samples back from a CSV file written by [`write_samples`].
pub fn read_samples(path: &Path) -> std::io::Result<Vec<MetricSample>> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        out.push(parse_row(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?);
    }
    Ok(out)
}

fn parse_row(line: &str) -> Result<MetricSample, String> {
    let cols: Vec<&str> = line.split(',').collect();
    if cols.len() != 14 {
        return Err(format!("expected 14 columns, got {}", cols.len()));
    }
    let f = |i: usize| -> Result<f64, String> {
        cols[i]
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("column {i} ({:?}): {e}", cols[i]))
    };
    Ok(MetricSample {
        workload: cols[0].to_string(),
        run: cols[1].trim().parse::<u32>().map_err(|e| e.to_string())?,
        fp64_active: f(2)?,
        fp32_active: f(3)?,
        sm_app_clock: f(4)?,
        dram_active: f(5)?,
        gr_engine_active: f(6)?,
        gpu_utilization: f(7)?,
        power_usage: f(8)?,
        sm_active: f(9)?,
        sm_occupancy: f(10)?,
        pcie_tx_bytes: f(11)?,
        pcie_rx_bytes: f(12)?,
        exec_time: f(13)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{DeviceSpec, NoiseModel, SignatureBuilder};

    fn samples() -> Vec<MetricSample> {
        let spec = DeviceSpec::ga100();
        let sig = SignatureBuilder::new("csvtest")
            .flops(1e12)
            .bytes(1e10)
            .build();
        (0..3)
            .map(|r| {
                gpu_model::sample::measure(&spec, &sig, 1410.0, r, &NoiseModel::default_bench())
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_key_fields() {
        let dir = std::env::temp_dir().join("gpu_dvfs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let orig = samples();
        write_samples(&path, &orig).unwrap();
        let back = read_samples(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in orig.iter().zip(&back) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.run, b.run);
            assert_eq!(a.sm_app_clock, b.sm_app_clock);
            // Values are printed with 6 decimals; compare loosely.
            assert!((a.power_usage - b.power_usage).abs() < 1e-2);
            assert!((a.fp64_active - b.fp64_active).abs() < 1e-5);
            assert!((a.exec_time - b.exec_time).abs() < 1e-5);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_has_14_columns() {
        assert_eq!(
            MetricSample::csv_header()
                .replace(' ', "")
                .split(',')
                .count(),
            14
        );
    }

    #[test]
    fn malformed_row_is_reported_with_line_number() {
        let dir = std::env::temp_dir().join("gpu_dvfs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "header\nnot,enough,columns\n").unwrap();
        let err = read_samples(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_reads_empty() {
        let dir = std::env::temp_dir().join("gpu_dvfs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        write_samples(&path, &[]).unwrap();
        assert!(read_samples(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
