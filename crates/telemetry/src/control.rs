//! Control module: applies DVFS configurations (paper Section 4.1).

use crate::backend::{BackendError, GpuBackend};

/// Wraps a backend with validated clock control and an RAII reset guard.
pub struct ClockController<'a, B: GpuBackend + ?Sized> {
    backend: &'a B,
}

impl<'a, B: GpuBackend + ?Sized> ClockController<'a, B> {
    /// Creates a controller over `backend`.
    pub fn new(backend: &'a B) -> Self {
        Self { backend }
    }

    /// Applies a clock, snapping to the nearest supported state first.
    pub fn apply_nearest(&self, mhz: f64) -> f64 {
        let snapped = self.backend.grid().nearest(mhz);
        self.backend
            .set_app_clock(snapped)
            .expect("nearest() returns a supported state");
        snapped
    }

    /// Applies an exact clock; errors if off grid.
    pub fn apply(&self, mhz: f64) -> Result<(), BackendError> {
        self.backend.set_app_clock(mhz)
    }

    /// Returns a guard that restores the default clock when dropped.
    pub fn scoped(&self, mhz: f64) -> Result<ClockGuard<'_, B>, BackendError> {
        self.backend.set_app_clock(mhz)?;
        Ok(ClockGuard {
            backend: self.backend,
        })
    }
}

/// Restores the default (maximum) clock on drop.
pub struct ClockGuard<'a, B: GpuBackend + ?Sized> {
    backend: &'a B,
}

impl<B: GpuBackend + ?Sized> Drop for ClockGuard<'_, B> {
    fn drop(&mut self) {
        self.backend.reset_clock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;

    #[test]
    fn apply_nearest_snaps() {
        let b = SimulatorBackend::ga100();
        let c = ClockController::new(&b);
        let applied = c.apply_nearest(1001.0);
        assert_eq!(applied, 1005.0);
        assert_eq!(b.app_clock(), 1005.0);
    }

    #[test]
    fn apply_exact_errors_off_grid() {
        let b = SimulatorBackend::ga100();
        let c = ClockController::new(&b);
        assert!(c.apply(1002.0).is_err());
        assert!(c.apply(1005.0).is_ok());
    }

    #[test]
    fn scoped_guard_restores_default() {
        let b = SimulatorBackend::ga100();
        let c = ClockController::new(&b);
        {
            let _guard = c.scoped(510.0).unwrap();
            assert_eq!(b.app_clock(), 510.0);
        }
        assert_eq!(b.app_clock(), 1410.0);
    }
}
