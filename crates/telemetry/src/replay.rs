//! Replay backend: a [`GpuBackend`] backed by recorded measurements.
//!
//! This is the "bring your own data" path: a CSV of DCGM samples recorded
//! on real hardware (or written by an earlier campaign of this framework)
//! becomes a device. Profiling replays the recorded sample for the
//! workload at the current clock; the rest of the pipeline — dataset
//! assembly, training, prediction, selection — runs unchanged. Run indices
//! beyond the recorded ones wrap around.

use crate::backend::{BackendError, GpuBackend};
use gpu_model::{DeviceSpec, DvfsGrid, MetricSample, PhasedWorkload};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;

/// A backend that replays recorded metric samples.
pub struct ReplayBackend {
    spec: DeviceSpec,
    grid: DvfsGrid,
    clock: Mutex<f64>,
    /// (workload, clock in integer deci-MHz) -> recorded runs.
    recordings: BTreeMap<(String, u64), Vec<MetricSample>>,
}

/// Errors constructing a replay backend.
#[derive(Debug)]
pub enum ReplayError {
    /// Underlying IO/parse failure.
    Io(std::io::Error),
    /// The recording is empty.
    Empty,
    /// A sample's clock is not a supported state of the device spec.
    OffGridSample {
        /// Offending workload.
        workload: String,
        /// Offending clock.
        mhz: f64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "reading recording: {e}"),
            ReplayError::Empty => write!(f, "recording contains no samples"),
            ReplayError::OffGridSample { workload, mhz } => {
                write!(
                    f,
                    "sample for {workload} at {mhz} MHz is not on the device grid"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

fn key(workload: &str, mhz: f64) -> (String, u64) {
    (workload.to_string(), (mhz * 10.0).round() as u64)
}

impl ReplayBackend {
    /// Builds a replay device for `spec` from in-memory samples.
    pub fn from_samples(spec: DeviceSpec, samples: Vec<MetricSample>) -> Result<Self, ReplayError> {
        if samples.is_empty() {
            return Err(ReplayError::Empty);
        }
        let grid = DvfsGrid::for_spec(&spec);
        let mut recordings: BTreeMap<(String, u64), Vec<MetricSample>> = BTreeMap::new();
        for s in samples {
            if !grid.is_supported(s.sm_app_clock) {
                return Err(ReplayError::OffGridSample {
                    workload: s.workload.clone(),
                    mhz: s.sm_app_clock,
                });
            }
            recordings
                .entry(key(&s.workload, s.sm_app_clock))
                .or_default()
                .push(s);
        }
        let clock = Mutex::new(spec.max_core_mhz);
        Ok(Self {
            spec,
            grid,
            clock,
            recordings,
        })
    }

    /// Builds a replay device from a campaign CSV (see [`crate::csv`]).
    pub fn from_csv(spec: DeviceSpec, path: &Path) -> Result<Self, ReplayError> {
        let samples = crate::csv::read_samples(path).map_err(ReplayError::Io)?;
        Self::from_samples(spec, samples)
    }

    /// Workloads present in the recording.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> = self.recordings.keys().map(|(w, _)| w.clone()).collect();
        names.dedup();
        names
    }

    /// Whether the recording covers `workload` at `mhz`.
    pub fn covers(&self, workload: &str, mhz: f64) -> bool {
        self.recordings.contains_key(&key(workload, mhz))
    }
}

impl GpuBackend for ReplayBackend {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn grid(&self) -> &DvfsGrid {
        &self.grid
    }

    fn set_app_clock(&self, mhz: f64) -> Result<(), BackendError> {
        if !self.grid.is_supported(mhz) {
            return Err(BackendError::UnsupportedClock {
                requested: mhz,
                nearest: self.grid.nearest(mhz),
            });
        }
        *self.clock.lock() = mhz;
        Ok(())
    }

    fn app_clock(&self) -> f64 {
        *self.clock.lock()
    }

    /// Replays the recorded sample for `(workload.name, current clock)`.
    ///
    /// # Panics
    /// Panics when the recording does not cover the requested operating
    /// point — replay is for driving the pipeline over *complete* recorded
    /// campaigns; use [`ReplayBackend::covers`] to pre-check sparse data.
    fn run_profiled(&self, workload: &PhasedWorkload, run: u32) -> MetricSample {
        let mhz = self.app_clock();
        let runs = self
            .recordings
            .get(&key(&workload.name, mhz))
            .unwrap_or_else(|| {
                panic!("recording has no sample for {} at {mhz} MHz", workload.name)
            });
        runs[run as usize % runs.len()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use crate::{CollectionCampaign, LaunchConfig};
    use gpu_model::SignatureBuilder;

    fn record_campaign() -> (DeviceSpec, Vec<MetricSample>, Vec<PhasedWorkload>) {
        let sim = SimulatorBackend::ga100();
        let workloads = vec![
            PhasedWorkload::single(
                SignatureBuilder::new("rec-a")
                    .flops(1e13)
                    .bytes(1e11)
                    .build(),
            ),
            PhasedWorkload::single(
                SignatureBuilder::new("rec-b")
                    .flops(1e11)
                    .bytes(1e13)
                    .build(),
            ),
        ];
        let cfg = LaunchConfig {
            frequencies: vec![510.0, 1005.0, 1410.0],
            runs: 2,
            output: None,
            threads: 0,
        };
        let samples = CollectionCampaign::new(&sim, cfg)
            .collect(&workloads)
            .unwrap();
        (sim.spec().clone(), samples, workloads)
    }

    #[test]
    fn replays_recorded_samples_exactly() {
        let (spec, samples, workloads) = record_campaign();
        let original = samples[0].clone();
        let replay = ReplayBackend::from_samples(spec, samples).unwrap();
        replay.set_app_clock(original.sm_app_clock).unwrap();
        let got = replay.run_profiled(&workloads[0], original.run);
        assert_eq!(got, original);
    }

    #[test]
    fn run_index_wraps_over_recorded_runs() {
        let (spec, samples, workloads) = record_campaign();
        let replay = ReplayBackend::from_samples(spec, samples).unwrap();
        replay.set_app_clock(1005.0).unwrap();
        let r0 = replay.run_profiled(&workloads[0], 0);
        let r2 = replay.run_profiled(&workloads[0], 2); // wraps to run 0
        assert_eq!(r0, r2);
    }

    #[test]
    fn covers_reports_recorded_points() {
        let (spec, samples, _) = record_campaign();
        let replay = ReplayBackend::from_samples(spec, samples).unwrap();
        assert!(replay.covers("rec-a", 510.0));
        assert!(!replay.covers("rec-a", 750.0));
        assert!(!replay.covers("unknown", 510.0));
    }

    #[test]
    fn csv_round_trip_into_replay() {
        let (spec, samples, workloads) = record_campaign();
        let dir = std::env::temp_dir().join("gpu_dvfs_replay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recording.csv");
        crate::csv::write_samples(&path, &samples).unwrap();
        let replay = ReplayBackend::from_csv(spec, &path).unwrap();
        replay.set_app_clock(1410.0).unwrap();
        let s = replay.run_profiled(&workloads[1], 0);
        assert_eq!(s.workload, "rec-b");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_recording_rejected() {
        let spec = DeviceSpec::ga100();
        assert!(matches!(
            ReplayBackend::from_samples(spec, vec![]),
            Err(ReplayError::Empty)
        ));
    }

    #[test]
    fn off_grid_sample_rejected() {
        let (spec, mut samples, _) = record_campaign();
        samples[0].sm_app_clock = 512.0; // not a GA100 state
        assert!(matches!(
            ReplayBackend::from_samples(spec, samples),
            Err(ReplayError::OffGridSample { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "no sample for")]
    fn uncovered_point_panics() {
        let (spec, samples, workloads) = record_campaign();
        let replay = ReplayBackend::from_samples(spec, samples).unwrap();
        replay.set_app_clock(750.0).unwrap();
        let _ = replay.run_profiled(&workloads[0], 0);
    }
}
