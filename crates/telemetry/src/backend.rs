//! The hardware abstraction: clock control + profiled execution.

use gpu_model::{DeviceSpec, DvfsGrid, MetricSample, NoiseModel, PhasedWorkload};
use parking_lot::Mutex;

/// Errors from backend operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// Requested clock is not a supported DVFS state.
    UnsupportedClock {
        /// The requested frequency in MHz.
        requested: f64,
        /// The closest supported state.
        nearest: f64,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnsupportedClock { requested, nearest } => write!(
                f,
                "clock {requested} MHz is not a supported DVFS state (nearest: {nearest} MHz)"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// A GPU that can have its application clock set and run profiled
/// workloads. Implemented by [`SimulatorBackend`]; a DCGM/NVML-backed
/// implementation would satisfy the same contract on real hardware.
pub trait GpuBackend: Send + Sync {
    /// Static device description.
    fn spec(&self) -> &DeviceSpec;

    /// The device's DVFS grid.
    fn grid(&self) -> &DvfsGrid;

    /// Sets the SM application clock. Fails for off-grid frequencies.
    fn set_app_clock(&self, mhz: f64) -> Result<(), BackendError>;

    /// Currently applied SM application clock.
    fn app_clock(&self) -> f64;

    /// Resets the clock to the device default (max frequency).
    fn reset_clock(&self) {
        self.set_app_clock(self.spec().max_core_mhz)
            .expect("default clock is always supported");
    }

    /// Executes `workload` once at the current clock, returning the
    /// aggregate metric sample for run index `run`.
    fn run_profiled(&self, workload: &PhasedWorkload, run: u32) -> MetricSample;

    /// Whether this backend can profile several workloads concurrently
    /// via [`GpuBackend::profile_at_clock`]. Real hardware serializes on
    /// the physical device clock, so the default is `false`; the
    /// simulator's measurements are pure functions of the frequency and
    /// can run in parallel.
    fn supports_concurrent_profiling(&self) -> bool {
        false
    }

    /// Profiles `workload` at frequency `mhz` **without touching the
    /// device's applied clock state** — the side-effect-free path that
    /// concurrent campaigns fan out across threads. `mhz` must be an
    /// exact grid state. Backends that must serialize real clock changes
    /// keep the default (`None`), which makes campaigns fall back to the
    /// serial apply-then-profile loop.
    fn profile_at_clock(
        &self,
        workload: &PhasedWorkload,
        mhz: f64,
        run: u32,
    ) -> Option<MetricSample> {
        let _ = (workload, mhz, run);
        None
    }
}

/// Simulated GPU device over the `gpu-model` crate.
#[derive(Debug)]
pub struct SimulatorBackend {
    spec: DeviceSpec,
    grid: DvfsGrid,
    noise: NoiseModel,
    clock: Mutex<f64>,
}

impl SimulatorBackend {
    /// Creates a simulated device with the given noise model.
    pub fn new(spec: DeviceSpec, noise: NoiseModel) -> Self {
        let grid = DvfsGrid::for_spec(&spec);
        let clock = Mutex::new(spec.max_core_mhz);
        Self {
            spec,
            grid,
            noise,
            clock,
        }
    }

    /// A GA100 device with benchmark-calibrated noise.
    pub fn ga100() -> Self {
        Self::new(DeviceSpec::ga100(), NoiseModel::default_bench())
    }

    /// A GV100 device with benchmark-calibrated noise.
    pub fn gv100() -> Self {
        Self::new(DeviceSpec::gv100(), NoiseModel::default_bench())
    }
}

impl GpuBackend for SimulatorBackend {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn grid(&self) -> &DvfsGrid {
        &self.grid
    }

    fn set_app_clock(&self, mhz: f64) -> Result<(), BackendError> {
        if !self.grid.is_supported(mhz) {
            return Err(BackendError::UnsupportedClock {
                requested: mhz,
                nearest: self.grid.nearest(mhz),
            });
        }
        *self.clock.lock() = mhz;
        Ok(())
    }

    fn app_clock(&self) -> f64 {
        *self.clock.lock()
    }

    fn run_profiled(&self, workload: &PhasedWorkload, run: u32) -> MetricSample {
        let mhz = self.app_clock();
        workload.measure(&self.spec, mhz, run, &self.noise)
    }

    fn supports_concurrent_profiling(&self) -> bool {
        true
    }

    fn profile_at_clock(
        &self,
        workload: &PhasedWorkload,
        mhz: f64,
        run: u32,
    ) -> Option<MetricSample> {
        debug_assert!(self.grid.is_supported(mhz), "off-grid profile at {mhz}");
        Some(workload.measure(&self.spec, mhz, run, &self.noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::SignatureBuilder;

    fn workload() -> PhasedWorkload {
        PhasedWorkload::single(
            SignatureBuilder::new("w")
                .flops(1.0e13)
                .bytes(1.0e11)
                .build(),
        )
    }

    #[test]
    fn default_clock_is_max() {
        let b = SimulatorBackend::ga100();
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn set_clock_round_trips() {
        let b = SimulatorBackend::ga100();
        b.set_app_clock(1005.0).unwrap();
        assert_eq!(b.app_clock(), 1005.0);
        b.reset_clock();
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn off_grid_clock_rejected_with_nearest_hint() {
        let b = SimulatorBackend::ga100();
        let err = b.set_app_clock(1000.0).unwrap_err();
        assert_eq!(
            err,
            BackendError::UnsupportedClock {
                requested: 1000.0,
                nearest: 1005.0
            }
        );
        // Clock unchanged after the failed set.
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn profiled_run_reflects_current_clock() {
        let b = SimulatorBackend::ga100();
        let w = workload();
        b.set_app_clock(705.0).unwrap();
        let low = b.run_profiled(&w, 0);
        b.set_app_clock(1410.0).unwrap();
        let high = b.run_profiled(&w, 0);
        assert_eq!(low.sm_app_clock, 705.0);
        assert!(low.exec_time > high.exec_time);
        assert!(low.power_usage < high.power_usage);
    }

    #[test]
    fn profile_at_clock_matches_stateful_path_bitwise() {
        let b = SimulatorBackend::ga100();
        let w = workload();
        assert!(b.supports_concurrent_profiling());
        for run in 0..3 {
            b.set_app_clock(705.0).unwrap();
            let stateful = b.run_profiled(&w, run);
            let pure = b.profile_at_clock(&w, 705.0, run).unwrap();
            assert_eq!(stateful, pure);
        }
        // The pure path never disturbs the applied clock.
        b.set_app_clock(1410.0).unwrap();
        let _ = b.profile_at_clock(&w, 510.0, 0).unwrap();
        assert_eq!(b.app_clock(), 1410.0);
    }

    #[test]
    fn gv100_backend_uses_volta_grid() {
        let b = SimulatorBackend::gv100();
        assert_eq!(b.grid().num_used(), 117);
        assert_eq!(b.app_clock(), 1380.0);
    }
}
