//! Profile module: runs workloads and collects metrics (paper Section 4.1).

use crate::backend::GpuBackend;
use gpu_model::sample::SAMPLING_INTERVAL_S;
use gpu_model::{MetricSample, PhasedWorkload};
use serde::{Deserialize, Serialize};

/// One profiled execution: the aggregate sample plus collection metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Aggregate metrics over the run.
    pub sample: MetricSample,
    /// Number of 20 ms sampling intervals the run spanned.
    pub intervals: u64,
    /// Sampling interval used, seconds.
    pub interval_s: f64,
}

/// Runs workloads on a backend and gathers their metric samples.
pub struct Profiler<'a, B: GpuBackend + ?Sized> {
    backend: &'a B,
    interval_s: f64,
}

impl<'a, B: GpuBackend + ?Sized> Profiler<'a, B> {
    /// Profiler with the paper's 20 ms sampling interval.
    pub fn new(backend: &'a B) -> Self {
        Self {
            backend,
            interval_s: SAMPLING_INTERVAL_S,
        }
    }

    /// Overrides the sampling interval (seconds).
    pub fn with_interval(mut self, interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        self.interval_s = interval_s;
        self
    }

    /// Profiles a single run at the backend's current clock.
    pub fn profile_run(&self, workload: &PhasedWorkload, run: u32) -> RunProfile {
        let t0 = obs::trace::now_ns();
        let sample = self.backend.run_profiled(workload, run);
        let intervals = (sample.exec_time / self.interval_s).ceil().max(1.0) as u64;
        if obs::trace::enabled() {
            obs::trace::complete(
                obs::trace::intern("profiler.run"),
                t0,
                &[
                    (
                        obs::trace::intern("workload"),
                        obs::trace::ArgValue::Str(obs::trace::intern(&sample.workload)),
                    ),
                    (
                        obs::trace::intern("mhz"),
                        obs::trace::ArgValue::F64(sample.sm_app_clock),
                    ),
                ],
            );
        }
        RunProfile {
            sample,
            intervals,
            interval_s: self.interval_s,
        }
    }

    /// Profiles `runs` repeated executions (the paper uses three).
    pub fn profile_runs(&self, workload: &PhasedWorkload, runs: u32) -> Vec<RunProfile> {
        (0..runs).map(|r| self.profile_run(workload, r)).collect()
    }

    /// Collects the per-interval time series of one run: one
    /// [`MetricSample`] per 20 ms sampling window, as DCGM would stream
    /// them. This is the paper's mechanism for getting a "statistically
    /// significant dataset" out of short workloads — every interval is an
    /// independent observation of the same operating point.
    ///
    /// Interval samples share the run's clock and workload but carry
    /// independent measurement noise (their run index encodes the interval),
    /// and their `exec_time` field holds the *interval* length, except the
    /// final partial interval.
    pub fn profile_series(&self, workload: &PhasedWorkload, run: u32) -> Vec<MetricSample> {
        let base = self.backend.run_profiled(workload, run);
        let n = (base.exec_time / self.interval_s).ceil().max(1.0) as u64;
        (0..n)
            .map(|i| {
                // Derive an interval-unique measurement via the run-index
                // channel: run * 65536 + interval keeps streams disjoint.
                let mut s = self
                    .backend
                    .run_profiled(workload, run.wrapping_mul(65_536).wrapping_add(i as u32));
                s.run = run;
                s.exec_time = if i + 1 == n {
                    base.exec_time - self.interval_s * (n - 1) as f64
                } else {
                    self.interval_s
                };
                s
            })
            .collect()
    }
}

/// Averages the metric samples of repeated runs into one sample
/// (run index taken from the first).
pub fn average_runs(profiles: &[RunProfile]) -> MetricSample {
    assert!(!profiles.is_empty(), "cannot average zero runs");
    let n = profiles.len() as f64;
    let mut acc = profiles[0].sample.clone();
    macro_rules! avg {
        ($($field:ident),*) => {
            $(acc.$field = profiles.iter().map(|p| p.sample.$field).sum::<f64>() / n;)*
        };
    }
    avg!(
        fp64_active,
        fp32_active,
        dram_active,
        gr_engine_active,
        gpu_utilization,
        power_usage,
        sm_active,
        sm_occupancy,
        pcie_tx_bytes,
        pcie_rx_bytes,
        exec_time
    );
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use gpu_model::SignatureBuilder;

    fn workload() -> PhasedWorkload {
        PhasedWorkload::single(
            SignatureBuilder::new("w")
                .flops(5.0e13)
                .bytes(5.0e11)
                .build(),
        )
    }

    #[test]
    fn profile_counts_sampling_intervals() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let prof = p.profile_run(&workload(), 0);
        let expect = (prof.sample.exec_time / 0.02).ceil() as u64;
        assert_eq!(prof.intervals, expect);
        assert!(prof.intervals > 10, "multi-second run spans many intervals");
    }

    #[test]
    fn three_runs_differ_by_noise_only() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let runs = p.profile_runs(&workload(), 3);
        assert_eq!(runs.len(), 3);
        let times: Vec<f64> = runs.iter().map(|r| r.sample.exec_time).collect();
        assert!(times[0] != times[1] || times[1] != times[2]);
        let spread = (times.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - times.iter().cloned().fold(f64::INFINITY, f64::min))
            / times[0];
        assert!(spread < 0.15, "run-to-run spread {spread}");
    }

    #[test]
    fn average_runs_is_midway() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let runs = p.profile_runs(&workload(), 3);
        let avg = average_runs(&runs);
        let lo = runs
            .iter()
            .map(|r| r.sample.power_usage)
            .fold(f64::INFINITY, f64::min);
        let hi = runs
            .iter()
            .map(|r| r.sample.power_usage)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(avg.power_usage >= lo && avg.power_usage <= hi);
    }

    #[test]
    fn custom_interval_changes_counts() {
        let b = SimulatorBackend::ga100();
        let fine = Profiler::new(&b).with_interval(0.001);
        let coarse = Profiler::new(&b).with_interval(1.0);
        let w = workload();
        assert!(fine.profile_run(&w, 0).intervals > coarse.profile_run(&w, 0).intervals);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn average_of_nothing_panics() {
        let _ = average_runs(&[]);
    }

    #[test]
    fn series_intervals_sum_to_run_time() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let w = workload();
        let series = p.profile_series(&w, 0);
        let total: f64 = series.iter().map(|s| s.exec_time).sum();
        let run = p.profile_run(&w, 0);
        assert!((total - run.sample.exec_time).abs() < 1e-9);
        assert_eq!(series.len() as u64, run.intervals);
    }

    #[test]
    fn series_samples_carry_independent_noise() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let series = p.profile_series(&workload(), 0);
        assert!(series.len() > 10);
        // Power readings jitter between intervals but stay near the mean.
        let mean: f64 = series.iter().map(|s| s.power_usage).sum::<f64>() / series.len() as f64;
        let distinct = series
            .windows(2)
            .filter(|w| w[0].power_usage != w[1].power_usage)
            .count();
        assert!(distinct > series.len() / 2);
        for s in &series {
            assert!((s.power_usage - mean).abs() / mean < 0.10);
        }
    }

    #[test]
    fn series_is_deterministic_per_run() {
        let b = SimulatorBackend::ga100();
        let p = Profiler::new(&b);
        let a = p.profile_series(&workload(), 1);
        let c = p.profile_series(&workload(), 1);
        assert_eq!(a, c);
    }
}
