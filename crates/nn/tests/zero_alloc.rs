//! Proof that the workspace training path is allocation-free in steady
//! state, measured with a counting global allocator.
//!
//! This file intentionally holds a single `#[test]`: the counting allocator
//! is process-global, so any concurrently running test would pollute the
//! counters.

use nn::activation::Activation;
use nn::network::NetworkBuilder;
use nn::optimizer::OptimizerKind;
use nn::train::{TrainConfig, Trainer};
use nn::workspace::Workspace;
use nn::{reference, Loss};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tensor::{ops, Matrix};

struct CountingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) && new_size > layout.size() {
            BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting on, returning (bytes, allocations).
fn counted(f: impl FnOnce()) -> (u64, u64) {
    BYTES.store(0, Ordering::Relaxed);
    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    (
        BYTES.load(Ordering::Relaxed),
        ALLOCS.load(Ordering::Relaxed),
    )
}

fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let x = tensor::init::uniform(n, 3, 0.0, 1.0, &mut rng);
    let y_vals: Vec<f64> = x
        .rows_iter()
        .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
        .collect();
    (x, Matrix::col_vector(&y_vals))
}

#[test]
fn training_steps_are_allocation_free_after_warmup() {
    let (x, y) = dataset(512, 1);
    // The paper topology: 3 -> 64 -> 64 -> 64 -> 1, SELU, RMSprop.
    let mut net = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(7)
        .build();
    let mut opt = OptimizerKind::paper_default().build();
    let batch = 64usize;
    let mut ws = Workspace::for_network(&net, batch);
    let mut xb = Matrix::zeros(batch, x.cols());
    let mut yb = Matrix::zeros(batch, y.cols());
    let indices: Vec<usize> = (0..x.rows()).collect();

    // Warm-up: size every buffer and let the optimizer register its slots.
    for chunk in indices.chunks(batch).take(3) {
        ops::gather_rows_into(&x, chunk, &mut xb);
        ops::gather_rows_into(&y, chunk, &mut yb);
        net.forward_ws(&xb, &mut ws);
        net.backward_ws(&yb, Loss::Mse, &mut opt, &mut ws);
    }

    // Steady state: N full gather + forward + backward + update steps must
    // not touch the heap at all.
    let (bytes, allocs) = counted(|| {
        for _ in 0..5 {
            for chunk in indices.chunks(batch) {
                ops::gather_rows_into(&x, chunk, &mut xb);
                ops::gather_rows_into(&y, chunk, &mut yb);
                net.forward_ws(&xb, &mut ws);
                net.backward_ws(&yb, Loss::Mse, &mut opt, &mut ws);
            }
        }
    });
    assert_eq!(
        (bytes, allocs),
        (0, 0),
        "training steps allocated {bytes} bytes across {allocs} allocations"
    );

    // Inference through a caller-provided workspace is allocation-free too
    // (one warm call first: 512 rows exceeds the 64-row training capacity,
    // so the buffers grow exactly once).
    let _ = net.predict_into(&x, &mut ws);
    let (bytes, allocs) = counted(|| {
        for _ in 0..10 {
            let _ = net.predict_into(&x, &mut ws);
        }
    });
    assert_eq!(
        (bytes, allocs),
        (0, 0),
        "predict_into allocated {bytes} bytes across {allocs} allocations"
    );

    // Whole-fit comparison: the workspace Trainer must allocate far less
    // per epoch than the allocating reference path. (Trainer::fit still
    // allocates at startup — splits, history — plus obs span bookkeeping,
    // so this is a per-epoch ratio bound rather than a strict zero.)
    let cfg = TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    };
    let warm = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(8)
        .build();
    // Warm both paths once so one-time registrations don't skew the count.
    let mut warm_ws = Trainer::new(warm.clone(), cfg);
    warm_ws.fit(&x, &y).unwrap();
    let mut warm_ref = warm.clone();
    reference::fit(&mut warm_ref, &cfg, &x, &y).unwrap();

    let mut trainer = Trainer::new(warm.clone(), cfg);
    let (ws_bytes, _) = counted(|| {
        trainer.fit(&x, &y).unwrap();
    });
    let mut ref_net = warm.clone();
    let (ref_bytes, _) = counted(|| {
        reference::fit(&mut ref_net, &cfg, &x, &y).unwrap();
    });

    let ws_per_epoch = ws_bytes as f64 / cfg.epochs as f64;
    let ref_per_epoch = ref_bytes as f64 / cfg.epochs as f64;
    obs::global()
        .gauge("train.alloc_bytes_per_epoch")
        .set(ws_per_epoch);
    assert!(
        ws_per_epoch * 5.0 < ref_per_epoch,
        "workspace path should allocate >=5x less per epoch: \
         workspace {ws_per_epoch:.0} B/epoch vs reference {ref_per_epoch:.0} B/epoch"
    );
}
