//! Proof that the *sharded* training step — the per-worker unit of the
//! deterministic data-parallel engine — is allocation-free in steady
//! state, measured with a counting global allocator.
//!
//! The loop below is exactly what `Trainer::fit` executes per mini-batch
//! (see `nn::engine`): gather each shard's rows, forward + raw backward
//! sums into that shard's private `Workspace`, fold the partials with the
//! fixed pairwise tree, scale once at the root and apply the optimizer
//! update. Every worker owns its shard workspaces, so proving the
//! single-threaded shard loop allocation-free proves each parallel worker
//! allocation-free too (the engine adds only lock acquisitions and
//! channel rendezvous on pre-built structures).
//!
//! This file intentionally holds a single `#[test]`: the counting
//! allocator is process-global, so any concurrently running test would
//! pollute the counters.

use nn::activation::Activation;
use nn::engine::shard_bounds;
use nn::network::NetworkBuilder;
use nn::optimizer::OptimizerKind;
use nn::workspace::Workspace;
use nn::Loss;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tensor::{ops, reduce, Matrix};

struct CountingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) && new_size > layout.size() {
            BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting on, returning (bytes, allocations).
fn counted(f: impl FnOnce()) -> (u64, u64) {
    BYTES.store(0, Ordering::Relaxed);
    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    (
        BYTES.load(Ordering::Relaxed),
        ALLOCS.load(Ordering::Relaxed),
    )
}

fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let x = tensor::init::uniform(n, 3, 0.0, 1.0, &mut rng);
    let y_vals: Vec<f64> = x
        .rows_iter()
        .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
        .collect();
    (x, Matrix::col_vector(&y_vals))
}

/// One shard's private buffers — what each parallel worker owns per
/// shard slot inside the engine's workspace pool.
struct Shard {
    ws: Workspace,
    xb: Matrix,
    yb: Matrix,
    total: f64,
}

#[test]
fn sharded_training_steps_are_allocation_free_after_warmup() {
    let (x, y) = dataset(512, 1);
    // The paper topology: 3 -> 64 -> 64 -> 64 -> 1, SELU, RMSprop.
    let mut net = NetworkBuilder::new(3)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .hidden(64, Activation::Selu)
        .output(1, Activation::Linear)
        .seed(7)
        .build();
    let mut opt = OptimizerKind::paper_default().build();
    let batch = 64usize;
    let shards = 8usize;
    let max_shard_rows = shard_bounds(batch, shards, 0).1.max(1);
    let mut slots: Vec<Shard> = (0..shards)
        .map(|_| Shard {
            ws: Workspace::for_network(&net, max_shard_rows),
            xb: Matrix::zeros(max_shard_rows, x.cols()),
            yb: Matrix::zeros(max_shard_rows, y.cols()),
            total: 0.0,
        })
        .collect();
    let indices: Vec<usize> = (0..x.rows()).collect();

    // The engine's per-batch step, via the same public primitives the
    // workers call: shard gather -> forward -> raw sums -> tree fold ->
    // root scale + update.
    let step = |net: &mut nn::Network,
                opt: &mut nn::Optimizer,
                slots: &mut Vec<Shard>,
                chunk: &[usize]| {
        let rows = chunk.len();
        let n_eff = rows.min(shards).max(1);
        for (s, slot) in slots.iter_mut().enumerate().take(n_eff) {
            let (s_start, s_len) = shard_bounds(rows, shards, s);
            if s_len == 0 {
                continue;
            }
            let idx = &chunk[s_start..s_start + s_len];
            ops::gather_rows_into(&x, idx, &mut slot.xb);
            ops::gather_rows_into(&y, idx, &mut slot.yb);
            net.forward_ws(&slot.xb, &mut slot.ws);
            slot.total = net.shard_grads_ws(&slot.yb, Loss::Mse, &mut slot.ws);
        }
        reduce::tree_combine(n_eff, |dst, src| {
            let (left, right) = slots.split_at_mut(src);
            left[dst].ws.combine_grads_from(&right[0].ws);
            left[dst].total += right[0].total;
        });
        net.apply_combined_grads(opt, &mut slots[0].ws, rows);
    };

    // Warm-up: size every buffer and let the optimizer register its slots.
    for chunk in indices.chunks(batch).take(3) {
        step(&mut net, &mut opt, &mut slots, chunk);
    }

    // Steady state: full epochs of sharded steps must not touch the heap.
    let (bytes, allocs) = counted(|| {
        for _ in 0..5 {
            for chunk in indices.chunks(batch) {
                step(&mut net, &mut opt, &mut slots, chunk);
            }
        }
    });
    assert_eq!(
        (bytes, allocs),
        (0, 0),
        "sharded training steps allocated {bytes} bytes across {allocs} allocations"
    );
}
