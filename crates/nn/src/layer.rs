//! Fully-connected (dense) layer with cached forward state for backprop.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};
use tensor::{matmul, ops, Matrix};

/// A dense layer computing `a = act(x @ W + b)`.
///
/// `W` is `(in_dim x out_dim)`, `b` is `(1 x out_dim)`. The layer caches the
/// input and pre-activation of the most recent [`Dense::forward`] call so
/// [`Dense::backward`] can compute gradients without recomputation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    #[serde(skip)]
    cache: Option<ForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    input: Matrix,
    pre_activation: Matrix,
    output: Matrix,
}

/// Gradients produced by one backward pass through a layer.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Gradient of the loss w.r.t. the weight matrix (same shape as `W`).
    pub weights: Matrix,
    /// Gradient of the loss w.r.t. the bias (same shape as `b`).
    pub bias: Matrix,
}

impl Dense {
    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x weights.cols()`.
    pub fn new(weights: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weights.cols(), "bias width must match weights");
        Self {
            weights,
            bias,
            activation,
            cache: None,
        }
    }

    /// Creates a layer with LeCun-normal weights and zero bias — the
    /// initialization required for SELU self-normalization and a sound
    /// default for the other activations at these widths.
    pub fn init(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl rand::Rng,
    ) -> Self {
        let weights = tensor::init::lecun_normal(in_dim, out_dim, rng);
        let bias = Matrix::zeros(1, out_dim);
        Self::new(weights, bias, activation)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable access to the weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable access to the bias.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Mutable access to the weights (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the bias (used by optimizers).
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias
    }

    /// Forward pass for a `(batch x in_dim)` input, caching state for
    /// [`Dense::backward`]. Returns the `(batch x out_dim)` activations.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        self.forward_cached(input)
    }

    /// Forward pass without mutating the cache — for inference.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        self.apply_into(input, &mut out);
        out
    }

    /// Workspace forward pass: writes the pre-activation into `pre` and the
    /// activation into `out`, resizing both (allocation-free within
    /// capacity). Bias add and activation are fused into a single pass over
    /// the matmul result.
    ///
    /// # Panics
    /// Panics if `input.cols() != in_dim`.
    pub(crate) fn forward_into(&self, input: &Matrix, pre: &mut Matrix, out: &mut Matrix) {
        pre.resize_to(input.rows(), self.out_dim());
        matmul::matmul_into(input, &self.weights, pre).expect("layer/input width mismatch");
        out.resize_to(input.rows(), self.out_dim());
        let b = self.bias.as_slice();
        if let Activation::Softmax = self.activation {
            // Softmax is row-wise, not elementwise: finish the affine pass
            // first, then apply the row transform to a copy.
            for r in 0..pre.rows() {
                for (z, &bv) in pre.row_mut(r).iter_mut().zip(b) {
                    *z += bv;
                }
            }
            out.copy_from(pre);
            for r in 0..out.rows() {
                self.activation.apply_row(out.row_mut(r));
            }
        } else {
            for r in 0..pre.rows() {
                let prow = pre.row_mut(r);
                let orow = out.row_mut(r);
                for ((z, o), &bv) in prow.iter_mut().zip(orow.iter_mut()).zip(b) {
                    *z += bv;
                    *o = self.activation.apply(*z);
                }
            }
        }
    }

    /// Inference forward pass into a single reused buffer (no
    /// pre-activation kept): `out = act(input W + b)`, resizing `out`.
    ///
    /// For elementwise activations the whole layer runs through the fused
    /// `matmul_bias_map_into` kernel — bias add and activation happen as
    /// the register accumulators spill, so `out` is written exactly once
    /// instead of being re-read by a second bias/activation pass. This is
    /// bitwise-identical to the unfused sequence (same accumulation order,
    /// bias still added after the full sum).
    ///
    /// # Panics
    /// Panics if `input.cols() != in_dim`.
    pub(crate) fn apply_into(&self, input: &Matrix, out: &mut Matrix) {
        out.resize_to(input.rows(), self.out_dim());
        let b = self.bias.as_slice();
        if let Activation::Softmax = self.activation {
            // Softmax is row-wise, not elementwise: affine pass first,
            // then the row transform.
            matmul::matmul_into(input, &self.weights, out).expect("layer/input width mismatch");
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (z, &bv) in row.iter_mut().zip(b) {
                    *z += bv;
                }
                self.activation.apply_row(row);
            }
        } else {
            let act = self.activation;
            matmul::matmul_bias_map_into(input, &self.weights, b, out, move |z| act.apply(z))
                .expect("layer/input width mismatch");
        }
    }

    /// Single-sample inference without any `Matrix` round-trip:
    /// `out = act(x W + b)` for a feature vector `x`, resizing `out` to
    /// `out_dim`. Used by `Network::predict_one`.
    ///
    /// # Panics
    /// Panics if `input.len() != in_dim`.
    pub(crate) fn apply_vec(&self, input: &[f64], out: &mut Vec<f64>) {
        out.resize(self.out_dim(), 0.0);
        let b = self.bias.as_slice();
        if let Activation::Softmax = self.activation {
            matmul::vecmat_into(input, &self.weights, out).expect("layer/input width mismatch");
            for (z, &bv) in out.iter_mut().zip(b) {
                *z += bv;
            }
            self.activation.apply_row(out);
        } else {
            // Fused strip kernel: the affine result never round-trips
            // through memory. Bitwise-identical to the unfused sequence.
            let act = self.activation;
            matmul::vecmat_bias_map_into(input, &self.weights, b, out, move |z| act.apply(z))
                .expect("layer/input width mismatch");
        }
    }

    fn forward_cached(&mut self, input: &Matrix) -> Matrix {
        // Reuse the previous cache's buffers so repeated forward calls at a
        // stable batch size stop allocating (aside from the returned clone).
        let mut cache = self.cache.take().unwrap_or_else(|| ForwardCache {
            input: Matrix::zeros(0, 0),
            pre_activation: Matrix::zeros(0, 0),
            output: Matrix::zeros(0, 0),
        });
        cache.input.resize_to(input.rows(), input.cols());
        cache.input.copy_from(input);
        self.forward_into(input, &mut cache.pre_activation, &mut cache.output);
        let out = cache.output.clone();
        self.cache = Some(cache);
        out
    }

    /// Backward pass. `upstream` is `dL/da` for this layer's output
    /// (`batch x out_dim`). Returns the parameter gradients (already averaged
    /// over the batch) and `dL/dx` to propagate to the previous layer.
    ///
    /// # Panics
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, upstream: &Matrix) -> (LayerGrads, Matrix) {
        let cache = self.cache.take().expect("backward called before forward");
        let mut delta = Matrix::zeros(upstream.rows(), upstream.cols());
        let mut grad_w = Matrix::zeros(self.in_dim(), self.out_dim());
        let mut grad_b = Matrix::zeros(1, self.out_dim());
        let mut downstream = Matrix::zeros(upstream.rows(), self.in_dim());
        self.backward_into(
            &cache.input,
            &cache.pre_activation,
            &cache.output,
            upstream,
            &mut delta,
            &mut grad_w,
            &mut grad_b,
            Some(&mut downstream),
        );
        self.cache = Some(cache);
        (
            LayerGrads {
                weights: grad_w,
                bias: grad_b,
            },
            downstream,
        )
    }

    /// Workspace backward pass, writing every result into caller-provided
    /// buffers. `input`, `pre` and `output` are the forward-pass state for
    /// this layer; `upstream` is `dL/da`. `delta` receives `dL/dz`,
    /// `grad_w`/`grad_b` the batch-averaged parameter gradients, and `down`
    /// (when wanted) `dL/dx`. Transpose-free kernels read `input` and the
    /// weights in stored layout — nothing is materialized.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_into(
        &self,
        input: &Matrix,
        pre: &Matrix,
        output: &Matrix,
        upstream: &Matrix,
        delta: &mut Matrix,
        grad_w: &mut Matrix,
        grad_b: &mut Matrix,
        down: Option<&mut Matrix>,
    ) {
        let batch = upstream.rows().max(1);
        self.backward_sums_into(input, pre, output, upstream, delta, grad_w, grad_b, down);
        // Batch-average the raw sums; `down` stays unscaled (the upstream
        // seed already carries the batch compensation).
        ops::scale_in_place(grad_w, 1.0 / batch as f64);
        ops::scale_in_place(grad_b, 1.0 / batch as f64);
    }

    /// Backward pass leaving the parameter gradients as *raw sums* over
    /// the rows — no `1/batch` averaging. This is the per-shard kernel of
    /// the data-parallel engine: every row of a shard contributes its raw
    /// `x^T delta` / column-sum terms, the shards' sums are combined with
    /// a fixed pairwise tree, and the engine scales by `1/batch` once at
    /// the root. All accumulation orders match [`Dense::backward_into`]
    /// (which is exactly this followed by the two scalings), keeping the
    /// sharded and full-batch paths bitwise-comparable.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_sums_into(
        &self,
        input: &Matrix,
        pre: &Matrix,
        output: &Matrix,
        upstream: &Matrix,
        delta: &mut Matrix,
        grad_w: &mut Matrix,
        grad_b: &mut Matrix,
        down: Option<&mut Matrix>,
    ) {
        // delta = dL/dz, via the activation's backward rule per row.
        delta.resize_to(upstream.rows(), upstream.cols());
        for r in 0..upstream.rows() {
            self.activation.backward_row(
                pre.row(r),
                output.row(r),
                upstream.row(r),
                delta.row_mut(r),
            );
        }

        // Raw dL/dW sum = x^T delta ; raw dL/db sum = column sums of delta.
        matmul::matmul_at_b_into(input, delta, grad_w).expect("shapes from workspace");
        ops::sum_rows_into(delta, grad_b).expect("shapes from workspace");

        // dL/dx = delta W^T.
        if let Some(d) = down {
            d.resize_to(upstream.rows(), self.in_dim());
            matmul::matmul_a_bt_into(delta, &self.weights, d).expect("shapes from workspace");
        }
    }

    /// True while the layer holds cached forward state.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Drops the cached forward state (e.g. before serialization).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_2x3() -> Dense {
        let w = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![0.01, 0.02, 0.03]).unwrap();
        Dense::new(w, b, Activation::Linear)
    }

    #[test]
    fn forward_computes_affine_for_linear() {
        let mut l = layer_2x3();
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let y = l.forward(&x);
        // [1,2] @ W + b = [0.1+0.8, 0.2+1.0, 0.3+1.2] + b
        assert!((y[(0, 0)] - 0.91).abs() < 1e-12);
        assert!((y[(0, 1)] - 1.22).abs() < 1e-12);
        assert!((y[(0, 2)] - 1.53).abs() < 1e-12);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::init(4, 5, Activation::Selu, &mut rng);
        let x = tensor::init::uniform(3, 4, -1.0, 1.0, &mut rng);
        let a = l.forward(&x);
        let b = l.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut l = layer_2x3();
        let up = Matrix::zeros(1, 3);
        let _ = l.backward(&up);
    }

    /// Finite-difference check of all gradients through a SELU layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = tensor::init::uniform(5, 3, -1.0, 1.0, &mut rng);
        let target = tensor::init::uniform(5, 2, -1.0, 1.0, &mut rng);

        let loss = |l: &Dense, x: &Matrix| -> f64 {
            let y = l.infer(x);
            let mut acc = 0.0;
            for (p, t) in y.as_slice().iter().zip(target.as_slice()) {
                acc += (p - t) * (p - t);
            }
            acc / (2.0 * y.rows() as f64)
        };

        let mut l = Dense::init(3, 2, Activation::Selu, &mut rng);
        let y = l.forward(&x);
        // dL/da for L = sum((a-t)^2) / (2 batch)
        let mut upstream = Matrix::zeros(5, 2);
        for i in 0..y.len() {
            upstream.as_mut_slice()[i] = y.as_slice()[i] - target.as_slice()[i];
        }
        let (grads, _) = l.backward(&upstream);

        let h = 1e-6;
        for idx in 0..l.weights().len() {
            let mut lp = l.clone();
            lp.weights_mut().as_mut_slice()[idx] += h;
            let mut lm = l.clone();
            lm.weights_mut().as_mut_slice()[idx] -= h;
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            let analytic = grads.weights.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "weight {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        for idx in 0..l.bias().len() {
            let mut lp = l.clone();
            lp.bias_mut().as_mut_slice()[idx] += h;
            let mut lm = l.clone();
            lm.bias_mut().as_mut_slice()[idx] -= h;
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            let analytic = grads.bias.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "bias {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Check dL/dx against finite differences.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Dense::init(3, 2, Activation::Tanh, &mut rng);
        let x = tensor::init::uniform(2, 3, -1.0, 1.0, &mut rng);
        let target = tensor::init::uniform(2, 2, -1.0, 1.0, &mut rng);

        let loss = |l: &Dense, x: &Matrix| -> f64 {
            let y = l.infer(x);
            y.as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / (2.0 * y.rows() as f64)
        };

        let y = l.forward(&x);
        let mut upstream = Matrix::zeros(2, 2);
        for i in 0..y.len() {
            upstream.as_mut_slice()[i] = (y.as_slice()[i] - target.as_slice()[i]) / 1.0;
        }
        let (_, dx) = l.backward(&upstream);

        let h = 1e-6;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            // Batch averaging: backward emits dL/dx for the *summed-over-batch
            // /batch* loss, matching `loss` above.
            let numeric = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            let analytic = dx.as_slice()[idx] / y.rows() as f64;
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "input {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn serde_round_trip_drops_cache() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = Dense::init(2, 2, Activation::Relu, &mut rng);
        let x = Matrix::zeros(1, 2);
        l.forward(&x);
        let json = serde_json::to_string(&l).unwrap();
        let back: Dense = serde_json::from_str(&json).unwrap();
        assert_eq!(back.weights(), l.weights());
        assert_eq!(back.bias(), l.bias());
    }
}
