//! Regression quality metrics.
//!
//! The paper reports model quality as *accuracy* derived from the mean
//! absolute percentage error: `accuracy = 100 - MAPE` (Section 5.1,
//! Table 3). [`mape`] and [`accuracy_from_mape`] implement exactly that.

/// Mean squared error between two equal-length slices.
pub fn mse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return f64::NAN;
    }
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a) * (p - a))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    mse(pred, actual).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return f64::NAN;
    }
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute percentage error, in percent.
///
/// Points where `actual == 0` are skipped (standard scikit-learn-adjacent
/// behaviour for MAPE on strictly positive targets like watts and seconds).
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&p, &a) in pred.iter().zip(actual) {
        if a != 0.0 {
            acc += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    100.0 * acc / n as f64
}

/// The paper's accuracy figure: `100 - MAPE`, clamped below at 0.
pub fn accuracy_from_mape(pred: &[f64], actual: &[f64]) -> f64 {
    (100.0 - mape(pred, actual)).max(0.0)
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if actual.is_empty() {
        return f64::NAN;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (a - p) * (a - p))
        .sum();
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(accuracy_from_mape(&y, &y), 100.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn mape_known_value() {
        let pred = [110.0, 90.0];
        let actual = [100.0, 100.0];
        assert!((mape(&pred, &actual) - 10.0).abs() < 1e-12);
        assert!((accuracy_from_mape(&pred, &actual) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let pred = [5.0, 110.0];
        let actual = [0.0, 100.0];
        assert!((mape(&pred, &actual) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_all_zero_actuals_is_nan() {
        assert!(mape(&[1.0], &[0.0]).is_nan());
    }

    #[test]
    fn accuracy_clamped_at_zero() {
        let pred = [500.0];
        let actual = [100.0];
        assert_eq!(accuracy_from_mape(&pred, &actual), 0.0);
    }

    #[test]
    fn rmse_is_sqrt_of_mse() {
        let pred = [2.0, 0.0];
        let actual = [0.0, 0.0];
        assert!((rmse(&pred, &actual) - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let actual = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2(&pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_target() {
        let actual = [2.0, 2.0];
        assert_eq!(r2(&[2.0, 2.0], &actual), 1.0);
        assert_eq!(r2(&[3.0, 1.0], &actual), f64::NEG_INFINITY);
    }
}
