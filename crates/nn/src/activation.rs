//! Activation functions and their derivatives.
//!
//! The paper evaluated ReLU, ELU, Leaky ReLU, SELU, sigmoid, tanh, softmax,
//! softplus and softsign before settling on SELU; all of them are available
//! here so the ablation benches can rerun that sweep. SELU uses the exact
//! constants from Klambauer et al. 2017 that the paper quotes
//! (α = 1.67326324, scale = 1.05070098).

use serde::{Deserialize, Serialize};

/// SELU α constant (paper Equation 2).
pub const SELU_ALPHA: f64 = 1.67326324;
/// SELU scale constant (paper Equation 2).
pub const SELU_SCALE: f64 = 1.05070098;

/// An elementwise activation function.
///
/// `Softmax` is the one non-elementwise member; it is applied per row and is
/// only valid as an output activation (its backward pass uses the full
/// per-row Jacobian).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity, for regression output layers.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with negative slope `alpha`.
    LeakyRelu {
        /// Negative-side slope.
        alpha: f64,
    },
    /// Exponential linear unit with saturation `alpha`.
    Elu {
        /// Negative-side saturation value.
        alpha: f64,
    },
    /// Scaled exponential linear unit (self-normalizing networks).
    Selu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// `ln(1 + e^x)`.
    Softplus,
    /// `x / (1 + |x|)`.
    Softsign,
    /// Row-wise softmax (output layers only).
    Softmax,
}

impl Activation {
    /// Applies the activation to a single pre-activation value.
    ///
    /// # Panics
    /// Panics for [`Activation::Softmax`], which is not elementwise; use
    /// [`Activation::apply_row`].
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Elu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * (x.exp() - 1.0)
                }
            }
            Activation::Selu => {
                if x > 0.0 {
                    SELU_SCALE * x
                } else {
                    SELU_SCALE * SELU_ALPHA * (x.exp() - 1.0)
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
            Activation::Softsign => x / (1.0 + x.abs()),
            Activation::Softmax => panic!("softmax is not elementwise; use apply_row"),
        }
    }

    /// Derivative with respect to the pre-activation, evaluated at `x`.
    ///
    /// # Panics
    /// Panics for [`Activation::Softmax`]; its Jacobian is handled by
    /// [`Activation::backward_row`].
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Elu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha * x.exp()
                }
            }
            Activation::Selu => {
                if x > 0.0 {
                    SELU_SCALE
                } else {
                    SELU_SCALE * SELU_ALPHA * x.exp()
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
            Activation::Softsign => {
                let d = 1.0 + x.abs();
                1.0 / (d * d)
            }
            Activation::Softmax => panic!("softmax derivative requires the row Jacobian"),
        }
    }

    /// Applies the activation to one row of pre-activations in place.
    pub fn apply_row(&self, row: &mut [f64]) {
        if let Activation::Softmax = self {
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        } else {
            for v in row.iter_mut() {
                *v = self.apply(*v);
            }
        }
    }

    /// Computes `dL/dz` for one row given the activated outputs `a` and the
    /// upstream gradient `dL/da`, writing into `out`.
    ///
    /// For elementwise activations this is `dL/da * f'(z)` where `z` is the
    /// cached pre-activation; for softmax it applies the row Jacobian
    /// `diag(a) - a a^T`.
    pub fn backward_row(&self, z: &[f64], a: &[f64], upstream: &[f64], out: &mut [f64]) {
        match self {
            Activation::Softmax => {
                let dot: f64 = a.iter().zip(upstream).map(|(&ai, &ui)| ai * ui).sum();
                for i in 0..out.len() {
                    out[i] = a[i] * (upstream[i] - dot);
                }
            }
            _ => {
                for i in 0..out.len() {
                    out[i] = upstream[i] * self.derivative(z[i]);
                }
            }
        }
    }

    /// Name used in reports and serialized configs.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::LeakyRelu { .. } => "leaky_relu",
            Activation::Elu { .. } => "elu",
            Activation::Selu => "selu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softplus => "softplus",
            Activation::Softsign => "softsign",
            Activation::Softmax => "softmax",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ELEMENTWISE: [Activation; 9] = [
        Activation::Linear,
        Activation::Relu,
        Activation::LeakyRelu { alpha: 0.01 },
        Activation::Elu { alpha: 1.0 },
        Activation::Selu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Softplus,
        Activation::Softsign,
    ];

    #[test]
    fn selu_matches_paper_constants() {
        // Positive branch: scale * x.
        assert!((Activation::Selu.apply(2.0) - SELU_SCALE * 2.0).abs() < 1e-12);
        // Negative branch: scale * alpha * (e^x - 1).
        let expect = SELU_SCALE * SELU_ALPHA * ((-1.0f64).exp() - 1.0);
        assert!((Activation::Selu.apply(-1.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn selu_fixed_point_near_zero() {
        // SELU(0) == 0 and the function is continuous there.
        assert_eq!(Activation::Selu.apply(0.0), 0.0);
        let eps = 1e-9;
        assert!((Activation::Selu.apply(eps) - Activation::Selu.apply(-eps)).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ELEMENTWISE {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{} at {x}: numeric {numeric} vs analytic {analytic}",
                    act.name()
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
    }

    #[test]
    fn sigmoid_bounded() {
        for &x in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
        }
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softplus_stable_for_large_inputs() {
        let v = Activation::Softplus.apply(1000.0);
        assert!((v - 1000.0).abs() < 1e-9);
        assert!(Activation::Softplus.apply(-1000.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0, 1000.0];
        Activation::Softmax.apply_row(&mut row);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_backward_jacobian_matches_finite_difference() {
        let z = vec![0.3, -0.2, 0.8];
        let upstream = vec![1.0, -0.5, 0.25];
        let mut a = z.clone();
        Activation::Softmax.apply_row(&mut a);
        let mut analytic = vec![0.0; 3];
        Activation::Softmax.backward_row(&z, &a, &upstream, &mut analytic);

        let h = 1e-6;
        for i in 0..3 {
            let mut zp = z.clone();
            zp[i] += h;
            let mut zm = z.clone();
            zm[i] -= h;
            Activation::Softmax.apply_row(&mut zp);
            Activation::Softmax.apply_row(&mut zm);
            let mut numeric = 0.0;
            for j in 0..3 {
                numeric += upstream[j] * (zp[j] - zm[j]) / (2.0 * h);
            }
            assert!((numeric - analytic[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_backward_row_uses_derivative() {
        let z = vec![-1.0, 0.5];
        let a: Vec<f64> = z.iter().map(|&x| Activation::Selu.apply(x)).collect();
        let upstream = vec![2.0, 3.0];
        let mut out = vec![0.0; 2];
        Activation::Selu.backward_row(&z, &a, &upstream, &mut out);
        assert!((out[0] - 2.0 * Activation::Selu.derivative(-1.0)).abs() < 1e-12);
        assert!((out[1] - 3.0 * Activation::Selu.derivative(0.5)).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Selu.name(), "selu");
        assert_eq!(Activation::LeakyRelu { alpha: 0.1 }.name(), "leaky_relu");
    }
}
