//! Loss functions: value and gradient with respect to predictions.

use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// A differentiable training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, `mean((pred - target)^2)` — the paper's choice.
    Mse,
    /// Mean absolute error, `mean(|pred - target|)`.
    Mae,
    /// Huber loss with delta = 1 (quadratic near zero, linear in the tails).
    Huber,
}

impl Loss {
    /// Scalar loss over a whole batch.
    ///
    /// # Panics
    /// Panics if shapes differ or the batch is empty.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len();
        assert!(n > 0, "loss of empty batch");
        let acc: f64 = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| self.point(p, t))
            .sum();
        acc / n as f64
    }

    /// Gradient `dL/dpred`, same shape as `pred`.
    ///
    /// The gradient is for the *mean* over the batch: each element is
    /// divided by the element count, matching [`Loss::value`]. Layer
    /// backward passes must therefore *not* divide by the batch size again —
    /// see `Network::backward`, which multiplies it back out.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len().max(1) as f64;
        let data = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| self.point_grad(p, t) / n)
            .collect();
        Matrix::from_vec(pred.rows(), pred.cols(), data).expect("same shape as pred")
    }

    /// Allocation-free sibling of [`Loss::gradient`]: writes `dL/dpred` into
    /// `out`, resizing it to `pred`'s shape (no reallocation once `out` has
    /// capacity). Bitwise-identical element values.
    pub fn gradient_into(&self, pred: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len().max(1) as f64;
        out.resize_to(pred.rows(), pred.cols());
        for ((o, &p), &t) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            *o = self.point_grad(p, t) / n;
        }
    }

    /// Raw per-element loss sum (no `1/n` normalization) over a shard.
    ///
    /// The fixed-shard training engine computes this per shard, combines
    /// the partials with the pairwise reduction tree, and divides by the
    /// full batch's element count once at the root — so the batch loss is
    /// independent of how the batch was sharded. Unlike [`Loss::value`],
    /// an empty shard is a valid (zero) sum.
    pub fn total(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        pred.as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| self.point(p, t))
            .sum()
    }

    /// Writes the backprop seed for one *shard* of a batch into `out`:
    /// `point_grad(p, t) / cols`, where `cols` is the output width.
    ///
    /// Combined with the per-row averaging a layer backward pass would
    /// apply, `point_grad / (rows * cols)` is the gradient of the mean
    /// over elements — but the shard engine keeps its layer sums *raw*
    /// and divides by the full batch's row count once after reduction, so
    /// only the column normalization happens here. A single division per
    /// element, identical no matter how the batch is sharded.
    pub fn shard_gradient_into(&self, pred: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let cols = pred.cols().max(1) as f64;
        out.resize_to(pred.rows(), pred.cols());
        for ((o, &p), &t) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            *o = self.point_grad(p, t) / cols;
        }
    }

    fn point(&self, p: f64, t: f64) -> f64 {
        let d = p - t;
        match self {
            Loss::Mse => d * d,
            Loss::Mae => d.abs(),
            Loss::Huber => {
                if d.abs() <= 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            }
        }
    }

    fn point_grad(&self, p: f64, t: f64) -> f64 {
        let d = p - t;
        match self {
            Loss::Mse => 2.0 * d,
            Loss::Mae => {
                if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber => d.clamp(-1.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: &[f64]) -> Matrix {
        Matrix::row_vector(v)
    }

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        let p = m(&[1.0, 2.0]);
        assert_eq!(Loss::Mse.value(&p, &p), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = m(&[1.0, 3.0]);
        let t = m(&[0.0, 1.0]);
        // (1 + 4) / 2
        assert_eq!(Loss::Mse.value(&p, &t), 2.5);
    }

    #[test]
    fn mae_known_value() {
        let p = m(&[1.0, -3.0]);
        let t = m(&[0.0, 1.0]);
        assert_eq!(Loss::Mae.value(&p, &t), 2.5);
    }

    #[test]
    fn huber_transitions_at_one() {
        let small = Loss::Huber.value(&m(&[0.5]), &m(&[0.0]));
        assert!((small - 0.125).abs() < 1e-12);
        let large = Loss::Huber.value(&m(&[3.0]), &m(&[0.0]));
        assert!((large - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let t = m(&[0.3, -0.7, 1.5]);
        let p = m(&[0.5, 0.5, 0.5]);
        let h = 1e-6;
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let g = loss.gradient(&p, &t);
            for i in 0..3 {
                let mut pp = p.clone();
                pp.as_mut_slice()[i] += h;
                let mut pm = p.clone();
                pm.as_mut_slice()[i] -= h;
                let numeric = (loss.value(&pp, &t) - loss.value(&pm, &t)) / (2.0 * h);
                assert!(
                    (numeric - g.as_slice()[i]).abs() < 1e-5,
                    "{loss:?} idx {i}: {numeric} vs {}",
                    g.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn gradient_into_matches_gradient_bitwise() {
        let t = m(&[0.3, -0.7, 1.5]);
        let p = m(&[0.5, 0.5, 0.5]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let expect = loss.gradient(&p, &t);
            let mut out = Matrix::zeros(4, 4); // wrong shape: gradient_into resizes
            loss.gradient_into(&p, &t, &mut out);
            assert_eq!(out.shape(), p.shape());
            assert_eq!(out.as_slice(), expect.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn mismatched_shapes_panic() {
        let _ = Loss::Mse.value(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    #[test]
    fn total_is_the_unnormalized_value() {
        let p = Matrix::from_vec(2, 2, vec![1.0, 3.0, -1.0, 0.5]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.5]).unwrap();
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let total = loss.total(&p, &t);
            assert_eq!(total / p.len() as f64, loss.value(&p, &t));
        }
        // Empty shards contribute a zero partial (value would panic).
        assert_eq!(
            Loss::Mse.total(&Matrix::zeros(0, 2), &Matrix::zeros(0, 2)),
            0.0
        );
    }

    #[test]
    fn shard_gradient_is_the_full_gradient_times_rows() {
        // gradient_into divides by rows*cols; shard_gradient_into by cols
        // only. On a single-shard batch the two must agree after the
        // engine's deferred 1/rows scaling.
        let p = Matrix::from_vec(3, 2, vec![1.0, 3.0, -1.0, 0.5, 0.2, -0.7]).unwrap();
        let t = Matrix::from_vec(3, 2, vec![0.0, 1.0, 1.0, 0.5, -0.2, 0.7]).unwrap();
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let mut full = Matrix::zeros(0, 0);
            loss.gradient_into(&p, &t, &mut full);
            let mut shard = Matrix::zeros(0, 0);
            loss.shard_gradient_into(&p, &t, &mut shard);
            for (s, f) in shard.as_slice().iter().zip(full.as_slice()) {
                assert!((s / p.rows() as f64 - f).abs() < 1e-15);
            }
        }
    }
}
