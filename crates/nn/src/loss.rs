//! Loss functions: value and gradient with respect to predictions.

use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// A differentiable training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, `mean((pred - target)^2)` — the paper's choice.
    Mse,
    /// Mean absolute error, `mean(|pred - target|)`.
    Mae,
    /// Huber loss with delta = 1 (quadratic near zero, linear in the tails).
    Huber,
}

impl Loss {
    /// Scalar loss over a whole batch.
    ///
    /// # Panics
    /// Panics if shapes differ or the batch is empty.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len();
        assert!(n > 0, "loss of empty batch");
        let acc: f64 = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| self.point(p, t))
            .sum();
        acc / n as f64
    }

    /// Gradient `dL/dpred`, same shape as `pred`.
    ///
    /// The gradient is for the *mean* over the batch: each element is
    /// divided by the element count, matching [`Loss::value`]. Layer
    /// backward passes must therefore *not* divide by the batch size again —
    /// see `Network::backward`, which multiplies it back out.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len().max(1) as f64;
        let data = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| self.point_grad(p, t) / n)
            .collect();
        Matrix::from_vec(pred.rows(), pred.cols(), data).expect("same shape as pred")
    }

    /// Allocation-free sibling of [`Loss::gradient`]: writes `dL/dpred` into
    /// `out`, resizing it to `pred`'s shape (no reallocation once `out` has
    /// capacity). Bitwise-identical element values.
    pub fn gradient_into(&self, pred: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(pred.shape(), target.shape(), "loss operand shapes differ");
        let n = pred.len().max(1) as f64;
        out.resize_to(pred.rows(), pred.cols());
        for ((o, &p), &t) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            *o = self.point_grad(p, t) / n;
        }
    }

    fn point(&self, p: f64, t: f64) -> f64 {
        let d = p - t;
        match self {
            Loss::Mse => d * d,
            Loss::Mae => d.abs(),
            Loss::Huber => {
                if d.abs() <= 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            }
        }
    }

    fn point_grad(&self, p: f64, t: f64) -> f64 {
        let d = p - t;
        match self {
            Loss::Mse => 2.0 * d,
            Loss::Mae => {
                if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber => d.clamp(-1.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: &[f64]) -> Matrix {
        Matrix::row_vector(v)
    }

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        let p = m(&[1.0, 2.0]);
        assert_eq!(Loss::Mse.value(&p, &p), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = m(&[1.0, 3.0]);
        let t = m(&[0.0, 1.0]);
        // (1 + 4) / 2
        assert_eq!(Loss::Mse.value(&p, &t), 2.5);
    }

    #[test]
    fn mae_known_value() {
        let p = m(&[1.0, -3.0]);
        let t = m(&[0.0, 1.0]);
        assert_eq!(Loss::Mae.value(&p, &t), 2.5);
    }

    #[test]
    fn huber_transitions_at_one() {
        let small = Loss::Huber.value(&m(&[0.5]), &m(&[0.0]));
        assert!((small - 0.125).abs() < 1e-12);
        let large = Loss::Huber.value(&m(&[3.0]), &m(&[0.0]));
        assert!((large - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let t = m(&[0.3, -0.7, 1.5]);
        let p = m(&[0.5, 0.5, 0.5]);
        let h = 1e-6;
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let g = loss.gradient(&p, &t);
            for i in 0..3 {
                let mut pp = p.clone();
                pp.as_mut_slice()[i] += h;
                let mut pm = p.clone();
                pm.as_mut_slice()[i] -= h;
                let numeric = (loss.value(&pp, &t) - loss.value(&pm, &t)) / (2.0 * h);
                assert!(
                    (numeric - g.as_slice()[i]).abs() < 1e-5,
                    "{loss:?} idx {i}: {numeric} vs {}",
                    g.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn gradient_into_matches_gradient_bitwise() {
        let t = m(&[0.3, -0.7, 1.5]);
        let p = m(&[0.5, 0.5, 0.5]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let expect = loss.gradient(&p, &t);
            let mut out = Matrix::zeros(4, 4); // wrong shape: gradient_into resizes
            loss.gradient_into(&p, &t, &mut out);
            assert_eq!(out.shape(), p.shape());
            assert_eq!(out.as_slice(), expect.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn mismatched_shapes_panic() {
        let _ = Loss::Mse.value(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
