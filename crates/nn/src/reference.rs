//! Naive allocating implementations of `predict` and `fit`: the oracle.
//!
//! This module implements the *same specification* as the workspace
//! engine — including the fixed-shard gradient reduction of
//! [`crate::engine`] — in the most transparent way possible: fresh
//! matrices for every intermediate, explicit transposes in backprop,
//! `select_rows` per shard, a `Vec` of per-shard gradients folded by the
//! same pairwise tree. It exists for two reasons:
//!
//! 1. **Correctness oracle.** The workspace path (serial or parallel at
//!    any thread count) must be *bitwise* identical to this one — same
//!    shard partition, same accumulation order everywhere; the parity
//!    proptests in `train.rs` compare the two end to end.
//! 2. **Benchmark baseline.** The `nn_training` and `prediction` criterion
//!    groups measure both paths so the speedup stays visible to future PRs.
//!
//! [`step`] additionally preserves the original pre-shard full-batch
//! update rule as the oracle for the legacy `Network::forward` /
//! `Network::backward` API.
//!
//! Production code should never call into this module.

use crate::loss::Loss;
use crate::network::Network;
use crate::train::{TrainConfig, TrainError, TrainingHistory};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::{matmul, ops, Matrix};

/// Allocating inference pass: clone-chains `act(x W + b)` through every
/// layer, materializing each intermediate.
pub fn predict(network: &Network, x: &Matrix) -> Matrix {
    let mut a = x.clone();
    for l in network.layers() {
        let z = matmul::matmul(&a, l.weights()).expect("layer/input width mismatch");
        let mut out =
            ops::add_row_broadcast(&z, l.bias()).expect("bias shape verified at construction");
        for r in 0..out.rows() {
            l.activation().apply_row(out.row_mut(r));
        }
        a = out;
    }
    a
}

/// Per-layer forward state captured by the allocating training pass.
struct LayerState {
    input: Matrix,
    pre: Matrix,
    out: Matrix,
}

/// Allocating mini-batch training loop, replicating `Trainer::fit` step
/// for step: identical RNG consumption, split, batch order, shard
/// partition, reduction tree, optimizer slot ids and early-stopping
/// rule, but with fresh allocations for every shard and every
/// intermediate.
pub fn fit(
    network: &mut Network,
    config: &TrainConfig,
    x: &Matrix,
    y: &Matrix,
) -> Result<TrainingHistory, TrainError> {
    if x.rows() != y.rows() {
        return Err(TrainError::RowMismatch {
            x_rows: x.rows(),
            y_rows: y.rows(),
        });
    }
    if x.rows() == 0 {
        return Err(TrainError::EmptyDataset);
    }
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);

    let mut indices: Vec<usize> = (0..x.rows()).collect();
    indices.shuffle(&mut rng);
    let n_val = ((x.rows() as f64) * config.validation_split).round() as usize;
    let n_val = n_val.min(x.rows().saturating_sub(1));
    let (val_idx, train_idx) = indices.split_at(n_val);
    let x_train = x.select_rows(train_idx);
    let y_train = y.select_rows(train_idx);
    let (x_val, y_val) = if n_val > 0 {
        (Some(x.select_rows(val_idx)), Some(y.select_rows(val_idx)))
    } else {
        (None, None)
    };

    let mut opt = config.optimizer.build();
    let mut history = TrainingHistory {
        train_loss: Vec::with_capacity(config.epochs),
        val_loss: Vec::with_capacity(config.epochs),
        train_seconds: 0.0,
    };
    let batch = config.batch_size.max(1);
    let mut order: Vec<usize> = (0..x_train.rows()).collect();
    let mut best_val = f64::INFINITY;
    let mut since_best = 0usize;

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            epoch_loss += shard_step(
                network,
                &x_train,
                &y_train,
                chunk,
                config.loss,
                &mut opt,
                config.shards.max(1),
            );
            batches += 1;
        }
        history.train_loss.push(epoch_loss / batches.max(1) as f64);
        if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
            let pred = predict(network, xv);
            let val = config.loss.value(&pred, yv);
            history.val_loss.push(val);
            if let Some(patience) = config.early_stop_patience {
                if val < best_val - 1e-12 {
                    best_val = val;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }
    }
    history.train_seconds = start.elapsed().as_secs_f64();
    Ok(history)
}

/// One sharded training step, implemented naively: the batch's rows are
/// partitioned by `engine::shard_bounds`, each shard's raw (unscaled)
/// gradient sums and loss partial are computed with fresh allocations
/// and explicit transposes, the per-shard results are folded with the
/// fixed pairwise tree (`tensor::reduce::tree_combine`), and the
/// combined sums are scaled by `1/rows` once before the optimizer
/// update. Returns the batch's mean loss.
///
/// This is the specification the workspace engine must match bitwise —
/// the whole-fit parity proptests in `train.rs` compare against it for
/// several thread counts.
pub fn shard_step(
    network: &mut Network,
    x: &Matrix,
    y: &Matrix,
    chunk: &[usize],
    loss: Loss,
    opt: &mut crate::optimizer::Optimizer,
    shards: usize,
) -> f64 {
    let rows = chunk.len();
    let n_eff = rows.min(shards).max(1);
    let mut totals = vec![0.0f64; n_eff];
    // Per shard, per layer: raw (grad_w, grad_b) sums.
    let mut grads: Vec<Vec<(Matrix, Matrix)>> = Vec::with_capacity(n_eff);

    // Indexing by shard keeps the loop in 1:1 correspondence with the
    // spec (`s` names the shard in both `shard_bounds` and `totals`).
    #[allow(clippy::needless_range_loop)]
    for s in 0..n_eff {
        let (s_start, s_len) = crate::engine::shard_bounds(rows, shards, s);
        let idx = &chunk[s_start..s_start + s_len];
        let xb = x.select_rows(idx);
        let yb = y.select_rows(idx);

        // Forward, capturing per-layer state.
        let mut states: Vec<LayerState> = Vec::with_capacity(network.layers().len());
        let mut a = xb.clone();
        for l in network.layers() {
            let z = matmul::matmul(&a, l.weights()).expect("layer/input width mismatch");
            let pre =
                ops::add_row_broadcast(&z, l.bias()).expect("bias shape verified at construction");
            let mut out = pre.clone();
            for r in 0..out.rows() {
                l.activation().apply_row(out.row_mut(r));
            }
            states.push(LayerState {
                input: a,
                pre,
                out: out.clone(),
            });
            a = out;
        }
        totals[s] = loss.total(&a, &yb);

        // Backward: raw sums, no per-shard averaging.
        let mut upstream = Matrix::zeros(0, 0);
        loss.shard_gradient_into(&a, &yb, &mut upstream);
        let mut grads_rev: Vec<(Matrix, Matrix)> = Vec::with_capacity(states.len());
        for (l, st) in network.layers().iter().zip(&states).rev() {
            let mut delta = Matrix::zeros(upstream.rows(), upstream.cols());
            for r in 0..upstream.rows() {
                l.activation().backward_row(
                    st.pre.row(r),
                    st.out.row(r),
                    upstream.row(r),
                    delta.row_mut(r),
                );
            }
            let grad_w =
                matmul::matmul(&st.input.transpose(), &delta).expect("shapes from forward");
            let grad_b = ops::sum_rows(&delta);
            upstream =
                matmul::matmul(&delta, &l.weights().transpose()).expect("shapes from forward");
            grads_rev.push((grad_w, grad_b));
        }
        grads_rev.reverse();
        grads.push(grads_rev);
    }

    // Fixed pairwise tree over the shard partials — the same fold
    // sequence the workspace pool executes.
    tensor::reduce::tree_combine(n_eff, |dst, src| {
        let (left, right) = grads.split_at_mut(src);
        for ((gw_d, gb_d), (gw_s, gb_s)) in left[dst].iter_mut().zip(right[0].iter()) {
            ops::add_assign(gw_d, gw_s).expect("same layer shapes");
            ops::add_assign(gb_d, gb_s).expect("same layer shapes");
        }
        totals[dst] += totals[src];
    });

    // Root scaling and the optimizer update, gradients-first as always.
    let inv = 1.0 / rows.max(1) as f64;
    for (gw, gb) in grads[0].iter_mut() {
        ops::scale_in_place(gw, inv);
        ops::scale_in_place(gb, inv);
    }
    opt.begin_step();
    for (i, (l, (gw, gb))) in network
        .layers_mut()
        .iter_mut()
        .zip(grads[0].iter())
        .enumerate()
    {
        opt.update(2 * i, l.weights_mut(), gw);
        opt.update(2 * i + 1, l.bias_mut(), gb);
    }
    totals[0] / (rows * y.cols()) as f64
}

/// One allocating forward + backward + update step (the original
/// `Network::forward` / `Network::backward` sequence).
pub fn step(
    network: &mut Network,
    xb: &Matrix,
    yb: &Matrix,
    loss: Loss,
    opt: &mut crate::optimizer::Optimizer,
) -> f64 {
    // Forward, capturing per-layer state.
    let mut states: Vec<LayerState> = Vec::with_capacity(network.layers().len());
    let mut a = xb.clone();
    for l in network.layers() {
        let z = matmul::matmul(&a, l.weights()).expect("layer/input width mismatch");
        let pre =
            ops::add_row_broadcast(&z, l.bias()).expect("bias shape verified at construction");
        let mut out = pre.clone();
        for r in 0..out.rows() {
            l.activation().apply_row(out.row_mut(r));
        }
        states.push(LayerState {
            input: a,
            pre,
            out: out.clone(),
        });
        a = out;
    }
    let value = loss.value(&a, yb);

    // Loss gradient with the original batch compensation.
    let mut upstream = loss.gradient(&a, yb);
    let batch = a.rows().max(1) as f64;
    for v in upstream.as_mut_slice() {
        *v *= batch;
    }

    // Backward with explicit transposes, gradients before any update.
    opt.begin_step();
    let mut grads_rev: Vec<(Matrix, Matrix)> = Vec::with_capacity(states.len());
    for (l, st) in network.layers().iter().zip(&states).rev() {
        let b = upstream.rows().max(1);
        let mut delta = Matrix::zeros(upstream.rows(), upstream.cols());
        for r in 0..upstream.rows() {
            l.activation().backward_row(
                st.pre.row(r),
                st.out.row(r),
                upstream.row(r),
                delta.row_mut(r),
            );
        }
        let grad_w = ops::scale(
            &matmul::matmul(&st.input.transpose(), &delta).expect("shapes from forward"),
            1.0 / b as f64,
        );
        let grad_b = ops::scale(&ops::sum_rows(&delta), 1.0 / b as f64);
        upstream = matmul::matmul(&delta, &l.weights().transpose()).expect("shapes from forward");
        grads_rev.push((grad_w, grad_b));
    }
    grads_rev.reverse();
    for (i, (l, (gw, gb))) in network.layers_mut().iter_mut().zip(&grads_rev).enumerate() {
        opt.update(2 * i, l.weights_mut(), gw);
        opt.update(2 * i + 1, l.bias_mut(), gb);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::NetworkBuilder;

    #[test]
    fn reference_predict_matches_workspace_predict_bitwise() {
        let net = NetworkBuilder::new(3)
            .hidden(16, Activation::Selu)
            .hidden(16, Activation::Tanh)
            .output(2, Activation::Linear)
            .seed(42)
            .build();
        let mut rng = StdRng::seed_from_u64(9);
        let x = tensor::init::uniform(37, 3, -2.0, 2.0, &mut rng);
        let a = predict(&net, &x);
        let b = net.predict(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
