//! Seed-faithful allocating implementations of `predict` and `fit`.
//!
//! This module preserves the pre-workspace training and inference paths —
//! fresh matrices for every intermediate, explicit transposes in backprop,
//! `select_rows` per mini-batch — exactly as they were before the
//! zero-allocation engine landed. It exists for two reasons:
//!
//! 1. **Correctness oracle.** The workspace path must be *bitwise*
//!    identical to this one (same accumulation order everywhere); the
//!    parity proptests in `train.rs` and `network.rs` compare the two
//!    end to end.
//! 2. **Benchmark baseline.** The `nn_training` and `prediction` criterion
//!    groups measure both paths so the speedup stays visible to future PRs.
//!
//! Production code should never call into this module.

use crate::loss::Loss;
use crate::network::Network;
use crate::train::{TrainConfig, TrainError, TrainingHistory};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::{matmul, ops, Matrix};

/// Allocating inference pass: clone-chains `act(x W + b)` through every
/// layer, materializing each intermediate.
pub fn predict(network: &Network, x: &Matrix) -> Matrix {
    let mut a = x.clone();
    for l in network.layers() {
        let z = matmul::matmul(&a, l.weights()).expect("layer/input width mismatch");
        let mut out =
            ops::add_row_broadcast(&z, l.bias()).expect("bias shape verified at construction");
        for r in 0..out.rows() {
            l.activation().apply_row(out.row_mut(r));
        }
        a = out;
    }
    a
}

/// Per-layer forward state captured by the allocating training pass.
struct LayerState {
    input: Matrix,
    pre: Matrix,
    out: Matrix,
}

/// Allocating mini-batch training loop, replicating the original
/// `Trainer::fit` step for step: identical RNG consumption, split, batch
/// order, optimizer slot ids and early-stopping rule, but with fresh
/// allocations for every batch and every intermediate.
pub fn fit(
    network: &mut Network,
    config: &TrainConfig,
    x: &Matrix,
    y: &Matrix,
) -> Result<TrainingHistory, TrainError> {
    if x.rows() != y.rows() {
        return Err(TrainError::RowMismatch {
            x_rows: x.rows(),
            y_rows: y.rows(),
        });
    }
    if x.rows() == 0 {
        return Err(TrainError::EmptyDataset);
    }
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);

    let mut indices: Vec<usize> = (0..x.rows()).collect();
    indices.shuffle(&mut rng);
    let n_val = ((x.rows() as f64) * config.validation_split).round() as usize;
    let n_val = n_val.min(x.rows().saturating_sub(1));
    let (val_idx, train_idx) = indices.split_at(n_val);
    let x_train = x.select_rows(train_idx);
    let y_train = y.select_rows(train_idx);
    let (x_val, y_val) = if n_val > 0 {
        (Some(x.select_rows(val_idx)), Some(y.select_rows(val_idx)))
    } else {
        (None, None)
    };

    let mut opt = config.optimizer.build();
    let mut history = TrainingHistory {
        train_loss: Vec::with_capacity(config.epochs),
        val_loss: Vec::with_capacity(config.epochs),
        train_seconds: 0.0,
    };
    let batch = config.batch_size.max(1);
    let mut order: Vec<usize> = (0..x_train.rows()).collect();
    let mut best_val = f64::INFINITY;
    let mut since_best = 0usize;

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x_train.select_rows(chunk);
            let yb = y_train.select_rows(chunk);
            epoch_loss += step(network, &xb, &yb, config.loss, &mut opt);
            batches += 1;
        }
        history.train_loss.push(epoch_loss / batches.max(1) as f64);
        if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
            let pred = predict(network, xv);
            let val = config.loss.value(&pred, yv);
            history.val_loss.push(val);
            if let Some(patience) = config.early_stop_patience {
                if val < best_val - 1e-12 {
                    best_val = val;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }
    }
    history.train_seconds = start.elapsed().as_secs_f64();
    Ok(history)
}

/// One allocating forward + backward + update step (the original
/// `Network::forward` / `Network::backward` sequence).
pub fn step(
    network: &mut Network,
    xb: &Matrix,
    yb: &Matrix,
    loss: Loss,
    opt: &mut crate::optimizer::Optimizer,
) -> f64 {
    // Forward, capturing per-layer state.
    let mut states: Vec<LayerState> = Vec::with_capacity(network.layers().len());
    let mut a = xb.clone();
    for l in network.layers() {
        let z = matmul::matmul(&a, l.weights()).expect("layer/input width mismatch");
        let pre =
            ops::add_row_broadcast(&z, l.bias()).expect("bias shape verified at construction");
        let mut out = pre.clone();
        for r in 0..out.rows() {
            l.activation().apply_row(out.row_mut(r));
        }
        states.push(LayerState {
            input: a,
            pre,
            out: out.clone(),
        });
        a = out;
    }
    let value = loss.value(&a, yb);

    // Loss gradient with the original batch compensation.
    let mut upstream = loss.gradient(&a, yb);
    let batch = a.rows().max(1) as f64;
    for v in upstream.as_mut_slice() {
        *v *= batch;
    }

    // Backward with explicit transposes, gradients before any update.
    opt.begin_step();
    let mut grads_rev: Vec<(Matrix, Matrix)> = Vec::with_capacity(states.len());
    for (l, st) in network.layers().iter().zip(&states).rev() {
        let b = upstream.rows().max(1);
        let mut delta = Matrix::zeros(upstream.rows(), upstream.cols());
        for r in 0..upstream.rows() {
            l.activation().backward_row(
                st.pre.row(r),
                st.out.row(r),
                upstream.row(r),
                delta.row_mut(r),
            );
        }
        let grad_w = ops::scale(
            &matmul::matmul(&st.input.transpose(), &delta).expect("shapes from forward"),
            1.0 / b as f64,
        );
        let grad_b = ops::scale(&ops::sum_rows(&delta), 1.0 / b as f64);
        upstream = matmul::matmul(&delta, &l.weights().transpose()).expect("shapes from forward");
        grads_rev.push((grad_w, grad_b));
    }
    grads_rev.reverse();
    for (i, (l, (gw, gb))) in network.layers_mut().iter_mut().zip(&grads_rev).enumerate() {
        opt.update(2 * i, l.weights_mut(), gw);
        opt.update(2 * i + 1, l.bias_mut(), gb);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::NetworkBuilder;

    #[test]
    fn reference_predict_matches_workspace_predict_bitwise() {
        let net = NetworkBuilder::new(3)
            .hidden(16, Activation::Selu)
            .hidden(16, Activation::Tanh)
            .output(2, Activation::Linear)
            .seed(42)
            .build();
        let mut rng = StdRng::seed_from_u64(9);
        let x = tensor::init::uniform(37, 3, -2.0, 2.0, &mut rng);
        let a = predict(&net, &x);
        let b = net.predict(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
