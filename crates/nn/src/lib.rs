//! From-scratch feedforward neural network (FNN) used for the paper's power
//! and performance models.
//!
//! The paper's configuration — three hidden layers of 64 neurons, SELU
//! activation (Klambauer et al. 2017), RMSprop optimizer, MSE loss, batch
//! size 64 — is expressible directly:
//!
//! ```
//! use nn::{Activation, NetworkBuilder, OptimizerKind, TrainConfig};
//! use tensor::Matrix;
//!
//! let net = NetworkBuilder::new(3)
//!     .hidden(64, Activation::Selu)
//!     .hidden(64, Activation::Selu)
//!     .hidden(64, Activation::Selu)
//!     .output(1, Activation::Linear)
//!     .seed(42)
//!     .build();
//!
//! let x = Matrix::from_rows(&[vec![0.9, 0.1, 1.0], vec![0.1, 0.8, 0.5]]).unwrap();
//! let y = Matrix::col_vector(&[1.0, 0.3]);
//! let mut trainer = nn::Trainer::new(net, TrainConfig {
//!     epochs: 5,
//!     batch_size: 2,
//!     optimizer: OptimizerKind::RmsProp { lr: 1e-3, rho: 0.9, eps: 1e-7 },
//!     ..TrainConfig::default()
//! });
//! let history = trainer.fit(&x, &y).unwrap();
//! assert_eq!(history.train_loss.len(), 5);
//! ```
//!
//! Everything is deterministic under an explicit seed; there is no global
//! RNG anywhere in the training path.
//!
//! # Zero-allocation engine
//!
//! Training and inference run through reusable [`Workspace`] buffers and
//! the tensor crate's `_into` kernels: after a short warm-up, a training
//! step ([`Network::forward_ws`] + [`Network::backward_ws`]) and a batch
//! prediction ([`Network::predict_into`]) perform **zero heap
//! allocations** — `tests/zero_alloc.rs` proves it with a counting global
//! allocator. The classic allocating API (`forward`/`backward`/`predict`)
//! remains available as thin wrappers over an internally kept workspace,
//! and is **bitwise-identical** to the workspace path (every kernel
//! accumulates in the same order); [`reference`] preserves the original
//! allocating implementation as the oracle the parity proptests compare
//! against.
//!
//! # Deterministic data parallelism
//!
//! [`Trainer::fit`] shards every mini-batch across a fixed number of
//! logical shards ([`TrainConfig::shards`]) and runs them on
//! [`TrainConfig::threads`] workers (default: the `DVFS_THREADS`
//! environment variable, else all cores). Gradients are combined with a
//! fixed-shape pairwise reduction tree, so the trained network is
//! **bitwise identical for every thread count** — see [`engine`] for the
//! full argument and `train.rs`'s proptests for the proof.

pub mod activation;
pub mod engine;
pub mod infer;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod reference;
pub mod train;
pub mod workspace;

pub use activation::Activation;
pub use infer::{InferenceEngine, Precision};
pub use layer::Dense;
pub use loss::Loss;
pub use network::{Network, NetworkBuilder};
pub use optimizer::{Optimizer, OptimizerKind};
pub use train::{TrainConfig, Trainer, TrainingHistory};
pub use workspace::Workspace;
