//! Mini-batch training loop with train/validation split and loss history.
//!
//! Mirrors the paper's procedure (Section 4.3): the dataset is split 80/20
//! into train and validation sets, trained with mini-batches of 64, and the
//! per-epoch train/validation losses are recorded — those curves are
//! Figure 6 of the paper.
//!
//! Since the data-parallel engine landed, every mini-batch is processed
//! as [`TrainConfig::shards`] fixed logical shards whose gradients are
//! combined with a fixed-shape pairwise tree (see [`crate::engine`]), so
//! the trained network is bitwise identical for every
//! [`TrainConfig::threads`] setting — including the serial `threads = 1`
//! case, which runs the same code with zero workers.

use crate::engine::{self, Shared, StepDesc, WorkspacePool};
use crate::loss::Loss;
use crate::network::Network;
use crate::optimizer::OptimizerKind;
use crate::workspace::Workspace;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Optimizer configuration.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: Loss,
    /// Fraction of rows held out for validation (paper: 0.2).
    pub validation_split: f64,
    /// Seed for shuffling and the train/validation split.
    pub shuffle_seed: u64,
    /// Stop early when the validation loss has not improved for this many
    /// epochs (None disables). The paper picked its epoch budgets by
    /// watching exactly this signal on Figure 6; early stopping automates
    /// it. Requires a non-zero validation split.
    pub early_stop_patience: Option<usize>,
    /// Number of fixed logical gradient shards per mini-batch. The
    /// trained network depends on this value (it defines the gradient
    /// reduction tree) but **not** on [`TrainConfig::threads`]. Values
    /// `< 1` behave as 1.
    pub shards: usize,
    /// Worker threads for the data-parallel engine. `0` = auto: the
    /// `DVFS_THREADS` environment variable if set, else all available
    /// cores; always clamped to `[1, shards]`. Any value yields bitwise
    /// identical results.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 64,
            optimizer: OptimizerKind::paper_default(),
            loss: Loss::Mse,
            validation_split: 0.2,
            shuffle_seed: 0,
            early_stop_patience: None,
            shards: engine::DEFAULT_SHARDS,
            threads: 0,
        }
    }
}

/// Per-epoch loss history produced by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean training loss of each epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss at the end of each epoch (empty if no split).
    pub val_loss: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

impl TrainingHistory {
    /// Epoch index (0-based) with the lowest validation loss, if any.
    pub fn best_epoch(&self) -> Option<usize> {
        tensor::reduce::argmin(&self.val_loss)
    }
}

/// Errors from the training loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// `x` and `y` row counts differ.
    RowMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Rows in the target matrix.
        y_rows: usize,
    },
    /// Dataset is empty.
    EmptyDataset,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RowMismatch { x_rows, y_rows } => {
                write!(f, "x has {x_rows} rows but y has {y_rows}")
            }
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Drives mini-batch training of a [`Network`].
#[derive(Debug)]
pub struct Trainer {
    network: Network,
    config: TrainConfig,
}

impl Trainer {
    /// Wraps `network` with the given configuration.
    pub fn new(network: Network, config: TrainConfig) -> Self {
        Self { network, config }
    }

    /// The wrapped network (e.g. after training).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Consumes the trainer, returning the trained network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// Trains on `(x, y)` and returns the loss history.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) -> Result<TrainingHistory, TrainError> {
        if x.rows() != y.rows() {
            return Err(TrainError::RowMismatch {
                x_rows: x.rows(),
                y_rows: y.rows(),
            });
        }
        if x.rows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        obs::span!("fit");
        let loss_gauge = obs::global().gauge("train.loss");
        let val_gauge = obs::global().gauge("train.val_loss");
        // Loss curves also land on the flight-recorder timeline as
        // counter tracks, so a trace shows convergence next to the
        // epoch spans. Ids are interned once, off the epoch loop.
        let trace_loss = obs::trace::intern("train.loss");
        let trace_val = obs::trace::intern("train.val_loss");
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);

        // Split rows into train / validation.
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        indices.shuffle(&mut rng);
        let n_val = ((x.rows() as f64) * self.config.validation_split).round() as usize;
        let n_val = n_val.min(x.rows().saturating_sub(1));
        let (val_idx, train_idx) = indices.split_at(n_val);
        let x_train = x.select_rows(train_idx);
        let y_train = y.select_rows(train_idx);
        let (x_val, y_val) = if n_val > 0 {
            (Some(x.select_rows(val_idx)), Some(y.select_rows(val_idx)))
        } else {
            (None, None)
        };

        let mut opt = self.config.optimizer.build();
        let mut history = TrainingHistory {
            train_loss: Vec::with_capacity(self.config.epochs),
            val_loss: Vec::with_capacity(self.config.epochs),
            train_seconds: 0.0,
        };
        let batch = self.config.batch_size.max(1);
        let n_train = x_train.rows();
        let y_cols = y_train.cols();
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;

        let shards = self.config.shards.max(1);
        let threads = engine::resolve_threads(self.config.threads, shards);
        let max_shard_rows = engine::shard_bounds(batch.min(n_train), shards, 0).1.max(1);
        obs::global().gauge("train.threads").set(threads as f64);
        obs::global()
            .gauge("train.shard_size")
            .set(max_shard_rows as f64);

        // Persistent per-shard buffers: every slot's workspace and gather
        // targets are sized for the largest shard once and reused for
        // every step, so the epoch loop performs no heap allocation in
        // steady state per worker (tests/zero_alloc.rs proves this with a
        // counting allocator).
        let pool = WorkspacePool::new(&self.network, shards, max_shard_rows);
        let mut ws_val = x_val
            .as_ref()
            .map(|xv| Workspace::for_network(&self.network, xv.rows()));

        // The network and the shuffled row order move behind locks for the
        // duration of the fit so persistent workers can read them while the
        // coordinator mutates both between steps. The rendezvous channels
        // below guarantee reads and writes never overlap, so every lock
        // acquisition is uncontended.
        let net_lock = RwLock::new(std::mem::replace(
            &mut self.network,
            Network::new(Vec::new()),
        ));
        let order_lock = RwLock::new((0..n_train).collect::<Vec<usize>>());
        let step = Mutex::new(StepDesc::default());
        let shared = Shared {
            net: &net_lock,
            order: &order_lock,
            step: &step,
            pool: &pool,
            x: &x_train,
            y: &y_train,
            loss: self.config.loss,
            shards,
            participants: threads,
        };
        let worker_parent = obs::span::current_path();

        std::thread::scope(|scope| {
            // Workers are spawned once per fit (not per batch — spawn cost
            // would dominate small steps) and rendezvous over a pair of
            // channels per step. The coordinator is participant 0 and
            // processes its own shard range inline; `threads == 1` runs
            // this identical code with zero workers. If a worker panics,
            // the coordinator's `recv` fails and propagates the panic; if
            // the coordinator panics, dropping the `go` senders during
            // unwind makes every worker's `recv` fail and exit — no
            // configuration can deadlock.
            let mut workers = Vec::with_capacity(threads.saturating_sub(1));
            for p in 1..threads {
                let (go_tx, go_rx) = std::sync::mpsc::sync_channel::<()>(1);
                let (done_tx, done_rx) = std::sync::mpsc::sync_channel::<()>(1);
                let shared = &shared;
                let parent = worker_parent.clone();
                scope.spawn(move || {
                    let _span = parent
                        .as_deref()
                        .map(|pp| obs::span::Span::enter_under(pp, "shard_worker"));
                    while go_rx.recv().is_ok() {
                        shared.run_participant(p);
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                });
                workers.push((go_tx, done_rx));
            }

            'epochs: for _ in 0..self.config.epochs {
                obs::span!("epoch");
                order_lock.write().shuffle(&mut rng);
                let mut epoch_loss = 0.0;
                let mut batches = 0usize;
                let mut begin = 0usize;
                while begin < n_train {
                    let len = batch.min(n_train - begin);
                    *step.lock() = StepDesc { start: begin, len };
                    for (go, _) in &workers {
                        go.send(()).expect("training worker exited unexpectedly");
                    }
                    shared.run_participant(0);
                    for (_, done) in &workers {
                        done.recv().expect("training worker panicked");
                    }
                    let total = pool.reduce(len.min(shards));
                    net_lock
                        .write()
                        .apply_combined_grads(&mut opt, &mut pool.slot0().ws, len);
                    epoch_loss += total / (len * y_cols) as f64;
                    batches += 1;
                    begin += len;
                }
                let mean_loss = epoch_loss / batches.max(1) as f64;
                loss_gauge.set(mean_loss);
                obs::trace::counter(trace_loss, mean_loss);
                history.train_loss.push(mean_loss);
                if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
                    let val = {
                        let net = net_lock.read();
                        let ws = ws_val.as_mut().expect("validation workspace exists");
                        let pred = net.predict_into(xv, ws);
                        self.config.loss.value(pred, yv)
                    };
                    val_gauge.set(val);
                    obs::trace::counter(trace_val, val);
                    history.val_loss.push(val);
                    if let Some(patience) = self.config.early_stop_patience {
                        if val < best_val - 1e-12 {
                            best_val = val;
                            since_best = 0;
                        } else {
                            since_best += 1;
                            if since_best >= patience {
                                break 'epochs;
                            }
                        }
                    }
                }
            }
            // Dropping the `go` senders disconnects every worker's `recv`,
            // which ends its loop; the scope joins them on exit.
            drop(workers);
        });

        self.network = net_lock.into_inner();
        self.network.clear_caches();
        history.train_seconds = start.elapsed().as_secs_f64();
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::NetworkBuilder;

    fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = tensor::init::uniform(n, 3, 0.0, 1.0, &mut rng);
        let y_vals: Vec<f64> = x
            .rows_iter()
            .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
            .collect();
        (x, Matrix::col_vector(&y_vals))
    }

    fn paper_net(seed: u64) -> Network {
        NetworkBuilder::new(3)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(seed)
            .build()
    }

    #[test]
    fn fit_records_history_lengths() {
        let (x, y) = dataset(200, 1);
        let mut t = Trainer::new(
            paper_net(1),
            TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 5);
        assert_eq!(h.val_loss.len(), 5);
        assert!(h.train_seconds > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = dataset(500, 2);
        let mut t = Trainer::new(
            paper_net(2),
            TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        let first = h.train_loss[0];
        let last = *h.train_loss.last().unwrap();
        assert!(last < first / 5.0, "loss went {first} -> {last}");
        // Validation tracks training (no catastrophic overfit on this toy).
        assert!(*h.val_loss.last().unwrap() < h.val_loss[0]);
    }

    #[test]
    fn row_mismatch_is_error() {
        let (x, _) = dataset(10, 3);
        let y = Matrix::zeros(5, 1);
        let mut t = Trainer::new(paper_net(3), TrainConfig::default());
        assert_eq!(
            t.fit(&x, &y),
            Err(TrainError::RowMismatch {
                x_rows: 10,
                y_rows: 5
            })
        );
    }

    #[test]
    fn empty_dataset_is_error() {
        let x = Matrix::zeros(0, 3);
        let y = Matrix::zeros(0, 1);
        let mut t = Trainer::new(paper_net(4), TrainConfig::default());
        assert_eq!(t.fit(&x, &y), Err(TrainError::EmptyDataset));
    }

    #[test]
    fn zero_validation_split_trains_on_everything() {
        let (x, y) = dataset(50, 5);
        let mut t = Trainer::new(
            paper_net(5),
            TrainConfig {
                epochs: 2,
                validation_split: 0.0,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert!(h.val_loss.is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = dataset(100, 6);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut t1 = Trainer::new(paper_net(6), cfg);
        let mut t2 = Trainer::new(paper_net(6), cfg);
        let h1 = t1.fit(&x, &y).unwrap();
        let h2 = t2.fit(&x, &y).unwrap();
        assert_eq!(h1.train_loss, h2.train_loss);
        let probe = Matrix::row_vector(&[0.2, 0.4, 0.6]);
        assert_eq!(t1.network().predict(&probe), t2.network().predict(&probe));
    }

    #[test]
    fn early_stopping_halts_before_the_budget() {
        let (x, y) = dataset(300, 9);
        let mut t = Trainer::new(
            paper_net(9),
            TrainConfig {
                epochs: 200,
                early_stop_patience: Some(3),
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert!(
            h.train_loss.len() < 200,
            "ran all {} epochs",
            h.train_loss.len()
        );
        // The history still records one validation loss per executed epoch.
        assert_eq!(h.train_loss.len(), h.val_loss.len());
    }

    #[test]
    fn early_stopping_needs_a_validation_split_to_trigger() {
        let (x, y) = dataset(100, 10);
        let mut t = Trainer::new(
            paper_net(10),
            TrainConfig {
                epochs: 8,
                validation_split: 0.0,
                early_stop_patience: Some(1),
                ..TrainConfig::default()
            },
        );
        // No validation set -> the patience counter never advances.
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 8);
    }

    #[test]
    fn best_epoch_finds_minimum() {
        let h = TrainingHistory {
            train_loss: vec![3.0, 2.0, 1.0],
            val_loss: vec![3.0, 1.5, 2.0],
            train_seconds: 0.1,
        };
        assert_eq!(h.best_epoch(), Some(1));
    }

    #[test]
    fn fit_records_spans_and_loss_gauges() {
        let (x, y) = dataset(100, 11);
        let mut t = Trainer::new(
            paper_net(11),
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        t.fit(&x, &y).unwrap();
        let fit = obs::span::stat("fit").expect("fit span recorded");
        assert!(fit.count >= 1);
        let epoch = obs::span::stat("fit/epoch").expect("epoch spans recorded");
        assert!(epoch.count >= 3);
        // Other tests train concurrently, so only shape-check the shared
        // gauges: the last written loss is finite and positive.
        let loss = obs::global().gauge("train.loss").get();
        assert!(loss.is_finite() && loss > 0.0, "train.loss gauge = {loss}");
    }

    #[test]
    fn fit_leaves_no_cached_state_and_serializes_cleanly() {
        let (x, y) = dataset(120, 12);
        let mut t = Trainer::new(
            paper_net(12),
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        t.fit(&x, &y).unwrap();
        let net = t.into_network();
        assert!(
            !net.has_cached_state(),
            "fit must clear caches on completion"
        );
        // A trained network round-trips through JSON without stale forward
        // state and predicts identically afterwards.
        let json = net.to_json();
        let back = Network::from_json(&json).unwrap();
        assert!(!back.has_cached_state());
        let probe = Matrix::row_vector(&[0.3, 0.6, 0.9]);
        assert_eq!(net.predict(&probe), back.predict(&probe));
    }

    #[test]
    fn early_stop_triggers_at_the_epoch_the_patience_rule_dictates() {
        let (x, y) = dataset(300, 13);
        let patience = 3usize;
        let mut t = Trainer::new(
            paper_net(13),
            TrainConfig {
                epochs: 200,
                early_stop_patience: Some(patience),
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        let executed = h.val_loss.len();
        assert!(executed < 200, "expected an early stop, ran {executed}");
        // Re-derive the stop epoch from the recorded curve with the same
        // strict-improvement rule (val < best - 1e-12) and check they agree.
        let mut best = f64::INFINITY;
        let mut since_best = 0usize;
        let mut stop_after = None;
        for (e, &v) in h.val_loss.iter().enumerate() {
            if v < best - 1e-12 {
                best = v;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    stop_after = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            stop_after,
            Some(executed - 1),
            "fit stopped at a different epoch than its recorded curve implies"
        );
    }

    #[test]
    fn best_epoch_agrees_with_recorded_val_loss_minimum() {
        let (x, y) = dataset(250, 14);
        let mut t = Trainer::new(
            paper_net(14),
            TrainConfig {
                epochs: 40,
                early_stop_patience: Some(5),
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        let manual = h
            .val_loss
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i);
        assert_eq!(h.best_epoch(), manual);
        assert!(h.best_epoch().is_some());
    }

    #[test]
    fn patience_without_validation_split_is_deterministically_ignored() {
        let (x, y) = dataset(100, 15);
        let cfg = TrainConfig {
            epochs: 6,
            validation_split: 0.0,
            early_stop_patience: Some(1),
            ..TrainConfig::default()
        };
        // Patience needs a validation signal; without one it is ignored and
        // the full epoch budget runs — identically on every invocation.
        let mut t1 = Trainer::new(paper_net(15), cfg);
        let mut t2 = Trainer::new(paper_net(15), cfg);
        let h1 = t1.fit(&x, &y).unwrap();
        let h2 = t2.fit(&x, &y).unwrap();
        assert_eq!(h1.train_loss.len(), 6);
        assert!(h1.val_loss.is_empty());
        assert_eq!(h1.train_loss, h2.train_loss);
    }

    mod parity {
        use super::*;
        use crate::reference;
        use proptest::prelude::*;

        /// The workspace-path `fit` must be *bitwise* identical to the
        /// naive allocating oracle — same loss curves, same final weights,
        /// same predictions — for any seed, batch size and split, **and
        /// for every thread count**: the serial `threads = 1` engine and
        /// the data-parallel engine at 2, 4 and 8 threads must all
        /// produce the identical network.
        fn assert_fit_parity(cfg: TrainConfig, net_seed: u64, data_seed: u64, rows: usize) {
            let (x, y) = dataset(rows, data_seed);
            let base = paper_tiny(net_seed);
            let mut net_ref = base.clone();
            let h_ref = reference::fit(&mut net_ref, &cfg, &x, &y).unwrap();

            // Serial workspace path.
            let serial_cfg = TrainConfig { threads: 1, ..cfg };
            let mut t = Trainer::new(base.clone(), serial_cfg);
            let h_ws = t.fit(&x, &y).unwrap();
            let net_ws = t.into_network();

            assert_eq!(h_ref.train_loss, h_ws.train_loss, "train loss diverged");
            assert_eq!(h_ref.val_loss, h_ws.val_loss, "val loss diverged");
            for (lr, lw) in net_ref.layers().iter().zip(net_ws.layers()) {
                assert_eq!(
                    lr.weights().as_slice(),
                    lw.weights().as_slice(),
                    "weights diverged"
                );
                assert_eq!(lr.bias().as_slice(), lw.bias().as_slice(), "bias diverged");
            }
            let probe = Matrix::row_vector(&[0.1, 0.5, 0.9]);
            assert_eq!(
                reference::predict(&net_ref, &probe).as_slice(),
                net_ws.predict(&probe).as_slice(),
                "predictions diverged"
            );

            // Parallel engine at every tested thread count: bitwise equal
            // to the serial path (and therefore to the oracle).
            for threads in [2usize, 4, 8] {
                let mut tp = Trainer::new(base.clone(), TrainConfig { threads, ..cfg });
                let h_par = tp.fit(&x, &y).unwrap();
                let net_par = tp.into_network();
                assert_eq!(
                    h_ws.train_loss, h_par.train_loss,
                    "train loss diverged at {threads} threads"
                );
                assert_eq!(
                    h_ws.val_loss, h_par.val_loss,
                    "val loss diverged at {threads} threads"
                );
                for (ls, lp) in net_ws.layers().iter().zip(net_par.layers()) {
                    assert_eq!(
                        ls.weights().as_slice(),
                        lp.weights().as_slice(),
                        "weights diverged at {threads} threads"
                    );
                    assert_eq!(
                        ls.bias().as_slice(),
                        lp.bias().as_slice(),
                        "bias diverged at {threads} threads"
                    );
                }
            }
        }

        fn paper_tiny(seed: u64) -> Network {
            NetworkBuilder::new(3)
                .hidden(16, Activation::Selu)
                .hidden(16, Activation::Selu)
                .output(1, Activation::Linear)
                .seed(seed)
                .build()
        }

        #[test]
        fn fit_matches_reference_with_paper_defaults() {
            assert_fit_parity(
                TrainConfig {
                    epochs: 4,
                    ..TrainConfig::default()
                },
                1,
                2,
                200,
            );
        }

        #[test]
        fn fit_matches_reference_with_early_stopping() {
            assert_fit_parity(
                TrainConfig {
                    epochs: 30,
                    early_stop_patience: Some(2),
                    ..TrainConfig::default()
                },
                3,
                4,
                150,
            );
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn fit_matches_reference_bitwise(
                net_seed in 0u64..50,
                data_seed in 0u64..50,
                batch_size in 1usize..96,
                rows in 20usize..160,
                split_idx in 0usize..3,
                epochs in 1usize..4,
            ) {
                assert_fit_parity(
                    TrainConfig {
                        epochs,
                        batch_size,
                        validation_split: [0.0, 0.2, 0.5][split_idx],
                        shuffle_seed: data_seed ^ 0x5eed,
                        ..TrainConfig::default()
                    },
                    net_seed,
                    data_seed,
                    rows,
                );
            }
        }
    }

    #[test]
    fn single_row_dataset_trains() {
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3]);
        let y = Matrix::col_vector(&[1.0]);
        let mut t = Trainer::new(
            paper_net(7),
            TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        );
        // Validation split rounds to 0 held-out rows (min keeps 1 train row).
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 2);
    }
}
