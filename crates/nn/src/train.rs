//! Mini-batch training loop with train/validation split and loss history.
//!
//! Mirrors the paper's procedure (Section 4.3): the dataset is split 80/20
//! into train and validation sets, trained with mini-batches of 64, and the
//! per-epoch train/validation losses are recorded — those curves are
//! Figure 6 of the paper.

use crate::loss::Loss;
use crate::network::Network;
use crate::optimizer::OptimizerKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Optimizer configuration.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: Loss,
    /// Fraction of rows held out for validation (paper: 0.2).
    pub validation_split: f64,
    /// Seed for shuffling and the train/validation split.
    pub shuffle_seed: u64,
    /// Stop early when the validation loss has not improved for this many
    /// epochs (None disables). The paper picked its epoch budgets by
    /// watching exactly this signal on Figure 6; early stopping automates
    /// it. Requires a non-zero validation split.
    pub early_stop_patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 64,
            optimizer: OptimizerKind::paper_default(),
            loss: Loss::Mse,
            validation_split: 0.2,
            shuffle_seed: 0,
            early_stop_patience: None,
        }
    }
}

/// Per-epoch loss history produced by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean training loss of each epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss at the end of each epoch (empty if no split).
    pub val_loss: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

impl TrainingHistory {
    /// Epoch index (0-based) with the lowest validation loss, if any.
    pub fn best_epoch(&self) -> Option<usize> {
        tensor::reduce::argmin(&self.val_loss)
    }
}

/// Errors from the training loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// `x` and `y` row counts differ.
    RowMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Rows in the target matrix.
        y_rows: usize,
    },
    /// Dataset is empty.
    EmptyDataset,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RowMismatch { x_rows, y_rows } => {
                write!(f, "x has {x_rows} rows but y has {y_rows}")
            }
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Drives mini-batch training of a [`Network`].
#[derive(Debug)]
pub struct Trainer {
    network: Network,
    config: TrainConfig,
}

impl Trainer {
    /// Wraps `network` with the given configuration.
    pub fn new(network: Network, config: TrainConfig) -> Self {
        Self { network, config }
    }

    /// The wrapped network (e.g. after training).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Consumes the trainer, returning the trained network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// Trains on `(x, y)` and returns the loss history.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) -> Result<TrainingHistory, TrainError> {
        if x.rows() != y.rows() {
            return Err(TrainError::RowMismatch {
                x_rows: x.rows(),
                y_rows: y.rows(),
            });
        }
        if x.rows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        obs::span!("fit");
        let loss_gauge = obs::global().gauge("train.loss");
        let val_gauge = obs::global().gauge("train.val_loss");
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);

        // Split rows into train / validation.
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        indices.shuffle(&mut rng);
        let n_val = ((x.rows() as f64) * self.config.validation_split).round() as usize;
        let n_val = n_val.min(x.rows().saturating_sub(1));
        let (val_idx, train_idx) = indices.split_at(n_val);
        let x_train = x.select_rows(train_idx);
        let y_train = y.select_rows(train_idx);
        let (x_val, y_val) = if n_val > 0 {
            (Some(x.select_rows(val_idx)), Some(y.select_rows(val_idx)))
        } else {
            (None, None)
        };

        let mut opt = self.config.optimizer.build();
        let mut history = TrainingHistory {
            train_loss: Vec::with_capacity(self.config.epochs),
            val_loss: Vec::with_capacity(self.config.epochs),
            train_seconds: 0.0,
        };
        let batch = self.config.batch_size.max(1);
        let mut order: Vec<usize> = (0..x_train.rows()).collect();
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;

        for _ in 0..self.config.epochs {
            obs::span!("epoch");
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let xb = x_train.select_rows(chunk);
                let yb = y_train.select_rows(chunk);
                let pred = self.network.forward(&xb);
                epoch_loss += self
                    .network
                    .backward(&pred, &yb, self.config.loss, &mut opt);
                batches += 1;
            }
            let mean_loss = epoch_loss / batches.max(1) as f64;
            loss_gauge.set(mean_loss);
            history.train_loss.push(mean_loss);
            if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
                let pred = self.network.predict(xv);
                let val = self.config.loss.value(&pred, yv);
                val_gauge.set(val);
                history.val_loss.push(val);
                if let Some(patience) = self.config.early_stop_patience {
                    if val < best_val - 1e-12 {
                        best_val = val;
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if since_best >= patience {
                            break;
                        }
                    }
                }
            }
        }
        self.network.clear_caches();
        history.train_seconds = start.elapsed().as_secs_f64();
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::NetworkBuilder;

    fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = tensor::init::uniform(n, 3, 0.0, 1.0, &mut rng);
        let y_vals: Vec<f64> = x
            .rows_iter()
            .map(|r| 0.5 * r[0] + r[1] * r[1] - 0.3 * r[2] + 0.1)
            .collect();
        (x, Matrix::col_vector(&y_vals))
    }

    fn paper_net(seed: u64) -> Network {
        NetworkBuilder::new(3)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(seed)
            .build()
    }

    #[test]
    fn fit_records_history_lengths() {
        let (x, y) = dataset(200, 1);
        let mut t = Trainer::new(
            paper_net(1),
            TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 5);
        assert_eq!(h.val_loss.len(), 5);
        assert!(h.train_seconds > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = dataset(500, 2);
        let mut t = Trainer::new(
            paper_net(2),
            TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        let first = h.train_loss[0];
        let last = *h.train_loss.last().unwrap();
        assert!(last < first / 5.0, "loss went {first} -> {last}");
        // Validation tracks training (no catastrophic overfit on this toy).
        assert!(*h.val_loss.last().unwrap() < h.val_loss[0]);
    }

    #[test]
    fn row_mismatch_is_error() {
        let (x, _) = dataset(10, 3);
        let y = Matrix::zeros(5, 1);
        let mut t = Trainer::new(paper_net(3), TrainConfig::default());
        assert_eq!(
            t.fit(&x, &y),
            Err(TrainError::RowMismatch {
                x_rows: 10,
                y_rows: 5
            })
        );
    }

    #[test]
    fn empty_dataset_is_error() {
        let x = Matrix::zeros(0, 3);
        let y = Matrix::zeros(0, 1);
        let mut t = Trainer::new(paper_net(4), TrainConfig::default());
        assert_eq!(t.fit(&x, &y), Err(TrainError::EmptyDataset));
    }

    #[test]
    fn zero_validation_split_trains_on_everything() {
        let (x, y) = dataset(50, 5);
        let mut t = Trainer::new(
            paper_net(5),
            TrainConfig {
                epochs: 2,
                validation_split: 0.0,
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert!(h.val_loss.is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = dataset(100, 6);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut t1 = Trainer::new(paper_net(6), cfg);
        let mut t2 = Trainer::new(paper_net(6), cfg);
        let h1 = t1.fit(&x, &y).unwrap();
        let h2 = t2.fit(&x, &y).unwrap();
        assert_eq!(h1.train_loss, h2.train_loss);
        let probe = Matrix::row_vector(&[0.2, 0.4, 0.6]);
        assert_eq!(t1.network().predict(&probe), t2.network().predict(&probe));
    }

    #[test]
    fn early_stopping_halts_before_the_budget() {
        let (x, y) = dataset(300, 9);
        let mut t = Trainer::new(
            paper_net(9),
            TrainConfig {
                epochs: 200,
                early_stop_patience: Some(3),
                ..TrainConfig::default()
            },
        );
        let h = t.fit(&x, &y).unwrap();
        assert!(
            h.train_loss.len() < 200,
            "ran all {} epochs",
            h.train_loss.len()
        );
        // The history still records one validation loss per executed epoch.
        assert_eq!(h.train_loss.len(), h.val_loss.len());
    }

    #[test]
    fn early_stopping_needs_a_validation_split_to_trigger() {
        let (x, y) = dataset(100, 10);
        let mut t = Trainer::new(
            paper_net(10),
            TrainConfig {
                epochs: 8,
                validation_split: 0.0,
                early_stop_patience: Some(1),
                ..TrainConfig::default()
            },
        );
        // No validation set -> the patience counter never advances.
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 8);
    }

    #[test]
    fn best_epoch_finds_minimum() {
        let h = TrainingHistory {
            train_loss: vec![3.0, 2.0, 1.0],
            val_loss: vec![3.0, 1.5, 2.0],
            train_seconds: 0.1,
        };
        assert_eq!(h.best_epoch(), Some(1));
    }

    #[test]
    fn fit_records_spans_and_loss_gauges() {
        let (x, y) = dataset(100, 11);
        let mut t = Trainer::new(
            paper_net(11),
            TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        t.fit(&x, &y).unwrap();
        let fit = obs::span::stat("fit").expect("fit span recorded");
        assert!(fit.count >= 1);
        let epoch = obs::span::stat("fit/epoch").expect("epoch spans recorded");
        assert!(epoch.count >= 3);
        // Other tests train concurrently, so only shape-check the shared
        // gauges: the last written loss is finite and positive.
        let loss = obs::global().gauge("train.loss").get();
        assert!(loss.is_finite() && loss > 0.0, "train.loss gauge = {loss}");
    }

    #[test]
    fn single_row_dataset_trains() {
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3]);
        let y = Matrix::col_vector(&[1.0]);
        let mut t = Trainer::new(
            paper_net(7),
            TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        );
        // Validation split rounds to 0 held-out rows (min keeps 1 train row).
        let h = t.fit(&x, &y).unwrap();
        assert_eq!(h.train_loss.len(), 2);
    }
}
