//! Reusable training/inference buffers: the heart of the zero-allocation
//! engine.
//!
//! A [`Workspace`] owns every intermediate matrix a forward/backward pass
//! needs — per-layer pre-activations, activations, deltas, parameter
//! gradients, downstream gradients, plus the batch input and the loss
//! gradient. Buffers are sized from the network topology once and resized
//! (never reallocated, once capacity is reached) via
//! [`Matrix::resize_to`] as batch dimensions change, so steady-state
//! training steps perform **zero heap allocations** — see
//! `tests/zero_alloc.rs` for the counting-allocator proof.
//!
//! The workspace path is bitwise-identical to the allocating path: every
//! `_into` kernel it drives accumulates in the same order as its
//! allocating sibling (see the `tensor` crate docs), which the parity
//! proptests in `train.rs` assert end to end.

use crate::network::Network;
use std::cell::RefCell;
use tensor::Matrix;

/// Per-layer scratch buffers. Row counts track the current batch; column
/// counts are fixed by the layer shape.
#[derive(Debug, Clone)]
pub(crate) struct LayerWs {
    /// Pre-activation `z = x W + b`, `(batch x out_dim)`.
    pub(crate) pre: Matrix,
    /// Activation `a = act(z)`, `(batch x out_dim)`.
    pub(crate) out: Matrix,
    /// `dL/dz`, `(batch x out_dim)`.
    pub(crate) delta: Matrix,
    /// `dL/dx` propagated to the previous layer, `(batch x in_dim)`.
    pub(crate) down: Matrix,
    /// `dL/dW`, `(in_dim x out_dim)` — fixed shape.
    pub(crate) grad_w: Matrix,
    /// `dL/db`, `(1 x out_dim)` — fixed shape.
    pub(crate) grad_b: Matrix,
}

/// Reusable buffers for [`Network::forward_ws`] / [`Network::backward_ws`] /
/// [`Network::predict_into`].
///
/// Create one per training loop (or use [`Workspace::with_thread_local`]
/// for ad-hoc inference) and pass it to every step; the first steps size
/// the buffers, after which no step allocates.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// `(in_dim, out_dim)` per layer — the topology the buffers were built
    /// for. A mismatch on `ensure` triggers a rebuild.
    topo: Vec<(usize, usize)>,
    /// Row count the batch-sized buffers are currently shaped for. Lets
    /// [`Workspace::ensure`] return immediately on the steady-state path
    /// (same topology, same batch) instead of re-deriving every layer
    /// shape and re-resizing every buffer per call.
    rows: usize,
    pub(crate) layers: Vec<LayerWs>,
    /// Copy of the current batch input, `(batch x in_dim)`.
    pub(crate) input: Matrix,
    /// `dL/dpred` seed for backprop, `(batch x out_dim)`.
    pub(crate) loss_grad: Matrix,
}

impl Workspace {
    /// Builds a workspace sized for `net` with an initial batch of `batch`
    /// rows. The batch dimension grows on demand; passing the largest batch
    /// up front avoids any later reallocation.
    pub fn for_network(net: &Network, batch: usize) -> Self {
        let mut ws = Self {
            topo: Vec::new(),
            rows: 0,
            layers: Vec::new(),
            input: Matrix::zeros(batch, net.in_dim()),
            loss_grad: Matrix::zeros(batch, net.out_dim()),
        };
        ws.rebuild(net, batch);
        ws
    }

    /// Makes the workspace match `net`'s topology with row capacity for
    /// `rows`. Rebuilds from scratch on a topology change; otherwise only
    /// adjusts the row dimension of the batch-sized buffers (allocation-free
    /// within existing capacity). When both the topology and the batch size
    /// match the previous call — the steady state of every inference and
    /// training loop — this is a two-comparison early return.
    pub fn ensure(&mut self, net: &Network, rows: usize) {
        let matches = self.topo.len() == net.layers().len()
            && self
                .topo
                .iter()
                .zip(net.layers())
                .all(|(&(i, o), l)| i == l.in_dim() && o == l.out_dim());
        if !matches {
            self.rebuild(net, rows);
            return;
        }
        if rows == self.rows {
            return;
        }
        self.rows = rows;
        for lw in &mut self.layers {
            let out_dim = lw.grad_w.cols();
            let in_dim = lw.grad_w.rows();
            lw.pre.resize_to(rows, out_dim);
            lw.out.resize_to(rows, out_dim);
            lw.delta.resize_to(rows, out_dim);
            lw.down.resize_to(rows, in_dim);
        }
    }

    fn rebuild(&mut self, net: &Network, rows: usize) {
        self.rows = rows;
        self.topo = net
            .layers()
            .iter()
            .map(|l| (l.in_dim(), l.out_dim()))
            .collect();
        self.layers = self
            .topo
            .iter()
            .map(|&(in_dim, out_dim)| LayerWs {
                pre: Matrix::zeros(rows, out_dim),
                out: Matrix::zeros(rows, out_dim),
                delta: Matrix::zeros(rows, out_dim),
                down: Matrix::zeros(rows, in_dim),
                grad_w: Matrix::zeros(in_dim, out_dim),
                grad_b: Matrix::zeros(1, out_dim),
            })
            .collect();
        self.input.resize_to(rows, net.in_dim());
        self.loss_grad.resize_to(rows, net.out_dim());
    }

    /// The activations of the final layer after a forward pass — the
    /// network output. For a layerless network this is the (copied) input.
    pub fn output(&self) -> &Matrix {
        self.layers.last().map_or(&self.input, |lw| &lw.out)
    }

    /// Folds another workspace's parameter-gradient buffers into this
    /// one: `grad_w += src.grad_w`, `grad_b += src.grad_b` per layer.
    ///
    /// One combine step of the fixed-shard gradient reduction (see
    /// `tensor::reduce::tree_combine` and `crate::engine`): plain
    /// left-to-right elementwise adds, so the reduction's floating-point
    /// sequence is a function of the tree shape alone. Both workspaces
    /// must be built for the same topology.
    pub fn combine_grads_from(&mut self, src: &Workspace) {
        debug_assert_eq!(self.topo, src.topo, "combining mismatched workspaces");
        for (dst, s) in self.layers.iter_mut().zip(&src.layers) {
            tensor::ops::add_assign(&mut dst.grad_w, &s.grad_w).expect("same topology");
            tensor::ops::add_assign(&mut dst.grad_b, &s.grad_b).expect("same topology");
        }
    }

    /// Runs `f` with this thread's cached workspace, creating (or
    /// rebuilding, on topology change) it on first use. Subsequent calls
    /// with the same topology reuse the buffers, so repeated inference from
    /// the same thread is allocation-free.
    ///
    /// # Panics
    /// Panics if `f` re-enters `with_thread_local` on the same thread (the
    /// workspace is exclusively borrowed for the duration of `f`).
    pub fn with_thread_local<R>(net: &Network, f: impl FnOnce(&mut Workspace) -> R) -> R {
        thread_local! {
            static TL_WS: RefCell<Option<Workspace>> = const { RefCell::new(None) };
        }
        TL_WS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let ws = slot.get_or_insert_with(|| Workspace::for_network(net, 1));
            f(ws)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::NetworkBuilder;

    fn net() -> Network {
        NetworkBuilder::new(3)
            .hidden(8, Activation::Selu)
            .output(2, Activation::Linear)
            .seed(0)
            .build()
    }

    #[test]
    fn for_network_sizes_buffers_from_topology() {
        let ws = Workspace::for_network(&net(), 16);
        assert_eq!(ws.layers.len(), 2);
        assert_eq!(ws.layers[0].pre.shape(), (16, 8));
        assert_eq!(ws.layers[0].down.shape(), (16, 3));
        assert_eq!(ws.layers[0].grad_w.shape(), (3, 8));
        assert_eq!(ws.layers[1].grad_b.shape(), (1, 2));
        assert_eq!(ws.input.shape(), (16, 3));
        assert_eq!(ws.loss_grad.shape(), (16, 2));
    }

    #[test]
    fn ensure_resizes_rows_without_reallocating() {
        let n = net();
        let mut ws = Workspace::for_network(&n, 32);
        let ptr = ws.layers[0].pre.as_slice().as_ptr();
        ws.ensure(&n, 7);
        assert_eq!(ws.layers[0].pre.shape(), (7, 8));
        assert_eq!(ws.layers[0].pre.as_slice().as_ptr(), ptr);
        ws.ensure(&n, 32);
        assert_eq!(ws.layers[0].pre.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn ensure_rebuilds_on_topology_change() {
        let mut ws = Workspace::for_network(&net(), 4);
        let other = NetworkBuilder::new(5)
            .output(1, Activation::Linear)
            .seed(0)
            .build();
        ws.ensure(&other, 4);
        assert_eq!(ws.layers.len(), 1);
        assert_eq!(ws.layers[0].grad_w.shape(), (5, 1));
    }

    #[test]
    fn thread_local_reuses_across_calls() {
        let n = net();
        let p1 = Workspace::with_thread_local(&n, |ws| {
            ws.ensure(&n, 8);
            ws.layers[0].pre.as_slice().as_ptr() as usize
        });
        let p2 = Workspace::with_thread_local(&n, |ws| {
            ws.ensure(&n, 8);
            ws.layers[0].pre.as_slice().as_ptr() as usize
        });
        assert_eq!(p1, p2);
    }
}
