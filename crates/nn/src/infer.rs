//! Frozen, inference-only view of a trained [`Network`]: the batched
//! engine behind the prediction hot path.
//!
//! Training wants mutable layers, cached state and bitwise
//! reproducibility; serving wants an immutable object that turns a batch
//! of feature rows into outputs as fast as possible. [`InferenceEngine`]
//! is that object: [`InferenceEngine::compile`] converts a trained
//! network's f64 weights **once** into the packed, interleaved f32 panel
//! layout of [`tensor::f32x8`], and every forward pass then runs one
//! fused GEMM + bias + activation per layer over the whole batch — the
//! 61-state frequency sweep is three 61×64 GEMMs and a 61×1 tail, not
//! 61 separate matvecs.
//!
//! # Precision modes and their documented error bounds
//!
//! * [`Precision::F64`] — no packing; the engine delegates to the same
//!   workspace `_into` kernels as [`Network::predict`], so outputs are
//!   **bitwise-identical** to [`crate::reference::predict`]. This is the
//!   default serving mode.
//! * [`Precision::F32`] — activations, weights and accumulation in f32;
//!   SELU/ELU/sigmoid use the branch-free [`tensor::f32x8::exp32`]
//!   (< 3e-7 relative error) so the activation pass vectorizes. For
//!   LeCun-initialized paper-topology networks on normalized features
//!   the parity proptests below enforce
//!   `|engine − reference| ≤ 1e-4 + 1e-4·|reference|` per output.
//! * [`Precision::Bf16`] — bf16-style *storage*: weights and biases keep
//!   only an 8-bit significand ([`tensor::f32x8::bf16_truncate`], one
//!   truncation ulp = `2^-7`), while activations and accumulation stay
//!   f32. Each layer records a power-of-two scale (weights are stored as
//!   `bf16(w / scale)` and the accumulator is rescaled before the bias
//!   add), keeping the stored values centered in the quantizer's range;
//!   power-of-two scaling is lossless in binary floating point, so the
//!   record costs no extra error. Enforced parity bound:
//!   `|engine − reference| ≤ 5e-2 + 5e-2·|reference|` per output.
//!
//! The reduced-precision bounds are *test contracts* for realistic
//! networks (bounded weights, normalized inputs), not worst-case
//! theorems — adversarial weight matrices can cancel catastrophically in
//! any finite precision. The serving layer therefore gates reduced
//! precision behind the rolling-MAPE quality monitor rather than trusting
//! the static bound (see `core::snapshot`).

use crate::activation::{Activation, SELU_ALPHA, SELU_SCALE};
use crate::network::Network;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use tensor::f32x8::{self, PackedF32};
use tensor::Matrix;

/// Numeric mode of an [`InferenceEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full f64, bitwise-identical to the training forward pass.
    F64,
    /// f32 storage and accumulation through the packed 8-lane kernels.
    F32,
    /// bf16-style truncated storage, f32 accumulation, per-layer scales.
    Bf16,
}

impl Precision {
    /// Parses a mode name as accepted by `dvfs serve --precision`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f64" => Some(Self::F64),
            "f32" => Some(Self::F32),
            "bf16" => Some(Self::Bf16),
            _ => None,
        }
    }

    /// Canonical lowercase name (`f64` / `f32` / `bf16`).
    pub fn name(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
            Self::Bf16 => "bf16",
        }
    }

    /// Stable numeric code for gauges: 0 = f64, 1 = f32, 2 = bf16.
    pub fn code(self) -> u64 {
        match self {
            Self::F64 => 0,
            Self::F32 => 1,
            Self::Bf16 => 2,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One layer in packed form: interleaved weight panels, f32 bias, the
/// power-of-two scale record, and the activation to fuse in.
#[derive(Debug, Clone)]
struct PackedLayer {
    weights: PackedF32,
    bias: Vec<f32>,
    /// Weights are stored as `quant(w / scale)`; the kernel multiplies
    /// the accumulator by `scale` before the bias add. Always an exact
    /// power of two (lossless), 1.0 in plain f32 mode.
    scale: f32,
    activation: Activation,
}

impl PackedLayer {
    fn out_dim(&self) -> usize {
        self.weights.out_dim()
    }

    /// Runs the fused layer kernel: `out = act(scale·(x·W) + b)`.
    ///
    /// Each activation variant gets its own monomorphized GEMM
    /// instantiation (the variant is a literal inside the closure, so
    /// [`apply32`]'s match constant-folds away) — a single closure over
    /// the runtime enum would put a per-element branch in the spill loop
    /// and keep the exponentials scalar.
    fn run(&self, x: &[f32], rows: usize, out: &mut [f32]) {
        use Activation as A;
        match self.activation {
            A::Softmax => {
                self.gemm(x, rows, |v| v, out);
                let n = self.out_dim();
                for r in 0..rows {
                    softmax32(&mut out[r * n..(r + 1) * n]);
                }
            }
            A::Linear => self.gemm(x, rows, |v| apply32(A::Linear, v), out),
            A::Relu => self.gemm(x, rows, |v| apply32(A::Relu, v), out),
            A::LeakyRelu { alpha } => {
                self.gemm(x, rows, move |v| apply32(A::LeakyRelu { alpha }, v), out)
            }
            A::Elu { alpha } => self.gemm(x, rows, move |v| apply32(A::Elu { alpha }, v), out),
            A::Selu => self.gemm(x, rows, |v| apply32(A::Selu, v), out),
            A::Sigmoid => self.gemm(x, rows, |v| apply32(A::Sigmoid, v), out),
            A::Tanh => self.gemm(x, rows, |v| apply32(A::Tanh, v), out),
            A::Softplus => self.gemm(x, rows, |v| apply32(A::Softplus, v), out),
            A::Softsign => self.gemm(x, rows, |v| apply32(A::Softsign, v), out),
        }
    }

    #[inline]
    fn gemm<F: Fn(f32) -> f32>(&self, x: &[f32], rows: usize, act: F, out: &mut [f32]) {
        f32x8::gemm_bias_act_into(x, rows, &self.weights, &self.bias, self.scale, act, out);
    }
}

const SELU_SCALE32: f32 = SELU_SCALE as f32;
const SELU_ALPHA32: f32 = SELU_ALPHA as f32;

/// f32 mirror of [`Activation::apply`], written branch-free so the fused
/// spill loop vectorizes. The rectifier family uses the additive split
/// `f(x) = pos(x.max(0)) + neg(x.min(0))` instead of a select: each term
/// is exactly zero on the other branch's domain (`exp32(0) == 1`
/// exactly), so the value is unchanged — and with no select, LLVM cannot
/// sink the exponential behind a per-element branch.
#[inline]
fn apply32(act: Activation, x: f32) -> f32 {
    match act {
        Activation::Linear => x,
        Activation::Relu => x.max(0.0),
        Activation::LeakyRelu { alpha } => x.max(0.0) + (alpha as f32) * x.min(0.0),
        Activation::Elu { alpha } => x.max(0.0) + (alpha as f32) * (f32x8::exp32(x.min(0.0)) - 1.0),
        Activation::Selu => {
            SELU_SCALE32 * (x.max(0.0) + SELU_ALPHA32 * (f32x8::exp32(x.min(0.0)) - 1.0))
        }
        Activation::Sigmoid => 1.0 / (1.0 + f32x8::exp32(-x)),
        Activation::Tanh => x.tanh(),
        Activation::Softplus => x.max(0.0) + (-x.abs()).exp().ln_1p(),
        Activation::Softsign => x / (1.0 + x.abs()),
        Activation::Softmax => unreachable!("softmax is row-wise; handled in PackedLayer::run"),
    }
}

/// Row-wise f32 softmax with the usual max-shift for stability.
fn softmax32(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = f32x8::exp32(*v - max);
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// A frozen, inference-only compilation of a trained [`Network`].
///
/// Construction ([`InferenceEngine::compile`]) does all per-model work —
/// weight conversion, panel packing, scale selection — so the forward
/// methods are pure compute over immutable state. The engine is `Send +
/// Sync` and is designed to live inside an immutable model snapshot
/// shared across serving threads; per-thread scratch comes from
/// thread-local buffers, so calls are allocation-free in steady state.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    precision: Precision,
    in_dim: usize,
    out_dim: usize,
    /// Frozen copy of the source network: the f64 forward path, and the
    /// reference the reduced-precision gate compares against.
    net: Network,
    /// Packed layers; empty in [`Precision::F64`] mode.
    packed: Vec<PackedLayer>,
}

impl InferenceEngine {
    /// Compiles `net` for `precision`. Weight conversion and packing
    /// happen here, once; the per-layer cost is one pass over each
    /// weight matrix.
    pub fn compile(net: &Network, precision: Precision) -> Self {
        let mut frozen = net.clone();
        frozen.clear_caches();
        let packed = match precision {
            Precision::F64 => Vec::new(),
            Precision::F32 => net
                .layers()
                .iter()
                .map(|l| PackedLayer {
                    weights: PackedF32::pack(l.weights()),
                    bias: l.bias().as_slice().iter().map(|&v| v as f32).collect(),
                    scale: 1.0,
                    activation: l.activation(),
                })
                .collect(),
            Precision::Bf16 => net
                .layers()
                .iter()
                .map(|l| {
                    let max_abs = l
                        .weights()
                        .as_slice()
                        .iter()
                        .fold(0.0f64, |m, &v| m.max(v.abs()));
                    // Power-of-two scale covering the layer's dynamic
                    // range: exact to divide by, exact to multiply back.
                    let scale = if max_abs > 0.0 {
                        2.0f64.powi(max_abs.log2().ceil() as i32)
                    } else {
                        1.0
                    };
                    PackedLayer {
                        weights: PackedF32::pack_with(l.weights(), |v| {
                            f32x8::bf16_truncate((v / scale) as f32)
                        }),
                        bias: l
                            .bias()
                            .as_slice()
                            .iter()
                            .map(|&v| f32x8::bf16_truncate(v as f32))
                            .collect(),
                        scale: scale as f32,
                        activation: l.activation(),
                    }
                })
                .collect(),
        };
        Self {
            precision,
            in_dim: net.in_dim(),
            out_dim: net.out_dim(),
            net: frozen,
            packed,
        }
    }

    /// The engine's numeric mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Batched forward pass: `x` is `(rows × in_dim)`; `out` receives
    /// `rows × out_dim` values in row-major order. Allocation-free in
    /// steady state (thread-local scratch, `out` reuses its capacity).
    pub fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        assert_eq!(x.cols(), self.in_dim, "engine input width");
        if self.precision == Precision::F64 || self.packed.is_empty() {
            Workspace::with_thread_local(&self.net, |ws| {
                let y = self.net.predict_into(x, ws);
                out.clear();
                out.extend_from_slice(y.as_slice());
            });
            return;
        }
        let rows = x.rows();
        SCRATCH.with(|cell| {
            let (a, b) = &mut *cell.borrow_mut();
            a.clear();
            a.extend(x.as_slice().iter().map(|&v| v as f32));
            for layer in &self.packed {
                b.resize(rows * layer.out_dim(), 0.0);
                layer.run(a, rows, b);
                std::mem::swap(a, b);
            }
            out.clear();
            out.extend(a.iter().map(|&v| f64::from(v)));
        });
    }

    /// Batched forward pass returning a fresh vector (test convenience).
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(x, &mut out);
        out
    }

    /// Single-sample forward pass through the same batched kernels with
    /// `rows = 1` — per-row accumulation chains are independent, so this
    /// is bitwise-identical to the corresponding row of a batched call
    /// in every precision mode.
    pub fn predict_one_into(&self, features: &[f64], out: &mut Vec<f64>) {
        assert_eq!(features.len(), self.in_dim, "engine input width");
        if self.precision == Precision::F64 || self.packed.is_empty() {
            out.clear();
            out.extend(self.net.predict_one(features));
            return;
        }
        SCRATCH.with(|cell| {
            let (a, b) = &mut *cell.borrow_mut();
            a.clear();
            a.extend(features.iter().map(|&v| v as f32));
            for layer in &self.packed {
                b.resize(layer.out_dim(), 0.0);
                layer.run(a, 1, b);
                std::mem::swap(a, b);
            }
            out.clear();
            out.extend(a.iter().map(|&v| f64::from(v)));
        });
    }
}

thread_local! {
    /// Ping-pong activation buffers for the f32 layer chain.
    static SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::reference;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_net(seed: u64) -> Network {
        NetworkBuilder::new(3)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .hidden(64, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(seed)
            .build()
    }

    /// The 61-state sweep grid at fixed activity factors: one row per
    /// normalized frequency, mirroring `core`'s feature layout.
    fn grid61(fp: f64, dram: f64) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..61)
            .map(|i| vec![fp, dram, (510.0 + 15.0 * i as f64) / 1410.0])
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn assert_bounded(got: &[f64], want: &[f64], atol: f64, rtol: f64, what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = atol + rtol * w.abs();
            assert!(
                (g - w).abs() <= tol,
                "{what}[{i}]: engine {g} vs reference {w} (tol {tol})"
            );
        }
    }

    #[test]
    fn precision_parse_and_name_round_trip() {
        for p in [Precision::F64, Precision::F32, Precision::Bf16] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("F32"), Some(Precision::F32));
        assert_eq!(Precision::parse("fp8"), None);
        assert_eq!(Precision::F64.code(), 0);
        assert_eq!(Precision::Bf16.code(), 2);
    }

    #[test]
    fn f64_engine_is_bitwise_identical_to_reference() {
        let net = paper_net(21);
        let engine = InferenceEngine::compile(&net, Precision::F64);
        let x = grid61(0.8, 0.3);
        let want = reference::predict(&net, &x);
        assert_eq!(engine.predict(&x), want.as_slice());
    }

    #[test]
    fn predict_one_matches_batch_row_in_every_mode() {
        let net = paper_net(4);
        let x = grid61(0.5, 0.9);
        for p in [Precision::F64, Precision::F32, Precision::Bf16] {
            let engine = InferenceEngine::compile(&net, p);
            let batch = engine.predict(&x);
            let mut one = Vec::new();
            for r in [0usize, 7, 60] {
                engine.predict_one_into(x.row(r), &mut one);
                // Exact: per-row accumulation chains are independent of
                // the batch blocking, in f32/bf16 just as in f64.
                assert_eq!(one.as_slice(), &batch[r..r + 1], "mode {p} row {r}");
            }
        }
    }

    #[test]
    fn selu_edge_inputs_stay_finite_and_close() {
        // Deep negatives saturate SELU at -scale·alpha; deep positives are
        // linear. The f32 engine must agree within the documented bound
        // even at the extremes (exp32 saturates instead of under/overflow).
        let net = NetworkBuilder::new(2)
            .hidden(8, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(9)
            .build();
        let engine = InferenceEngine::compile(&net, Precision::F32);
        let rows = [
            vec![0.0, 0.0],
            vec![-0.0, 1e-30],
            vec![-100.0, 100.0],
            vec![-1e4, -1e-4],
            vec![50.0, -50.0],
        ];
        let x = Matrix::from_rows(&rows).unwrap();
        let want = reference::predict(&net, &x);
        let got = engine.predict(&x);
        assert!(got.iter().all(|v| v.is_finite()));
        // Magnitude-relative bound: inputs of order 1e4 scale the
        // f32-representation error accordingly.
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() <= 1e-4 + 1e-4 * w.abs().max(1e4));
        }
    }

    #[test]
    fn bf16_records_power_of_two_scales() {
        let net = paper_net(33);
        let engine = InferenceEngine::compile(&net, Precision::Bf16);
        for layer in &engine.packed {
            let exp = layer.scale.log2();
            assert_eq!(
                exp,
                exp.round(),
                "scale {} is not a power of two",
                layer.scale
            );
        }
    }

    proptest! {
        /// F64 mode: bitwise equality with the allocating reference on
        /// random paper-topology networks and random grids.
        #[test]
        fn f64_parity_is_bitwise(seed in 0u64..500, fp in 0.0f64..1.0, dram in 0.0f64..1.0) {
            let net = paper_net(seed);
            let engine = InferenceEngine::compile(&net, Precision::F64);
            let x = grid61(fp, dram);
            let want = reference::predict(&net, &x);
            prop_assert_eq!(engine.predict(&x), want.as_slice().to_vec());
        }

        /// F32 mode: documented bound |Δ| ≤ 1e-4 + 1e-4·|ref| on the
        /// 61-state grid for LeCun-initialized paper networks.
        #[test]
        fn f32_parity_within_documented_bound(seed in 0u64..500, fp in 0.0f64..1.0, dram in 0.0f64..1.0) {
            let net = paper_net(seed);
            let engine = InferenceEngine::compile(&net, Precision::F32);
            let x = grid61(fp, dram);
            let want = reference::predict(&net, &x);
            assert_bounded(&engine.predict(&x), want.as_slice(), 1e-4, 1e-4, "f32");
        }

        /// Bf16 mode: documented bound |Δ| ≤ 5e-2 + 5e-2·|ref|.
        #[test]
        fn bf16_parity_within_documented_bound(seed in 0u64..500, fp in 0.0f64..1.0, dram in 0.0f64..1.0) {
            let net = paper_net(seed);
            let engine = InferenceEngine::compile(&net, Precision::Bf16);
            let x = grid61(fp, dram);
            let want = reference::predict(&net, &x);
            assert_bounded(&engine.predict(&x), want.as_slice(), 5e-2, 5e-2, "bf16");
        }

        /// Mixed activations and odd widths through the packed kernels.
        #[test]
        fn f32_parity_on_mixed_activations(seed in 0u64..200) {
            let net = NetworkBuilder::new(4)
                .hidden(10, Activation::Tanh)
                .hidden(7, Activation::Relu)
                .hidden(5, Activation::Sigmoid)
                .output(3, Activation::Linear)
                .seed(seed)
                .build();
            let engine = InferenceEngine::compile(&net, Precision::F32);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let x = tensor::init::uniform(9, 4, -1.0, 1.0, &mut rng);
            let want = reference::predict(&net, &x);
            assert_bounded(&engine.predict(&x), want.as_slice(), 1e-4, 1e-4, "mixed");
        }
    }
}
