//! Deterministic data-parallel training engine: fixed logical shards,
//! per-shard workspaces, and a fixed-shape pairwise gradient reduction.
//!
//! # Why results are bitwise identical for any thread count
//!
//! Floating-point addition is not associative, so "sum the per-row
//! gradients in whatever order the threads finish" would make training
//! results depend on scheduling. This engine removes every source of
//! order dependence from the specification itself:
//!
//! 1. **Fixed shards.** Each mini-batch is split into `TrainConfig::shards`
//!    contiguous *logical* shards by [`shard_bounds`] — a pure function of
//!    the batch's row count and the shard count. Thread count never enters.
//! 2. **Raw per-shard sums.** Every shard computes its forward pass, loss
//!    partial and *unscaled* parameter-gradient sums in its own
//!    [`crate::workspace::Workspace`] (zero-alloc per worker, as in the
//!    serial engine). No cross-shard data is touched, so shards can run
//!    on any thread, in any order.
//! 3. **Pairwise tree reduction.** The shard partials are folded with
//!    [`tensor::reduce::tree_combine`], whose combine sequence depends
//!    only on the shard count. Whether one thread executes the whole tree
//!    or the batch ran on eight workers, the same floating-point
//!    additions happen in the same order.
//! 4. **Root-scaled update.** The combined sums are scaled by `1/batch`
//!    once, then the optimizer applies its update — all on one thread.
//!
//! Worker threads are spawned once per fit (`std::thread::scope`) and
//! coordinate per batch over rendezvous channels; the thread-count-1 case
//! runs the identical code with zero workers, which is also the
//! configuration the counting-allocator proof in `tests/zero_alloc.rs`
//! exercises. `reference::fit` implements the same specification naively
//! (fresh allocations, explicit transposes), and the whole-fit parity
//! proptests in `train.rs` pin the two together bitwise.

use crate::loss::Loss;
use crate::network::Network;
use crate::workspace::Workspace;
use parking_lot::{Mutex, MutexGuard, RwLock};
use tensor::{ops, reduce, Matrix};

/// Default number of logical gradient shards per mini-batch.
///
/// Eight shards of a 64-row paper batch give 8-row shards — enough
/// parallelism for the core counts this project targets while keeping
/// per-shard matmuls above trivial size.
pub const DEFAULT_SHARDS: usize = 8;

/// Resolves the worker-thread count for a fit.
///
/// `requested > 0` wins; `0` means auto: the `DVFS_THREADS` environment
/// variable if set to a positive integer, otherwise the machine's
/// available parallelism. The result is clamped to `[1, shards]` — more
/// threads than shards cannot help, and the bitwise guarantee makes any
/// value safe.
pub fn resolve_threads(requested: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    let threads = if requested > 0 {
        requested
    } else {
        match std::env::var("DVFS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    };
    threads.clamp(1, shards)
}

/// Row range `(start, len)` of shard `shard` in a batch of `rows` rows
/// split into `shards` contiguous shards.
///
/// The first `rows % shards` shards get one extra row; with fewer rows
/// than shards the trailing shards are empty. Pure in `(rows, shards,
/// shard)` — the partition is identical no matter how many threads
/// execute it.
pub fn shard_bounds(rows: usize, shards: usize, shard: usize) -> (usize, usize) {
    let shards = shards.max(1);
    debug_assert!(shard < shards);
    let base = rows / shards;
    let rem = rows % shards;
    let start = shard * base + shard.min(rem);
    let len = base + usize::from(shard < rem);
    (start, len)
}

/// Shard range `start..end` owned by participant `p` of `participants`
/// (participant 0 is the coordinating thread). Same balanced contiguous
/// partition as [`shard_bounds`], applied to shard indices.
pub(crate) fn participant_range(
    shards: usize,
    participants: usize,
    p: usize,
) -> std::ops::Range<usize> {
    let (start, len) = shard_bounds(shards, participants.max(1), p);
    start..start + len
}

/// One shard's private buffers: a workspace plus gather targets for the
/// shard's feature/target rows, and the shard's raw loss partial.
pub(crate) struct ShardSlot {
    pub(crate) ws: Workspace,
    pub(crate) xb: Matrix,
    pub(crate) yb: Matrix,
    pub(crate) loss_total: f64,
}

/// A pool of per-shard workspaces, one mutex-guarded slot per logical
/// shard. Each slot is only ever touched by the one participant that
/// owns the shard during a step, and by the coordinator during
/// reduction; the mutexes exist to prove that to the borrow checker
/// without `unsafe`, and are uncontended by construction.
pub(crate) struct WorkspacePool {
    pub(crate) slots: Vec<Mutex<ShardSlot>>,
}

impl WorkspacePool {
    /// Builds `shards` slots sized for `net` with capacity for the
    /// largest shard (`rows` rows), so steady-state steps never resize.
    pub(crate) fn new(net: &Network, shards: usize, rows: usize) -> Self {
        let slots = (0..shards.max(1))
            .map(|_| {
                Mutex::new(ShardSlot {
                    ws: Workspace::for_network(net, rows),
                    xb: Matrix::zeros(rows, net.in_dim()),
                    yb: Matrix::zeros(rows, net.out_dim()),
                    loss_total: 0.0,
                })
            })
            .collect();
        Self { slots }
    }

    /// Folds the first `n_eff` slots' gradients and loss partials into
    /// slot 0 with the fixed pairwise tree, returning the combined raw
    /// loss total. Called from the coordinator only, after all
    /// participants finished the step; empty trailing shards (batch
    /// smaller than the shard count) are excluded so they can never
    /// perturb the sum.
    pub(crate) fn reduce(&self, n_eff: usize) -> f64 {
        reduce::tree_combine(n_eff, |dst, src| {
            debug_assert!(dst < src, "tree folds right slots into left");
            let mut d = self.slots[dst].lock();
            let s = self.slots[src].lock();
            d.ws.combine_grads_from(&s.ws);
            d.loss_total += s.loss_total;
        });
        self.slots[0].lock().loss_total
    }

    /// Locks slot 0 (the reduction root) for the optimizer update.
    pub(crate) fn slot0(&self) -> MutexGuard<'_, ShardSlot> {
        self.slots[0].lock()
    }
}

/// Descriptor of the batch currently being processed: a window into the
/// epoch's shuffled row order.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StepDesc {
    pub(crate) start: usize,
    pub(crate) len: usize,
}

/// State shared between the coordinator and its workers for one fit.
///
/// Everything is behind locks so workers can borrow it immutably across
/// the whole fit while the coordinator mutates the network (updates) and
/// the row order (per-epoch shuffle) between steps. The rendezvous
/// channels in `Trainer::fit` guarantee workers only read while the
/// coordinator is parked waiting for them, so no lock is ever contended.
pub(crate) struct Shared<'a> {
    pub(crate) net: &'a RwLock<Network>,
    pub(crate) order: &'a RwLock<Vec<usize>>,
    pub(crate) step: &'a Mutex<StepDesc>,
    pub(crate) pool: &'a WorkspacePool,
    pub(crate) x: &'a Matrix,
    pub(crate) y: &'a Matrix,
    pub(crate) loss: Loss,
    pub(crate) shards: usize,
    pub(crate) participants: usize,
}

impl Shared<'_> {
    /// Runs participant `p`'s share of the current step: for each owned
    /// non-empty shard, gather the shard's rows, forward, and leave the
    /// raw gradient sums and loss partial in the shard's slot.
    /// Allocation-free in steady state.
    pub(crate) fn run_participant(&self, p: usize) {
        let net = self.net.read();
        let order = self.order.read();
        let desc = *self.step.lock();
        let chunk = &order[desc.start..desc.start + desc.len];
        for s in participant_range(self.shards, self.participants, p) {
            let (s_start, s_len) = shard_bounds(desc.len, self.shards, s);
            if s_len == 0 {
                continue;
            }
            let mut slot = self.pool.slots[s].lock();
            let ShardSlot {
                ws,
                xb,
                yb,
                loss_total,
            } = &mut *slot;
            let idx = &chunk[s_start..s_start + s_len];
            ops::gather_rows_into(self.x, idx, xb);
            ops::gather_rows_into(self.y, idx, yb);
            net.forward_ws(xb, ws);
            *loss_total = net.shard_grads_ws(yb, self.loss, ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_partition_is_contiguous_and_complete() {
        for rows in 0..40 {
            for shards in 1..10 {
                let mut next = 0;
                let mut total = 0;
                for s in 0..shards {
                    let (start, len) = shard_bounds(rows, shards, s);
                    assert_eq!(start, next, "rows={rows} shards={shards} s={s}");
                    next = start + len;
                    total += len;
                }
                assert_eq!(total, rows);
                // Balanced: lengths differ by at most one, larger first.
                let lens: Vec<usize> = (0..shards)
                    .map(|s| shard_bounds(rows, shards, s).1)
                    .collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1);
                assert!(lens.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn participant_ranges_cover_all_shards_exactly_once() {
        for shards in 1..12 {
            for participants in 1..12 {
                let mut seen = vec![0usize; shards];
                for p in 0..participants {
                    for s in participant_range(shards, participants, p) {
                        seen[s] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "shards={shards} p={participants}"
                );
            }
        }
    }

    #[test]
    fn resolve_threads_clamps_to_shards() {
        assert_eq!(resolve_threads(4, 8), 4);
        assert_eq!(resolve_threads(16, 8), 8);
        assert_eq!(resolve_threads(1, 8), 1);
        // Explicit requests beat the environment and are never zero.
        assert_eq!(resolve_threads(3, 2), 2);
        assert!(resolve_threads(0, 8) >= 1);
    }
}
