//! A feedforward network: a stack of dense layers with backprop.

use crate::activation::Activation;
use crate::layer::Dense;
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use tensor::Matrix;

/// A feedforward neural network (multi-layer perceptron).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
    /// Workspace backing the allocating `forward`/`backward` wrappers, kept
    /// across calls so repeated steps stop allocating. Never serialized.
    #[serde(skip)]
    scratch: Option<Box<Workspace>>,
}

impl Network {
    /// Builds a network from explicit layers.
    ///
    /// # Panics
    /// Panics if consecutive layer dimensions do not chain.
    pub fn new(layers: Vec<Dense>) -> Self {
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim(),
                w[1].in_dim(),
                "layer output {} does not feed next layer input {}",
                w[0].out_dim(),
                w[1].in_dim()
            );
        }
        Self {
            layers,
            scratch: None,
        }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access for the in-crate reference implementation.
    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::in_dim)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::out_dim)
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights().len() + l.bias().len())
            .sum()
    }

    /// Inference forward pass (no caches touched).
    ///
    /// Runs through this thread's cached [`Workspace`], so repeated calls
    /// from the same thread are allocation-free apart from the returned
    /// output matrix.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        if self.layers.is_empty() {
            return x.clone();
        }
        Workspace::with_thread_local(self, |ws| self.predict_into(x, ws).clone())
    }

    /// Inference forward pass into a caller-provided workspace, returning a
    /// borrow of the output buffer. Fully allocation-free once the
    /// workspace has warmed up. Bitwise-identical to [`Network::predict`].
    pub fn predict_into<'w>(&self, x: &Matrix, ws: &'w mut Workspace) -> &'w Matrix {
        ws.ensure(self, x.rows());
        if self.layers.is_empty() {
            ws.input.resize_to(x.rows(), x.cols());
            ws.input.copy_from(x);
            return &ws.input;
        }
        for i in 0..self.layers.len() {
            let (done, rest) = ws.layers.split_at_mut(i);
            let cur = &mut rest[0];
            let input_i: &Matrix = if i == 0 { x } else { &done[i - 1].out };
            self.layers[i].apply_into(input_i, &mut cur.out);
        }
        ws.output()
    }

    /// Convenience: predict a single feature vector, returning the outputs.
    ///
    /// Skips the row-vector `Matrix` round-trip entirely: the sample flows
    /// through a pair of thread-local `Vec<f64>` buffers via `vecmat`, so
    /// the only allocation in steady state is the returned vector.
    pub fn predict_one(&self, features: &[f64]) -> Vec<f64> {
        if self.layers.is_empty() {
            return features.to_vec();
        }
        thread_local! {
            static BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
        }
        BUFS.with(|cell| {
            let (a, b) = &mut *cell.borrow_mut();
            a.clear();
            a.extend_from_slice(features);
            for l in &self.layers {
                l.apply_vec(a, b);
                std::mem::swap(a, b);
            }
            a.clone()
        })
    }

    /// Training forward pass: caches per-layer state for [`Network::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(Workspace::for_network(self, x.rows())));
        self.forward_ws(x, &mut ws);
        let out = ws.output().clone();
        self.scratch = Some(ws);
        out
    }

    /// Training forward pass into a caller-provided workspace. The input is
    /// copied into the workspace and every layer's pre-activation and
    /// activation are retained for [`Network::backward_ws`]. Allocation-free
    /// once the workspace has warmed up; bitwise-identical to
    /// [`Network::forward`].
    pub fn forward_ws(&self, x: &Matrix, ws: &mut Workspace) {
        ws.ensure(self, x.rows());
        ws.input.resize_to(x.rows(), x.cols());
        ws.input.copy_from(x);
        for i in 0..self.layers.len() {
            let (done, rest) = ws.layers.split_at_mut(i);
            let cur = &mut rest[0];
            let input_i: &Matrix = if i == 0 { &ws.input } else { &done[i - 1].out };
            self.layers[i].forward_into(input_i, &mut cur.pre, &mut cur.out);
        }
    }

    /// Runs backprop from `loss` at (`pred`, `target`) and applies one
    /// optimizer step to every parameter tensor. Returns the batch loss.
    ///
    /// Must follow a [`Network::forward`] call on the same batch.
    ///
    /// # Panics
    /// Panics if called before [`Network::forward`].
    pub fn backward(
        &mut self,
        pred: &Matrix,
        target: &Matrix,
        loss: Loss,
        opt: &mut Optimizer,
    ) -> f64 {
        let mut ws = self.scratch.take().expect("backward called before forward");
        let value = loss.value(pred, target);
        self.seed_loss_gradient(pred, target, loss, &mut ws);
        self.propagate_and_update(opt, &mut ws);
        self.scratch = Some(ws);
        value
    }

    /// Workspace backprop: consumes the forward state left in `ws` by
    /// [`Network::forward_ws`], seeds the loss gradient from the workspace
    /// output, applies one optimizer step to every parameter, and returns
    /// the batch loss. Allocation-free once the workspace has warmed up;
    /// bitwise-identical to [`Network::backward`].
    pub fn backward_ws(
        &mut self,
        target: &Matrix,
        loss: Loss,
        opt: &mut Optimizer,
        ws: &mut Workspace,
    ) -> f64 {
        let value = loss.value(ws.output(), target);
        // Split the borrow: gradient reads the output buffer while writing
        // the (disjoint) loss-gradient buffer.
        let Workspace {
            layers,
            input,
            loss_grad,
            ..
        } = ws;
        let pred: &Matrix = layers.last().map_or(&*input, |lw| &lw.out);
        loss.gradient_into(pred, target, loss_grad);
        let batch = pred.rows().max(1) as f64;
        for v in loss_grad.as_mut_slice() {
            *v *= batch;
        }
        self.propagate_and_update(opt, ws);
        value
    }

    /// Writes the batch-compensated loss gradient for `pred` into the
    /// workspace seed buffer.
    ///
    /// `Loss::gradient` averages over elements; layer backward averages
    /// over rows again. Compensate so the effective gradient is the
    /// gradient of the *mean over elements* exactly once.
    fn seed_loss_gradient(&self, pred: &Matrix, target: &Matrix, loss: Loss, ws: &mut Workspace) {
        loss.gradient_into(pred, target, &mut ws.loss_grad);
        let batch = pred.rows().max(1) as f64;
        for v in ws.loss_grad.as_mut_slice() {
            *v *= batch;
        }
    }

    /// Backprop from the seeded loss gradient in `ws` and apply one
    /// optimizer update per parameter tensor. All layer gradients are
    /// computed (against pre-update weights) before any update is applied,
    /// matching the original allocating implementation update-for-update.
    fn propagate_and_update(&mut self, opt: &mut Optimizer, ws: &mut Workspace) {
        opt.begin_step();
        let n = self.layers.len();
        let Workspace {
            layers: lws,
            input,
            loss_grad,
            ..
        } = ws;
        for i in (0..n).rev() {
            let (left, right) = lws.split_at_mut(i);
            let (cur, after) = right.split_first_mut().expect("layer workspace exists");
            let upstream: &Matrix = if i == n - 1 {
                loss_grad
            } else {
                &after[0].down
            };
            let input_i: &Matrix = if i == 0 { input } else { &left[i - 1].out };
            let down = if i == 0 { None } else { Some(&mut cur.down) };
            self.layers[i].backward_into(
                input_i,
                &cur.pre,
                &cur.out,
                upstream,
                &mut cur.delta,
                &mut cur.grad_w,
                &mut cur.grad_b,
                down,
            );
        }
        for (i, (l, lw)) in self.layers.iter_mut().zip(lws.iter()).enumerate() {
            opt.update(2 * i, l.weights_mut(), &lw.grad_w);
            opt.update(2 * i + 1, l.bias_mut(), &lw.grad_b);
        }
    }

    /// Sharded backprop: computes the *raw* (unscaled) parameter-gradient
    /// sums and loss partial for one shard of a mini-batch, leaving them
    /// in `ws` without touching any parameter. Must follow a
    /// [`Network::forward_ws`] call on the same shard and workspace.
    ///
    /// This is the per-worker kernel of the deterministic data-parallel
    /// engine (see [`crate::engine`]): each shard's sums are later folded
    /// with [`Workspace::combine_grads_from`] along a fixed pairwise tree
    /// and applied once via [`Network::apply_combined_grads`]. Returns the
    /// shard's raw loss sum (no normalization). Allocation-free once the
    /// workspace has warmed up.
    pub fn shard_grads_ws(&self, target: &Matrix, loss: Loss, ws: &mut Workspace) -> f64 {
        let n = self.layers.len();
        let Workspace {
            layers: lws,
            input,
            loss_grad,
            ..
        } = ws;
        let pred: &Matrix = lws.last().map_or(&*input, |lw| &lw.out);
        let total = loss.total(pred, target);
        loss.shard_gradient_into(pred, target, loss_grad);
        for i in (0..n).rev() {
            let (left, right) = lws.split_at_mut(i);
            let (cur, after) = right.split_first_mut().expect("layer workspace exists");
            let upstream: &Matrix = if i == n - 1 {
                loss_grad
            } else {
                &after[0].down
            };
            let input_i: &Matrix = if i == 0 { input } else { &left[i - 1].out };
            let down = if i == 0 { None } else { Some(&mut cur.down) };
            self.layers[i].backward_sums_into(
                input_i,
                &cur.pre,
                &cur.out,
                upstream,
                &mut cur.delta,
                &mut cur.grad_w,
                &mut cur.grad_b,
                down,
            );
        }
        total
    }

    /// Applies one optimizer step from tree-combined raw gradient sums:
    /// scales every layer's `grad_w`/`grad_b` in `ws` by `1/batch_rows`
    /// (the root scaling of the shard reduction — exactly one division
    /// per element for the whole batch), then updates every parameter
    /// with the usual slot ids. `ws` is the reduction root produced by
    /// folding all shard workspaces together.
    pub fn apply_combined_grads(
        &mut self,
        opt: &mut Optimizer,
        ws: &mut Workspace,
        batch_rows: usize,
    ) {
        let inv = 1.0 / batch_rows.max(1) as f64;
        for lw in ws.layers.iter_mut() {
            tensor::ops::scale_in_place(&mut lw.grad_w, inv);
            tensor::ops::scale_in_place(&mut lw.grad_b, inv);
        }
        opt.begin_step();
        for (i, (l, lw)) in self.layers.iter_mut().zip(ws.layers.iter()).enumerate() {
            opt.update(2 * i, l.weights_mut(), &lw.grad_w);
            opt.update(2 * i + 1, l.bias_mut(), &lw.grad_b);
        }
    }

    /// Clears all cached forward state (per-layer caches and the wrapper
    /// workspace).
    pub fn clear_caches(&mut self) {
        for l in &mut self.layers {
            l.clear_cache();
        }
        self.scratch = None;
    }

    /// True while any layer cache or the wrapper workspace is populated.
    pub fn has_cached_state(&self) -> bool {
        self.scratch.is_some() || self.layers.iter().any(Dense::has_cache)
    }

    /// Serializes the network to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("network serializes")
    }

    /// Deserializes a network from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Fluent builder for [`Network`] with seeded initialization.
///
/// See the crate-level docs for the paper's 3x64 SELU configuration.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    in_dim: usize,
    specs: Vec<(usize, Activation)>,
    seed: u64,
}

impl NetworkBuilder {
    /// Starts a builder for a network with `in_dim` input features.
    pub fn new(in_dim: usize) -> Self {
        Self {
            in_dim,
            specs: Vec::new(),
            seed: 0,
        }
    }

    /// Appends a hidden layer of `width` neurons.
    pub fn hidden(mut self, width: usize, activation: Activation) -> Self {
        self.specs.push((width, activation));
        self
    }

    /// Appends the output layer (call last).
    pub fn output(mut self, width: usize, activation: Activation) -> Self {
        self.specs.push((width, activation));
        self
    }

    /// Sets the RNG seed used for weight initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Initializes the network.
    ///
    /// # Panics
    /// Panics if no layers were specified.
    pub fn build(self) -> Network {
        assert!(!self.specs.is_empty(), "network needs at least one layer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut fan_in = self.in_dim;
        for (width, act) in self.specs {
            layers.push(Dense::init(fan_in, width, act, &mut rng));
            fan_in = width;
        }
        Network::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerKind;

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(2)
            .hidden(8, Activation::Selu)
            .hidden(8, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(seed)
            .build()
    }

    #[test]
    fn builder_chains_dimensions() {
        let net = tiny_net(0);
        assert_eq!(net.in_dim(), 2);
        assert_eq!(net.out_dim(), 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.num_params(), 2 * 8 + 8 + 8 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = tiny_net(7);
        let b = tiny_net(7);
        let c = tiny_net(8);
        let x = Matrix::row_vector(&[0.3, -0.4]);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_ne!(a.predict(&x), c.predict(&x));
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn mismatched_layers_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let l1 = Dense::init(2, 4, Activation::Relu, &mut rng);
        let l2 = Dense::init(5, 1, Activation::Linear, &mut rng);
        let _ = Network::new(vec![l1, l2]);
    }

    /// End-to-end: a small net must fit y = x0 + 2*x1 almost exactly.
    #[test]
    fn learns_linear_function() {
        let mut net = tiny_net(1);
        let mut opt = OptimizerKind::Adam {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
        .build();
        let mut rng = StdRng::seed_from_u64(2);
        let x = tensor::init::uniform(256, 2, -1.0, 1.0, &mut rng);
        let y_vals: Vec<f64> = x.rows_iter().map(|r| r[0] + 2.0 * r[1]).collect();
        let y = Matrix::col_vector(&y_vals);

        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let pred = net.forward(&x);
            last = net.backward(&pred, &y, Loss::Mse, &mut opt);
        }
        assert!(last < 1e-3, "final loss {last}");
    }

    /// SELU + RMSprop (the paper's recipe) learns a nonlinear target.
    #[test]
    fn learns_nonlinear_function_with_paper_recipe() {
        let mut net = NetworkBuilder::new(2)
            .hidden(16, Activation::Selu)
            .hidden(16, Activation::Selu)
            .output(1, Activation::Linear)
            .seed(3)
            .build();
        let mut opt = OptimizerKind::paper_default().build();
        let mut rng = StdRng::seed_from_u64(4);
        let x = tensor::init::uniform(512, 2, -1.0, 1.0, &mut rng);
        let y_vals: Vec<f64> = x
            .rows_iter()
            .map(|r| (r[0] * r[1]).tanh() + 0.5 * r[0])
            .collect();
        let y = Matrix::col_vector(&y_vals);

        let first = {
            let pred = net.predict(&x);
            Loss::Mse.value(&pred, &y)
        };
        let mut last = f64::INFINITY;
        for _ in 0..600 {
            let pred = net.forward(&x);
            last = net.backward(&pred, &y, Loss::Mse, &mut opt);
        }
        assert!(last < first / 10.0, "loss went {first} -> {last}");
    }

    #[test]
    fn predict_one_matches_predict() {
        let net = tiny_net(5);
        let f = [0.25, -0.75];
        let a = net.predict_one(&f);
        let b = net.predict(&Matrix::row_vector(&f));
        assert_eq!(a, b.into_vec());
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let net = tiny_net(6);
        let x = Matrix::row_vector(&[0.1, 0.9]);
        let json = net.to_json();
        let back = Network::from_json(&json).unwrap();
        assert_eq!(net.predict(&x), back.predict(&x));
    }
}
