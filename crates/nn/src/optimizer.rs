//! First-order optimizers.
//!
//! The paper swept Adam, Adamax, Nadam, RMSprop and AdaDelta before
//! selecting RMSprop; all five (plus plain SGD with momentum) are
//! implemented so the ablation benches can reproduce the sweep.
//!
//! Optimizers keep per-parameter-tensor state (first/second moment
//! accumulators) keyed by a caller-supplied slot id — the network assigns
//! one slot per weight matrix and one per bias vector.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tensor::Matrix;

/// Serializable optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (0 disables momentum).
        momentum: f64,
    },
    /// RMSprop (Tieleman & Hinton 2012) — the paper's optimizer.
    RmsProp {
        /// Learning rate.
        lr: f64,
        /// Decay rate of the squared-gradient moving average.
        rho: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
    /// Adam (Kingma & Ba 2015).
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
    /// Adamax — Adam with an infinity-norm second moment.
    Adamax {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Infinity-norm decay.
        beta2: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
    /// Nadam — Adam with Nesterov momentum.
    Nadam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
    /// AdaDelta (Zeiler 2012); learning-rate free apart from `lr` scaling.
    AdaDelta {
        /// Output scaling (1.0 in the original formulation).
        lr: f64,
        /// Accumulator decay.
        rho: f64,
        /// Numerical-stability epsilon.
        eps: f64,
    },
}

impl OptimizerKind {
    /// The paper's RMSprop configuration with Keras-default hyperparameters.
    pub fn paper_default() -> Self {
        OptimizerKind::RmsProp {
            lr: 1e-3,
            rho: 0.9,
            eps: 1e-7,
        }
    }

    /// Instantiates the stateful optimizer.
    pub fn build(self) -> Optimizer {
        Optimizer {
            kind: self,
            state: HashMap::new(),
            step: 0,
        }
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd { .. } => "sgd",
            OptimizerKind::RmsProp { .. } => "rmsprop",
            OptimizerKind::Adam { .. } => "adam",
            OptimizerKind::Adamax { .. } => "adamax",
            OptimizerKind::Nadam { .. } => "nadam",
            OptimizerKind::AdaDelta { .. } => "adadelta",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SlotState {
    /// First moment / momentum / squared-grad accumulator (by algorithm).
    m: Vec<f64>,
    /// Second moment / squared-update accumulator (by algorithm).
    v: Vec<f64>,
}

/// Stateful optimizer that applies updates to parameter tensors.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    state: HashMap<usize, SlotState>,
    step: u64,
}

impl Optimizer {
    /// The configuration this optimizer was built from.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Number of completed optimization steps (batches).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Advances the global step counter. Call once per batch, before
    /// updating the slots of that batch (Adam-family bias correction uses
    /// the step count).
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Applies one update to the parameter tensor registered under `slot`.
    ///
    /// # Panics
    /// Panics if `params` and `grads` shapes differ, or if a slot is reused
    /// with a different tensor size.
    pub fn update(&mut self, slot: usize, params: &mut Matrix, grads: &Matrix) {
        assert_eq!(params.shape(), grads.shape(), "param/grad shape mismatch");
        let n = params.len();
        let st = self.state.entry(slot).or_default();
        if st.m.is_empty() {
            st.m = vec![0.0; n];
            st.v = vec![0.0; n];
        }
        assert_eq!(st.m.len(), n, "slot {slot} reused with different size");

        let p = params.as_mut_slice();
        let g = grads.as_slice();
        let t = self.step.max(1) as i32;

        match self.kind {
            OptimizerKind::Sgd { lr, momentum } => {
                for i in 0..n {
                    st.m[i] = momentum * st.m[i] - lr * g[i];
                    p[i] += st.m[i];
                }
            }
            OptimizerKind::RmsProp { lr, rho, eps } => {
                // Iterator form so LLVM can vectorize the sqrt/div pair
                // (both correctly rounded, so SIMD lanes change nothing).
                for ((vi, pi), &gi) in st.v.iter_mut().zip(p.iter_mut()).zip(g) {
                    *vi = rho * *vi + (1.0 - rho) * gi * gi;
                    *pi -= lr * gi / ((*vi).sqrt() + eps);
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                for i in 0..n {
                    st.m[i] = beta1 * st.m[i] + (1.0 - beta1) * g[i];
                    st.v[i] = beta2 * st.v[i] + (1.0 - beta2) * g[i] * g[i];
                    let mhat = st.m[i] / bc1;
                    let vhat = st.v[i] / bc2;
                    p[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
            OptimizerKind::Adamax {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let bc1 = 1.0 - beta1.powi(t);
                for i in 0..n {
                    st.m[i] = beta1 * st.m[i] + (1.0 - beta1) * g[i];
                    st.v[i] = (beta2 * st.v[i]).max(g[i].abs());
                    p[i] -= lr * (st.m[i] / bc1) / (st.v[i] + eps);
                }
            }
            OptimizerKind::Nadam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let bc1 = 1.0 - beta1.powi(t);
                let bc1_next = 1.0 - beta1.powi(t + 1);
                let bc2 = 1.0 - beta2.powi(t);
                for i in 0..n {
                    st.m[i] = beta1 * st.m[i] + (1.0 - beta1) * g[i];
                    st.v[i] = beta2 * st.v[i] + (1.0 - beta2) * g[i] * g[i];
                    let mhat = beta1 * st.m[i] / bc1_next + (1.0 - beta1) * g[i] / bc1;
                    let vhat = st.v[i] / bc2;
                    p[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
            OptimizerKind::AdaDelta { lr, rho, eps } => {
                for i in 0..n {
                    st.v[i] = rho * st.v[i] + (1.0 - rho) * g[i] * g[i];
                    let update = -((st.m[i] + eps).sqrt() / (st.v[i] + eps).sqrt()) * g[i];
                    st.m[i] = rho * st.m[i] + (1.0 - rho) * update * update;
                    p[i] += lr * update;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All optimizers should make progress on a 1-D quadratic f(x) = x².
    #[test]
    fn all_optimizers_descend_quadratic() {
        let kinds = [
            OptimizerKind::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
            OptimizerKind::RmsProp {
                lr: 0.05,
                rho: 0.9,
                eps: 1e-7,
            },
            OptimizerKind::Adam {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            OptimizerKind::Adamax {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            OptimizerKind::Nadam {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            OptimizerKind::AdaDelta {
                lr: 1.0,
                rho: 0.95,
                eps: 1e-6,
            },
        ];
        for kind in kinds {
            let mut opt = kind.build();
            let mut x = Matrix::from_vec(1, 1, vec![5.0]).unwrap();
            // AdaDelta's effective step starts near sqrt(eps) and grows
            // slowly, so the budget is generous for all algorithms.
            for _ in 0..3000 {
                opt.begin_step();
                let g = Matrix::from_vec(1, 1, vec![2.0 * x[(0, 0)]]).unwrap();
                opt.update(0, &mut x, &g);
            }
            assert!(
                x[(0, 0)].abs() < 1.0,
                "{} failed to descend: ended at {}",
                kind.name(),
                x[(0, 0)]
            );
        }
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut opt = OptimizerKind::Sgd {
            lr: 0.5,
            momentum: 0.0,
        }
        .build();
        let mut x = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        opt.begin_step();
        let g = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        opt.update(0, &mut x, &g);
        assert!((x[(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rmsprop_first_step_is_lr_over_sqrt_one_minus_rho() {
        let (lr, rho, eps) = (0.01, 0.9, 0.0);
        let mut opt = OptimizerKind::RmsProp { lr, rho, eps }.build();
        let mut x = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        opt.begin_step();
        let g = Matrix::from_vec(1, 1, vec![3.0]).unwrap();
        opt.update(0, &mut x, &g);
        // v = 0.1 * 9 = 0.9; step = lr * 3 / sqrt(0.9)
        let expect = -lr * 3.0 / (0.9f64).sqrt();
        assert!((x[(0, 0)] - expect).abs() < 1e-12);
    }

    #[test]
    fn slots_keep_independent_state() {
        let mut opt = OptimizerKind::Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
        .build();
        let mut a = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        let mut b = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        opt.begin_step();
        opt.update(0, &mut a, &Matrix::from_vec(1, 1, vec![1.0]).unwrap());
        opt.update(1, &mut b, &Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap());
        // No panic: different sizes in different slots are fine.
        assert!(a[(0, 0)] < 1.0 && b[(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn reusing_slot_with_different_size_panics() {
        let mut opt = OptimizerKind::paper_default().build();
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(1, 2);
        opt.begin_step();
        opt.update(0, &mut a, &Matrix::zeros(1, 1));
        opt.update(0, &mut b, &Matrix::zeros(1, 2));
    }

    #[test]
    fn paper_default_is_rmsprop() {
        assert_eq!(OptimizerKind::paper_default().name(), "rmsprop");
    }
}
