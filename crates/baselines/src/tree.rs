//! CART regression tree (the base learner for RFR and XGBR).

use crate::Regressor;
use tensor::Matrix;

/// A node of the regression tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART regression tree minimizing within-node variance.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required in each leaf.
    pub min_leaf: usize,
    /// Restrict each split search to this many features (for forests);
    /// `None` uses all features.
    pub max_features: Option<usize>,
    /// Seed for the per-split feature subsampling.
    pub feature_seed: u64,
    root: Option<Node>,
}

impl DecisionTree {
    /// A tree with the given depth bound, considering all features.
    pub fn new(max_depth: usize) -> Self {
        Self {
            max_depth,
            min_leaf: 2,
            max_features: None,
            feature_seed: 0,
            root: None,
        }
    }

    fn mean(y: &[f64], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
    }

    fn sse(y: &[f64], idx: &[usize]) -> f64 {
        let m = Self::mean(y, idx);
        idx.iter().map(|&i| (y[i] - m) * (y[i] - m)).sum()
    }

    /// Chooses the candidate features for one split.
    fn candidate_features(&self, d: usize, depth_salt: u64) -> Vec<usize> {
        match self.max_features {
            None => (0..d).collect(),
            Some(k) if k >= d => (0..d).collect(),
            Some(k) => {
                // Deterministic Fisher-Yates prefix on a seeded permutation.
                let mut order: Vec<usize> = (0..d).collect();
                let mut state = self
                    .feature_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(depth_salt);
                for i in (1..d).rev() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let j = (state % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order.truncate(k);
                order
            }
        }
    }

    fn build(&self, x: &Matrix, y: &[f64], idx: &[usize], depth: usize, salt: u64) -> Node {
        let parent_sse = Self::sse(y, idx);
        if depth >= self.max_depth || idx.len() < 2 * self.min_leaf || parent_sse <= 1e-12 {
            return Node::Leaf {
                value: Self::mean(y, idx),
            };
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &f in &self.candidate_features(x.cols(), salt) {
            // Sort sample indices by this feature once; scan split points.
            let mut sorted: Vec<usize> = idx.to_vec();
            sorted.sort_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("finite"));
            // Prefix sums for O(1) SSE of each split.
            let total_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = sorted.iter().map(|&i| y[i] * y[i]).sum();
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            for (pos, &i) in sorted.iter().enumerate() {
                lsum += y[i];
                lsq += y[i] * y[i];
                let nl = pos + 1;
                let nr = sorted.len() - nl;
                if nl < self.min_leaf || nr < self.min_leaf {
                    continue;
                }
                // Skip ties: can't split between equal feature values.
                if x[(i, f)] == x[(sorted[pos + 1], f)] {
                    continue;
                }
                let rsum = total_sum - lsum;
                let rsq = total_sq - lsq;
                let sse = (lsq - lsum * lsum / nl as f64) + (rsq - rsum * rsum / nr as f64);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    let threshold = 0.5 * (x[(i, f)] + x[(sorted[pos + 1], f)]);
                    best = Some((f, threshold, sse));
                }
            }
        }

        let Some((feature, threshold, split_sse)) = best else {
            return Node::Leaf {
                value: Self::mean(y, idx),
            };
        };
        if split_sse >= parent_sse - 1e-12 {
            return Node::Leaf {
                value: Self::mean(y, idx),
            };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[(i, feature)] <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, depth + 1, salt.wrapping_mul(3) + 1)),
            right: Box::new(self.build(x, y, &right_idx, depth + 1, salt.wrapping_mul(3) + 2)),
        }
    }

    fn eval(node: &Node, row: &[f64]) -> f64 {
        match node {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    Self::eval(left, row)
                } else {
                    Self::eval(right, row)
                }
            }
        }
    }

    /// Fits on a subset of row indices (used by ensembles for bootstraps).
    pub fn fit_indices(&mut self, x: &Matrix, y: &[f64], idx: &[usize]) {
        assert!(!idx.is_empty(), "empty index set");
        self.root = Some(self.build(x, y, idx, 0, 1));
    }

    /// Depth of the fitted tree (0 = single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.fit_indices(x, y, &idx);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let root = self.root.as_ref().expect("predict before fit");
        x.rows_iter().map(|row| Self::eval(root, row)).collect()
    }

    fn name(&self) -> &'static str {
        "CART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 1 for x < 0.5, y = 5 for x >= 0.5.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(3);
        t.fit(&x, &y);
        let pred = t.predict(&x);
        for (p, t_) in pred.iter().zip(&y) {
            assert!((p - t_).abs() < 1e-12);
        }
    }

    #[test]
    fn depth_zero_tree_predicts_mean() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(0);
        t.fit(&x, &y);
        let pred = t.predict(&x);
        assert!((pred[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise-free signal, feature 1 is constant.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, 1.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..60).map(|i| if i < 30 { 0.0 } else { 10.0 }).collect();
        let mut t = DecisionTree::new(2);
        t.fit(&x, &y);
        // Perfect fit is only possible by splitting feature 0.
        let pred = t.predict(&x);
        assert!(pred.iter().zip(&y).all(|(p, t_)| (p - t_).abs() < 1e-12));
    }

    #[test]
    fn respects_min_leaf() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(10);
        t.min_leaf = 40;
        t.fit(&x, &y);
        // With min_leaf 40, only the middle split is allowed; depth 1.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let (x, _) = step_data();
        let y = vec![3.5; x.rows()];
        let mut t = DecisionTree::new(8);
        t.fit(&x, &y);
        assert_eq!(t.depth(), 0);
        assert!((t.predict(&x)[0] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn max_features_limits_split_candidates() {
        let mut t = DecisionTree::new(4);
        t.max_features = Some(1);
        let cands = t.candidate_features(5, 1);
        assert_eq!(cands.len(), 1);
        assert!(cands[0] < 5);
    }

    #[test]
    fn deeper_trees_fit_better() {
        // Piecewise function with 4 levels needs depth 2.
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..80).map(|i| (i / 20) as f64).collect();
        let mut shallow = DecisionTree::new(1);
        let mut deep = DecisionTree::new(3);
        shallow.fit(&x, &y);
        deep.fit(&x, &y);
        let err = |p: &[f64]| -> f64 { p.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum() };
        assert!(err(&deep.predict(&x)) < err(&shallow.predict(&x)));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let t = DecisionTree::new(2);
        let _ = t.predict(&Matrix::zeros(1, 1));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Tree predictions are convex combinations of training targets:
            /// they never leave the [min, max] target range.
            #[test]
            fn predictions_bounded_by_targets(
                ys in proptest::collection::vec(-100.0..100.0f64, 8..60),
                depth in 1usize..6,
                queries in proptest::collection::vec(-2.0..2.0f64, 1..10),
            ) {
                let rows: Vec<Vec<f64>> = (0..ys.len())
                    .map(|i| vec![i as f64 / ys.len() as f64])
                    .collect();
                let x = Matrix::from_rows(&rows).unwrap();
                let mut t = DecisionTree::new(depth);
                t.fit(&x, &ys);
                let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let q = Matrix::from_rows(
                    &queries.iter().map(|&v| vec![v]).collect::<Vec<_>>(),
                ).unwrap();
                for p in t.predict(&q) {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
                }
            }

            /// Depth never exceeds the configured bound.
            #[test]
            fn depth_respects_bound(
                ys in proptest::collection::vec(-10.0..10.0f64, 8..60),
                depth in 0usize..7,
            ) {
                let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
                let x = Matrix::from_rows(&rows).unwrap();
                let mut t = DecisionTree::new(depth);
                t.fit(&x, &ys);
                prop_assert!(t.depth() <= depth);
            }
        }
    }
}
