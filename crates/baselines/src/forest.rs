//! Random forest regressor (RFR): bagged CART trees with feature
//! subsampling, fitted in parallel.

use crate::tree::DecisionTree;
use crate::Regressor;
use rayon::prelude::*;
use tensor::Matrix;

/// Random forest of regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth bound per tree.
    pub max_depth: usize,
    /// Features considered per split (`None` = sqrt of feature count).
    pub max_features: Option<usize>,
    /// Seed controlling bootstraps and feature subsampling.
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// A forest with `n_trees` trees of depth `max_depth`.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        Self {
            n_trees,
            max_depth,
            max_features: None,
            seed: 42,
            trees: Vec::new(),
        }
    }

    /// Deterministic bootstrap sample of `n` indices for tree `t`.
    fn bootstrap(n: usize, t: usize, seed: u64) -> Vec<usize> {
        let mut state = seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(t as u64 + 1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % n as u64) as usize
            })
            .collect()
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True before `fit`.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        let mf = self
            .max_features
            .unwrap_or_else(|| (x.cols() as f64).sqrt().ceil() as usize)
            .max(1);
        self.trees = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut tree = DecisionTree::new(self.max_depth);
                tree.max_features = Some(mf);
                tree.feature_seed = self.seed.wrapping_add(t as u64 * 7919);
                let idx = Self::bootstrap(x.rows(), t, self.seed);
                tree.fit_indices(x, y, &idx);
                tree
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f64;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "RFR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nonlinear_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = tensor::init::uniform(n, 2, 0.0, 1.0, &mut rng);
        let y: Vec<f64> = x
            .rows_iter()
            .map(|r| (6.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = nonlinear_data(400, 1);
        let mut f = RandomForest::new(30, 8);
        f.fit(&x, &y);
        let pred = f.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.02, "training MSE {mse}");
    }

    #[test]
    fn ensemble_beats_single_stump_out_of_sample() {
        let (x, y) = nonlinear_data(400, 2);
        let (xt, yt) = nonlinear_data(200, 3);
        let mut forest = RandomForest::new(40, 8);
        forest.fit(&x, &y);
        let mut stump = crate::tree::DecisionTree::new(1);
        stump.fit(&x, &y);
        let mse = |p: Vec<f64>| -> f64 {
            p.iter()
                .zip(&yt)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / yt.len() as f64
        };
        assert!(mse(forest.predict(&xt)) < mse(stump.predict(&xt)));
    }

    #[test]
    fn fit_is_deterministic() {
        let (x, y) = nonlinear_data(150, 4);
        let mut a = RandomForest::new(10, 6);
        let mut b = RandomForest::new(10, 6);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn bootstrap_is_deterministic_and_varied() {
        let b1 = RandomForest::bootstrap(100, 0, 42);
        let b2 = RandomForest::bootstrap(100, 0, 42);
        let b3 = RandomForest::bootstrap(100, 1, 42);
        assert_eq!(b1, b2);
        assert_ne!(b1, b3);
        assert!(b1.iter().all(|&i| i < 100));
    }

    #[test]
    fn len_reports_tree_count() {
        let (x, y) = nonlinear_data(50, 5);
        let mut f = RandomForest::new(7, 3);
        assert!(f.is_empty());
        f.fit(&x, &y);
        assert_eq!(f.len(), 7);
    }
}
