//! Multiple linear regression (MLR) via ridge-stabilized normal equations.

use crate::Regressor;
use tensor::{matmul, Matrix};

/// Ordinary least squares with an intercept and optional ridge penalty.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 penalty on the (non-intercept) coefficients.
    pub ridge: f64,
    coef: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Plain OLS (tiny ridge term for numerical stability).
    pub fn new() -> Self {
        Self {
            ridge: 1e-9,
            coef: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Ridge regression with penalty `lambda`.
    pub fn ridge(lambda: f64) -> Self {
        Self {
            ridge: lambda,
            coef: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Fitted coefficients (empty before `fit`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Solves the symmetric positive-definite system `A w = b` by Gaussian
    /// elimination with partial pivoting.
    fn solve(mut a: Matrix, mut b: Vec<f64>) -> Vec<f64> {
        let n = b.len();
        for k in 0..n {
            let pivot_row = (k..n)
                .max_by(|&r1, &r2| {
                    a[(r1, k)]
                        .abs()
                        .partial_cmp(&a[(r2, k)].abs())
                        .expect("finite")
                })
                .expect("non-empty");
            if pivot_row != k {
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(pivot_row, c)];
                    a[(pivot_row, c)] = tmp;
                }
                b.swap(k, pivot_row);
            }
            let pivot = a[(k, k)];
            assert!(pivot.abs() > 1e-300, "singular normal equations");
            for r in k + 1..n {
                let f = a[(r, k)] / pivot;
                for c in k..n {
                    a[(r, c)] -= f * a[(k, c)];
                }
                b[r] -= f * b[k];
            }
        }
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in k + 1..n {
                acc -= a[(k, c)] * x[c];
            }
            x[k] = acc / a[(k, k)];
        }
        x
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        let (n, d) = x.shape();
        // Augment with an intercept column.
        let mut xa = Matrix::zeros(n, d + 1);
        for r in 0..n {
            let row = xa.row_mut(r);
            row[..d].copy_from_slice(x.row(r));
            row[d] = 1.0;
        }
        // Normal equations: (X^T X + lambda I') w = X^T y, intercept
        // unpenalized.
        let xt = xa.transpose();
        let mut xtx = matmul::matmul(&xt, &xa).expect("shapes chain");
        for i in 0..d {
            xtx[(i, i)] += self.ridge;
        }
        let xty = matmul::matvec(&xt, y).expect("target length checked");
        let w = Self::solve(xtx, xty);
        self.intercept = w[d];
        self.coef = w[..d].to_vec();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.coef.len(),
            "feature count mismatch (fit first?)"
        );
        x.rows_iter()
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.coef)
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "MLR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_exact_linear_relation() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = tensor::init::uniform(100, 3, -2.0, 2.0, &mut rng);
        let y: Vec<f64> = x
            .rows_iter()
            .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2] + 7.0)
            .collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-6);
        assert!((m.coefficients()[1] + 1.0).abs() < 1e-6);
        assert!((m.coefficients()[2] - 0.5).abs() < 1e-6);
        assert!((m.intercept() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn prediction_matches_targets_on_training_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = tensor::init::uniform(50, 2, 0.0, 1.0, &mut rng);
        let y: Vec<f64> = x.rows_iter().map(|r| 3.0 * r[0] + r[1]).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-6);
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = tensor::init::uniform(60, 2, -1.0, 1.0, &mut rng);
        let y: Vec<f64> = x.rows_iter().map(|r| 5.0 * r[0]).collect();
        let mut ols = LinearRegression::new();
        let mut ridge = LinearRegression::ridge(100.0);
        ols.fit(&x, &y);
        ridge.fit(&x, &y);
        assert!(ridge.coefficients()[0].abs() < ols.coefficients()[0].abs());
    }

    #[test]
    fn collinear_features_do_not_explode() {
        // Two identical columns: ridge term keeps the solve well posed.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..30).map(|i| 2.0 * i as f64).collect();
        let mut m = LinearRegression::ridge(1e-6);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let mut m = LinearRegression::new();
        m.fit(&Matrix::zeros(3, 2), &[1.0, 2.0]);
    }
}
