//! Linear ε-insensitive support vector regression, trained by SGD.
//!
//! Minimizes `lambda/2 ||w||^2 + mean(max(0, |w·x + b - y| - epsilon))`
//! by stochastic subgradient descent on standardized features. Linear SVR
//! is the weakest baseline in the paper's Figure 11 next to MLR, which is
//! exactly the role it plays here.

use crate::Regressor;
use tensor::stats::Standardizer;
use tensor::Matrix;

/// Linear ε-SVR.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    /// Insensitivity tube half-width.
    pub epsilon: f64,
    /// L2 regularization strength.
    pub lambda: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decays 1/sqrt(t)).
    pub lr: f64,
    /// Shuffle seed.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl LinearSvr {
    /// SVR with scikit-learn-flavoured defaults.
    pub fn new() -> Self {
        Self {
            epsilon: 0.05,
            lambda: 1e-4,
            epochs: 60,
            lr: 0.05,
            seed: 7,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fitted weights in standardized feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Default for LinearSvr {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x).expect("fitted on same shape");
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        self.y_std = (y.iter().map(|&v| (v - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64)
            .sqrt()
            .max(1e-12);
        let ys: Vec<f64> = y.iter().map(|&v| (v - self.y_mean) / self.y_std).collect();

        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;

        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut t = 0u64;
        for _ in 0..self.epochs {
            // Deterministic xorshift shuffle.
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                order.swap(i, (state % (i as u64 + 1)) as usize);
            }
            for &i in &order {
                t += 1;
                let eta = self.lr / (1.0 + (t as f64).sqrt() * 0.01);
                let row = xs.row(i);
                let pred: f64 = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>();
                let err = pred - ys[i];
                // L2 shrink.
                for w in &mut self.weights {
                    *w *= 1.0 - eta * self.lambda;
                }
                if err.abs() > self.epsilon {
                    let sign = err.signum();
                    for (w, &xi) in self.weights.iter_mut().zip(row) {
                        *w -= eta * sign * xi;
                    }
                    self.bias -= eta * sign;
                }
            }
        }
        self.scaler = Some(scaler);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let xs = scaler.transform(x).expect("feature count matches fit");
        xs.rows_iter()
            .map(|row| {
                let z: f64 = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>();
                z * self.y_std + self.y_mean
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_linear_relation_approximately() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = tensor::init::uniform(400, 2, -1.0, 1.0, &mut rng);
        let y: Vec<f64> = x
            .rows_iter()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0)
            .collect();
        let mut m = LinearSvr::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let mape: f64 = pred
            .iter()
            .zip(&y)
            .filter(|(_, &t)| t.abs() > 0.5)
            .map(|(&p, &t)| ((p - t) / t).abs())
            .sum::<f64>()
            / y.len() as f64;
        assert!(mape < 0.15, "relative error {mape}");
    }

    #[test]
    fn robust_to_target_scale() {
        // Internal standardization should handle kilowatt-scale targets.
        let mut rng = StdRng::seed_from_u64(2);
        let x = tensor::init::uniform(300, 1, 0.0, 1.0, &mut rng);
        let y: Vec<f64> = x.rows_iter().map(|r| 400.0 * r[0] + 100.0).collect();
        let mut m = LinearSvr::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() / t < 0.2, "{p} vs {t}");
        }
    }

    #[test]
    fn errors_inside_tube_do_not_move_weights() {
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let y = vec![0.0, 0.0];
        let mut m = LinearSvr::new();
        m.epsilon = 10.0; // everything inside the tube
        m.fit(&x, &y);
        assert!(m.weights()[0].abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = tensor::init::uniform(100, 2, 0.0, 1.0, &mut rng);
        let y: Vec<f64> = x.rows_iter().map(|r| r[0] + r[1]).collect();
        let mut a = LinearSvr::new();
        let mut b = LinearSvr::new();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let m = LinearSvr::new();
        let _ = m.predict(&Matrix::zeros(1, 1));
    }
}
