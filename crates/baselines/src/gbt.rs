//! Gradient-boosted regression trees (the paper's "XGBR" baseline).
//!
//! Squared-error gradient boosting: each round fits a shallow CART tree to
//! the current residuals and adds it with a learning rate. This is the
//! XGBoost objective without its regularization refinements — adequate for
//! the Figure 11 accuracy comparison.

use crate::tree::DecisionTree;
use crate::Regressor;
use tensor::Matrix;

/// Gradient-boosting regressor.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak tree.
    pub max_depth: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    base: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// A booster with the given rounds / depth / learning rate.
    pub fn new(n_rounds: usize, max_depth: usize, learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self {
            n_rounds,
            max_depth,
            learning_rate,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted rounds.
    pub fn rounds_fitted(&self) -> usize {
        self.trees.len()
    }

    /// Training MSE after each round (for monotonicity checks).
    pub fn staged_mse(&self, x: &Matrix, y: &[f64]) -> Vec<f64> {
        let mut pred = vec![self.base; x.rows()];
        let mut out = Vec::with_capacity(self.trees.len());
        for tree in &self.trees {
            for (p, t) in pred.iter_mut().zip(tree.predict(x)) {
                *p += self.learning_rate * t;
            }
            let mse = pred
                .iter()
                .zip(y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / y.len() as f64;
            out.push(mse);
        }
        out
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.trees.clear();
        let mut residual: Vec<f64> = y.iter().map(|&t| t - self.base).collect();
        let idx: Vec<usize> = (0..x.rows()).collect();
        for _ in 0..self.n_rounds {
            let mut tree = DecisionTree::new(self.max_depth);
            tree.min_leaf = 3;
            tree.fit_indices(x, &residual, &idx);
            let pred = tree.predict(x);
            for (r, p) in residual.iter_mut().zip(&pred) {
                *r -= self.learning_rate * p;
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut acc = vec![self.base; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += self.learning_rate * p;
            }
        }
        acc
    }

    fn name(&self) -> &'static str {
        "XGBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = tensor::init::uniform(n, 2, 0.0, 1.0, &mut rng);
        let y: Vec<f64> = x
            .rows_iter()
            .map(|r| (5.0 * r[0]).sin() + 2.0 * r[1])
            .collect();
        (x, y)
    }

    #[test]
    fn training_error_decreases_with_rounds() {
        let (x, y) = data(300, 1);
        let mut g = GradientBoosting::new(50, 3, 0.2);
        g.fit(&x, &y);
        let staged = g.staged_mse(&x, &y);
        assert!(staged.first().unwrap() > staged.last().unwrap());
        // Non-strictly monotone decreasing overall trend.
        assert!(
            staged.last().unwrap() < &0.01,
            "final MSE {}",
            staged.last().unwrap()
        );
    }

    #[test]
    fn zero_rounds_predicts_mean() {
        let (x, y) = data(100, 2);
        let mut g = GradientBoosting::new(1, 0, 1.0);
        g.fit(&x, &y);
        // Depth-0 trees are mean-of-residual leaves; after one round with
        // lr 1.0 the prediction is the target mean + residual mean = mean.
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let pred = g.predict(&x);
        for p in pred {
            assert!((p - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn boosting_beats_its_own_weak_learner() {
        let (x, y) = data(300, 3);
        let (xt, yt) = data(150, 4);
        let mut weak = DecisionTree::new(2);
        weak.fit(&x, &y);
        let mut boosted = GradientBoosting::new(80, 2, 0.2);
        boosted.fit(&x, &y);
        let mse = |p: Vec<f64>| -> f64 {
            p.iter()
                .zip(&yt)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / yt.len() as f64
        };
        assert!(mse(boosted.predict(&xt)) < mse(weak.predict(&xt)));
    }

    #[test]
    fn deterministic() {
        let (x, y) = data(120, 5);
        let mut a = GradientBoosting::new(20, 3, 0.3);
        let mut b = GradientBoosting::new(20, 3, 0.3);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_rejected() {
        let _ = GradientBoosting::new(10, 3, 0.0);
    }
}
