//! Multi-learner regression baselines (paper Figure 11).
//!
//! The paper compares its DNN against four "multi-learner" methods trained
//! on the same data: Random Forest Regressor (RFR), eXtreme Gradient
//! Boosting Regressor (XGBR), Support Vector Regressor (SVR) and Multiple
//! Linear Regressor (MLR). All four are implemented here from scratch on
//! top of the `tensor` crate, behind the common [`Regressor`] trait.

pub mod forest;
pub mod gbt;
pub mod linreg;
pub mod svr;
pub mod tree;

pub use forest::RandomForest;
pub use gbt::GradientBoosting;
pub use linreg::LinearRegression;
pub use svr::LinearSvr;
pub use tree::DecisionTree;

use tensor::Matrix;

/// A trainable regression model mapping feature rows to scalar targets.
pub trait Regressor: Send + Sync {
    /// Fits the model on `x` (rows = samples) and targets `y`.
    ///
    /// # Panics
    /// Implementations panic if `x.rows() != y.len()` or the dataset is
    /// empty — baseline training is driven by this codebase, so shape
    /// violations are programming errors.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predicts one target per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// Short display name (e.g. "RFR").
    fn name(&self) -> &'static str;
}
