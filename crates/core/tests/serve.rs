//! End-to-end tests for `dvfs serve`: wire protocol robustness, bitwise
//! parity between served and in-process predictions, and hot model
//! swaps under live traffic.

use dvfs_core::cache::ProfileCache;
use dvfs_core::dataset::Dataset;
use dvfs_core::models::PowerTimeModels;
use dvfs_core::predictor::Predictor;
use dvfs_core::serve::{Client, Request, ServeConfig, Server};
use dvfs_core::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DeviceSpec, DvfsGrid, MetricSample, NoiseModel, SignatureBuilder};
use std::io::Write;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Train once per test binary: every test shares the same weights, so
/// served-vs-in-process comparisons stay apples to apples.
fn shared_models() -> &'static PowerTimeModels {
    static MODELS: OnceLock<PowerTimeModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        let spec = DeviceSpec::ga100();
        let nm = NoiseModel::default_bench();
        let sigs = [
            SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
            SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
            SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
        ];
        let grid = DvfsGrid::for_spec(&spec);
        let mut samples = Vec::new();
        for sig in &sigs {
            for &f in grid.used().iter().step_by(6) {
                samples.push(gpu_model::sample::measure(&spec, sig, f, 0, &nm));
            }
            samples.push(gpu_model::sample::measure(
                &spec,
                sig,
                spec.max_core_mhz,
                0,
                &nm,
            ));
        }
        PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap())
    })
}

fn start_server() -> (Server, Arc<ModelStore>) {
    start_server_with(ServeConfig::default())
}

fn start_server_with(config: ServeConfig) -> (Server, Arc<ModelStore>) {
    let spec = DeviceSpec::ga100();
    let snapshot = ModelSnapshot::new(
        shared_models().clone(),
        spec,
        SnapshotMeta {
            label: "test".into(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
    );
    let store = Arc::new(ModelStore::new(snapshot));
    let server = Server::start(config, Arc::clone(&store)).expect("bind");
    (server, store)
}

fn stop(server: Server, addr: &str) {
    // A shutdown frame (not just the API) so the drain path is exercised.
    if let Ok(mut c) = Client::connect(addr) {
        let _ = c.call(&Request::shutdown());
    }
    server.shutdown();
    server.join();
}

/// The reference sample a wire request stands for (mirrors the server's
/// own mapping — fp activity in the fp64 slot, default clock).
fn reference_like_server(
    spec: &DeviceSpec,
    workload: &str,
    fp: f64,
    dram: f64,
    exec: f64,
) -> MetricSample {
    MetricSample {
        workload: workload.to_string(),
        run: 0,
        fp64_active: fp,
        fp32_active: 0.0,
        sm_app_clock: spec.max_core_mhz,
        dram_active: dram,
        gr_engine_active: 0.0,
        gpu_utilization: 0.0,
        power_usage: 0.0,
        sm_active: 0.0,
        sm_occupancy: 0.0,
        pcie_tx_bytes: 0.0,
        pcie_rx_bytes: 0.0,
        exec_time: exec,
    }
}

#[test]
fn served_predict_is_bitwise_identical_to_in_process() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let resp = client
        .call(&Request::predict("parity", 0.62, 0.31, 12.5))
        .unwrap();
    assert!(resp.ok, "predict failed: {:?}", resp.error);
    assert_eq!(resp.version, 1.0);
    let served = resp.profile.expect("predict returns a profile");

    // The same snapshot version, driven through the same cached batch
    // path in-process. serde_json's float_roundtrip mode means the trip
    // over the wire must not perturb a single bit.
    let spec = DeviceSpec::ga100();
    let predictor = Predictor::new(shared_models(), spec.clone());
    let freqs = DvfsGrid::for_spec(&spec).used();
    let reference = reference_like_server(&spec, "parity", 0.62, 0.31, 12.5);
    let local = predictor.predict_batch_cached(&ProfileCache::new(8), &[reference], &freqs);
    assert_eq!(local.len(), 1);
    assert_eq!(served.frequencies, local[0].frequencies);
    for (a, b) in served.power_w.iter().zip(&local[0].power_w) {
        assert_eq!(a.to_bits(), b.to_bits(), "power must match bitwise");
    }
    for (a, b) in served.time_s.iter().zip(&local[0].time_s) {
        assert_eq!(a.to_bits(), b.to_bits(), "time must match bitwise");
    }
    for (a, b) in served.energy_j.iter().zip(&local[0].energy_j) {
        assert_eq!(a.to_bits(), b.to_bits(), "energy must match bitwise");
    }

    // select returns the same selection the profile computes locally.
    let resp = client
        .call(&Request::select(
            "parity",
            0.62,
            0.31,
            12.5,
            "edp",
            Some(0.05),
        ))
        .unwrap();
    assert!(resp.ok);
    let selection = resp.selection.expect("select returns a selection");
    let local_sel = local[0].select(dvfs_core::objective::Objective::Edp, Some(0.05));
    assert_eq!(selection, local_sel);

    stop(server, &addr);
}

#[test]
fn garbage_json_gets_an_error_reply_and_the_connection_survives() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    client.send_raw(b"this is not json {{{").unwrap();
    let resp = client.read_response().unwrap();
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("bad request"));

    // Valid JSON of the wrong shape is also an error, not a panic.
    client.send_raw(b"{\"unexpected\":true}").unwrap();
    let resp = client.read_response().unwrap();
    assert!(!resp.ok);

    // The stream stayed framed: a real request on the same connection
    // still succeeds.
    let resp = client.call(&Request::ping()).unwrap();
    assert!(resp.ok);

    // Semantic errors: missing fields, out-of-range activities, bad
    // objective names.
    let resp = client.call(&Request::predict("w", 1.5, 0.2, 1.0)).unwrap();
    assert!(!resp.ok, "fp_active > 1 must be rejected");
    let resp = client
        .call(&Request::select("w", 0.5, 0.2, 1.0, "frobnicate", None))
        .unwrap();
    assert!(!resp.ok, "unknown objective must be rejected");
    let resp = client.call(&Request::ping()).unwrap();
    assert!(resp.ok, "connection survives semantic errors");

    stop(server, &addr);
}

#[test]
fn oversized_frame_is_rejected_with_a_reason() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Announce a payload far beyond the limit; send no payload bytes.
    let announced: u32 = 64 << 20;
    client
        .stream_mut()
        .write_all(&announced.to_be_bytes())
        .unwrap();
    let resp = client.read_response().unwrap();
    assert!(!resp.ok);
    assert!(
        resp.error.as_deref().unwrap_or("").contains("exceeds"),
        "error should name the limit: {:?}",
        resp.error
    );

    // The server dropped that desynced connection, but keeps serving
    // new ones.
    let mut fresh = Client::connect(&addr).unwrap();
    assert!(fresh.call(&Request::ping()).unwrap().ok);

    stop(server, &addr);
}

#[test]
fn truncated_frame_does_not_wedge_the_server() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();

    {
        let mut client = Client::connect(&addr).unwrap();
        // A frame header promising 100 bytes, followed by only 3, then a
        // write-side close: the handler sees an unclean EOF and bails.
        client
            .stream_mut()
            .write_all(&100u32.to_be_bytes())
            .unwrap();
        client.stream_mut().write_all(b"abc").unwrap();
        client
            .stream_mut()
            .shutdown(std::net::Shutdown::Write)
            .unwrap();
    }

    let mut fresh = Client::connect(&addr).unwrap();
    assert!(fresh.call(&Request::ping()).unwrap().ok);

    stop(server, &addr);
}

#[test]
fn control_commands_report_version_and_cache_stats() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let resp = client.call(&Request::version()).unwrap();
    assert!(resp.ok);
    assert_eq!(resp.version, 1.0);
    assert_eq!(resp.label.as_deref(), Some("test"));

    // Two predicts for the same key: one miss, one hit.
    for _ in 0..2 {
        assert!(
            client
                .call(&Request::predict("s", 0.4, 0.4, 2.0))
                .unwrap()
                .ok
        );
    }
    let resp = client.call(&Request::stats()).unwrap();
    let stats = resp.stats.expect("stats reply");
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    assert!(stats.lookups >= 2.0);
    assert!(stats.hit_rate >= 0.0 && stats.hit_rate.is_finite());
    assert!(stats.shards >= 1.0);

    let resp = client.call(&Request::ping()).unwrap();
    assert!(resp.ok);

    let mut req = Request::ping();
    req.cmd = "frobnicate".into();
    let resp = client.call(&req).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("unknown command"));

    stop(server, &addr);
}

#[test]
fn hot_swap_is_picked_up_without_stalling_in_flight_traffic() {
    let (server, store) = start_server();
    let addr = server.local_addr().to_string();

    // Baseline response at version 1.
    let mut probe = Client::connect(&addr).unwrap();
    let before = probe
        .call(&Request::predict("swap", 0.55, 0.25, 3.0))
        .unwrap();
    assert_eq!(before.version, 1.0);

    // Hammer the server from two connections while snapshots are
    // published underneath them. Every request must succeed, versions
    // must never move backwards, and no request may stall: the workers
    // rebind between batches, readers never take a publisher's lock.
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed_max = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let addr2 = addr.clone();
    let hammers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr2.clone();
            let stop_flag = Arc::clone(&stop_flag);
            let observed_max = Arc::clone(&observed_max);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut last = 0u64;
                let mut served = 0u64;
                while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client
                        .call(&Request::predict("swap", 0.55, 0.25, 3.0))
                        .unwrap();
                    assert!(resp.ok, "in-flight request failed during swap");
                    let version = resp.version as u64;
                    assert!(version >= last, "served version went backwards");
                    last = version;
                    served += 1;
                    observed_max.fetch_max(version, std::sync::atomic::Ordering::Relaxed);
                }
                served
            })
        })
        .collect();

    // Publish the *same weights* as new versions: the version id must
    // advance while the numerical answers stay bitwise identical.
    let snap = store.load();
    for _ in 0..3 {
        store.publish(ModelSnapshot::new(
            snap.models.clone(),
            snap.spec.clone(),
            SnapshotMeta {
                label: "swap".into(),
                dataset_rows: 0,
                train_seconds: 0.0,
            },
        ));
        std::thread::sleep(std::time::Duration::from_millis(120));
    }

    // Traffic must observe a post-swap version without being told to
    // pause — that's the "picked up by in-flight traffic" criterion.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while observed_max.load(std::sync::atomic::Ordering::Relaxed) < 4
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert!(
        observed_max.load(std::sync::atomic::Ordering::Relaxed) >= 4,
        "hot swap was never observed by live traffic"
    );

    // Same weights, new version: bitwise-identical numbers.
    let after = probe
        .call(&Request::predict("swap", 0.55, 0.25, 3.0))
        .unwrap();
    assert_eq!(after.version, 4.0);
    let (b, a) = (before.profile.unwrap(), after.profile.unwrap());
    for (x, y) in b.power_w.iter().zip(&a.power_w) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "power changed across identical swap"
        );
    }
    for (x, y) in b.time_s.iter().zip(&a.time_s) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "time changed across identical swap"
        );
    }

    stop(server, &addr);
}

#[test]
fn shutdown_frame_drains_queued_requests() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();

    // Queue work from several connections, then shut down; every
    // request must still get an answer (workers drain before exiting).
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut answered = 0;
                for k in 0..25 {
                    let wl = format!("drain-{i}-{k}");
                    let resp = client
                        .call(&Request::predict(&wl, 0.2 + 0.001 * k as f64, 0.3, 1.0))
                        .unwrap();
                    assert!(resp.ok);
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 100);

    let mut client = Client::connect(&addr).unwrap();
    let resp = client.call(&Request::shutdown()).unwrap();
    assert!(resp.ok);
    server.join();
}

#[test]
fn scrape_frame_returns_live_exposition() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for k in 0..3 {
        let resp = client
            .call(&Request::predict(&format!("scrape-{k}"), 0.4, 0.4, 2.0))
            .unwrap();
        assert!(resp.ok);
    }
    let resp = client.call(&Request::scrape()).unwrap();
    assert!(resp.ok, "scrape failed: {:?}", resp.error);
    let text = resp.text.expect("scrape returns exposition text");
    let parsed = obs::prom::parse(&text).expect("exposition must parse strictly");
    // Counters are process-global, so >= what this test alone produced.
    assert!(
        parsed.counters.get("serve_requests").copied().unwrap_or(0) >= 3,
        "serve_requests missing or too small"
    );
    assert!(
        parsed.histograms.contains_key("serve_request_ns"),
        "latency histogram missing from exposition"
    );
    assert!(
        parsed.infos.contains_key("dvfs_build_info"),
        "build info metric missing"
    );
    // The scrape republished derived gauges before rendering.
    assert!(
        parsed.gauges.contains_key("serve_uptime_s"),
        "uptime gauge missing"
    );

    stop(server, &addr);
}

#[test]
fn telemetry_port_serves_metrics_and_health_over_http() {
    let (server, _store) = start_server_with(ServeConfig {
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    let taddr = server
        .telemetry_addr()
        .expect("telemetry port was requested")
        .to_string();

    let mut client = Client::connect(&addr).unwrap();
    assert!(
        client
            .call(&Request::predict("http", 0.3, 0.5, 1.5))
            .unwrap()
            .ok
    );

    let (status, body) = dvfs_core::serve::http_get(&taddr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let parsed = obs::prom::parse(&body).expect("HTTP exposition must parse");
    assert!(parsed.counters.get("serve_requests").copied().unwrap_or(0) >= 1);
    assert!(parsed.infos.contains_key("dvfs_build_info"));

    let (status, body) = dvfs_core::serve::http_get(&taddr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = dvfs_core::serve::http_get(&taddr, "/nope").unwrap();
    assert_eq!(status, 404);

    stop(server, &addr);
}

#[test]
fn stats_frame_reports_uptime_build_window_and_slo_status() {
    let (server, _store) = start_server_with(ServeConfig {
        ts_interval: Some(Duration::from_millis(25)),
        stats_window: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for k in 0..5 {
        assert!(
            client
                .call(&Request::predict(&format!("sf-{k}"), 0.2, 0.6, 1.0))
                .unwrap()
                .ok
        );
    }
    // Let the sampler take at least two ticks so the window exists.
    std::thread::sleep(Duration::from_millis(120));

    let resp = client.call(&Request::stats()).unwrap();
    assert!(resp.ok);
    let server_stats = resp.server.expect("stats frame has a server section");
    assert!(server_stats.uptime_s > 0.0);
    assert!(!server_stats.build_version.is_empty());
    assert!(!server_stats.build_git.is_empty());
    assert_eq!(server_stats.window_s, 5.0);
    assert!(server_stats.qps >= 0.0 && server_stats.qps.is_finite());
    assert!((0.0..=1.0).contains(&server_stats.hit_rate));
    assert!(server_stats.p99_us >= server_stats.p50_us);
    let names: Vec<&str> = server_stats.slo.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["latency_p99", "availability", "quality_mape"]);
    for slo in &server_stats.slo {
        assert!(slo.target > 0.0 && slo.target < 1.0);
        assert!(slo.burn_fast >= 0.0 && slo.burn_slow >= 0.0);
    }

    stop(server, &addr);
}

#[test]
fn impossible_latency_slo_fires_exactly_once_under_sustained_load() {
    use obs::SloSpec;
    // A 1ns p99 objective no real request can meet, on short windows so
    // the burn shows up fast. The spec name is unique to this test, so
    // the global `slo.itest_tight.alerts` counter belongs to it alone.
    let (server, _store) = start_server_with(ServeConfig {
        ts_interval: Some(Duration::from_millis(25)),
        slos: vec![SloSpec::latency("itest_tight", "serve.request_ns", 1, 0.99)
            .with_windows(Duration::from_millis(500), Duration::from_secs(1))],
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Sustained load; poll the stats frame until the alert lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut alerts = 0.0;
    while std::time::Instant::now() < deadline {
        for k in 0..10 {
            assert!(
                client
                    .call(&Request::predict(&format!("slo-{k}"), 0.5, 0.3, 2.0))
                    .unwrap()
                    .ok
            );
        }
        let resp = client.call(&Request::stats()).unwrap();
        let tight = resp
            .server
            .expect("server section")
            .slo
            .into_iter()
            .find(|s| s.name == "itest_tight")
            .expect("configured SLO is reported");
        alerts = tight.alerts;
        if alerts >= 1.0 {
            assert!(tight.firing, "alerted SLO must be firing under load");
            assert!(tight.burn_fast > 1.0, "burn must exceed threshold");
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(alerts, 1.0, "edge-triggered alert must fire exactly once");

    // More overload traffic must not re-fire the alert: the edge only
    // triggers on a clear→firing transition.
    for k in 0..20 {
        assert!(
            client
                .call(&Request::predict(&format!("slo2-{k}"), 0.5, 0.3, 2.0))
                .unwrap()
                .ok
        );
    }
    std::thread::sleep(Duration::from_millis(150));
    let resp = client.call(&Request::stats()).unwrap();
    let tight = resp
        .server
        .unwrap()
        .slo
        .into_iter()
        .find(|s| s.name == "itest_tight")
        .unwrap();
    assert_eq!(tight.alerts, 1.0, "still-firing SLO must not re-alert");

    stop(server, &addr);
}

#[test]
fn pipelined_burst_gets_in_order_bitwise_identical_responses() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();

    // Reference answers, one call at a time on a separate connection.
    let mut oracle = Client::connect(&addr).unwrap();
    let keys: Vec<(String, f64, f64, f64)> = (0..12)
        .map(|k| {
            (
                format!("pipe-{k}"),
                0.15 + 0.05 * k as f64 % 0.9,
                0.2 + 0.04 * k as f64 % 0.9,
                1.0 + k as f64,
            )
        })
        .collect();
    let mut expected = Vec::new();
    for (wl, fp, dram, exec) in &keys {
        let resp = oracle
            .call(&Request::predict(wl, *fp, *dram, *exec))
            .unwrap();
        assert!(resp.ok);
        expected.push(resp.profile.unwrap());
    }

    // The same requests as one pipelined burst: a single vectored write
    // carrying every frame, then the replies read back in order. A mixed
    // burst (a control frame in the middle) must also stay ordered.
    let mut client = Client::connect(&addr).unwrap();
    let mut payloads: Vec<Vec<u8>> = keys
        .iter()
        .map(|(wl, fp, dram, exec)| {
            serde_json::to_string(&Request::predict(wl, *fp, *dram, *exec))
                .unwrap()
                .into_bytes()
        })
        .collect();
    payloads.insert(
        6,
        serde_json::to_string(&Request::ping())
            .unwrap()
            .into_bytes(),
    );
    let frames: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    client.send_frames(&frames).unwrap();
    for (i, _) in payloads.iter().enumerate() {
        let resp = client.read_response().unwrap();
        assert!(resp.ok, "pipelined frame {i} failed: {:?}", resp.error);
        if i == 6 {
            assert!(
                resp.profile.is_none(),
                "ping reply must not carry a profile"
            );
            continue;
        }
        let key = if i < 6 { i } else { i - 1 };
        let profile = resp.profile.expect("predict reply carries a profile");
        assert_eq!(
            profile.workload, keys[key].0,
            "reply {i} answered the wrong request (ordering violated)"
        );
        for (a, b) in profile.power_w.iter().zip(&expected[key].power_w) {
            assert_eq!(a.to_bits(), b.to_bits(), "pipelined power differs");
        }
        for (a, b) in profile.time_s.iter().zip(&expected[key].time_s) {
            assert_eq!(a.to_bits(), b.to_bits(), "pipelined time differs");
        }
        for (a, b) in profile.energy_j.iter().zip(&expected[key].energy_j) {
            assert_eq!(a.to_bits(), b.to_bits(), "pipelined energy differs");
        }
    }

    stop(server, &addr);
}

#[test]
fn mixed_valid_and_malformed_traffic_leaves_the_server_consistent() {
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();

    // Several connections at once, each interleaving pipelined valid
    // bursts with protocol abuse: garbage JSON, wrong shapes, a
    // truncated frame, an oversized announcement. Whatever a connection
    // does, the dispatcher shards must come out drained and the cache
    // counters consistent.
    let handles: Vec<_> = (0..6)
        .map(|conn: usize| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                match conn % 3 {
                    // Valid pipelined traffic, with a garbage frame in
                    // the middle of every burst.
                    0 => {
                        for round in 0..10 {
                            let a = serde_json::to_string(&Request::predict(
                                &format!("fz-{conn}-{round}"),
                                0.3,
                                0.4,
                                2.0,
                            ))
                            .unwrap();
                            let b = serde_json::to_string(&Request::select(
                                &format!("fz-{conn}-{round}"),
                                0.3,
                                0.4,
                                2.0,
                                "edp",
                                None,
                            ))
                            .unwrap();
                            client
                                .send_frames(&[a.as_bytes(), b"{\"nope\":1}", b.as_bytes()])
                                .unwrap();
                            assert!(client.read_response().unwrap().ok);
                            assert!(!client.read_response().unwrap().ok);
                            assert!(client.read_response().unwrap().ok);
                        }
                    }
                    // Garbage and semantic errors only.
                    1 => {
                        for _ in 0..10 {
                            client.send_raw(b"not json at all").unwrap();
                            assert!(!client.read_response().unwrap().ok);
                            let resp = client
                                .call(&Request::predict("fz-bad", 7.0, 0.4, 2.0))
                                .unwrap();
                            assert!(!resp.ok, "out-of-range activity must be rejected");
                        }
                    }
                    // A few valid requests, then die mid-frame.
                    _ => {
                        for k in 0..5 {
                            assert!(
                                client
                                    .call(&Request::predict(
                                        &format!("fz-trunc-{conn}-{k}"),
                                        0.5,
                                        0.2,
                                        1.5
                                    ))
                                    .unwrap()
                                    .ok
                            );
                        }
                        client.stream_mut().write_all(&64u32.to_be_bytes()).unwrap();
                        client.stream_mut().write_all(b"only-par").unwrap();
                        client
                            .stream_mut()
                            .shutdown(std::net::Shutdown::Write)
                            .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // One more connection abuses the length prefix itself.
    {
        let mut client = Client::connect(&addr).unwrap();
        client
            .stream_mut()
            .write_all(&(64u32 << 20).to_be_bytes())
            .unwrap();
        assert!(!client.read_response().unwrap().ok);
    }

    // No stuck jobs: a fresh request answers promptly (well inside the
    // reply timeout), meaning no shard holds an orphaned burst.
    let t0 = std::time::Instant::now();
    let mut fresh = Client::connect(&addr).unwrap();
    assert!(
        fresh
            .call(&Request::predict("fz-after", 0.6, 0.6, 2.0))
            .unwrap()
            .ok
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "post-fuzz request stalled: a shard kept a stuck job"
    );

    // Cache accounting survived the abuse: every lookup is classified.
    let stats = server.cache_stats();
    assert_eq!(
        stats.lookups,
        stats.hits + stats.misses,
        "cache counters drifted under mixed traffic"
    );
    assert!(stats.lookups > 0);

    stop(server, &addr);
}

#[test]
fn hot_swap_under_pipelined_load_keeps_responses_bitwise_stable() {
    let (server, store) = start_server();
    let addr = server.local_addr().to_string();

    // Baseline profile at version 1.
    let mut probe = Client::connect(&addr).unwrap();
    let before = probe
        .call(&Request::predict("pswap", 0.52, 0.28, 4.0))
        .unwrap();
    assert_eq!(before.version, 1.0);
    let baseline = before.profile.unwrap();

    // Pipelined hammers: bursts of 4 identical predicts per vectored
    // write, replies checked for order, bitwise stability, and version
    // monotonicity while identical-weight snapshots publish underneath.
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed_max = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let hammers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let stop_flag = Arc::clone(&stop_flag);
            let observed_max = Arc::clone(&observed_max);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let frame = serde_json::to_string(&Request::predict("pswap", 0.52, 0.28, 4.0))
                    .unwrap()
                    .into_bytes();
                let mut last = 0u64;
                let mut served = 0u64;
                while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    client
                        .send_frames(&[&frame, &frame, &frame, &frame])
                        .unwrap();
                    for _ in 0..4 {
                        let resp = client.read_response().unwrap();
                        assert!(resp.ok, "pipelined request failed during swap");
                        let version = resp.version as u64;
                        assert!(version >= last, "served version went backwards");
                        last = version;
                        let profile = resp.profile.expect("predict reply has a profile");
                        assert_eq!(profile.workload, "pswap");
                        for (a, b) in profile.power_w.iter().zip(&baseline.power_w) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "power drifted across identical-weight swap"
                            );
                        }
                        for (a, b) in profile.time_s.iter().zip(&baseline.time_s) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "time drifted across identical-weight swap"
                            );
                        }
                        served += 1;
                    }
                    observed_max.fetch_max(last, std::sync::atomic::Ordering::Relaxed);
                }
                served
            })
        })
        .collect();

    let snap = store.load();
    for _ in 0..3 {
        store.publish(ModelSnapshot::new(
            snap.models.clone(),
            snap.spec.clone(),
            SnapshotMeta {
                label: "pswap".into(),
                dataset_rows: 0,
                train_seconds: 0.0,
            },
        ));
        std::thread::sleep(std::time::Duration::from_millis(120));
    }

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while observed_max.load(std::sync::atomic::Ordering::Relaxed) < 4
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert!(
        observed_max.load(std::sync::atomic::Ordering::Relaxed) >= 4,
        "hot swap was never observed by pipelined traffic"
    );

    stop(server, &addr);
}

#[test]
fn predict_emits_a_matching_flow_pair() {
    obs::trace::set_enabled(true);
    let (server, _store) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .call(&Request::predict("flow", 0.45, 0.35, 3.0))
        .unwrap();
    assert!(resp.ok);
    obs::trace::set_enabled(false);

    let (events, _stats) = obs::trace::drain();
    let flow_name = obs::trace::intern("serve.req");
    let starts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == obs::EventKind::FlowStart && e.name == flow_name)
        .map(|e| e.value)
        .collect();
    let ends: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == obs::EventKind::FlowEnd && e.name == flow_name)
        .map(|e| e.value)
        .collect();
    assert!(!starts.is_empty(), "no serve.req flow starts recorded");
    assert!(
        starts.iter().any(|id| ends.contains(id)),
        "no flow id has both a start ({starts:?}) and an end ({ends:?})"
    );

    stop(server, &addr);
}
