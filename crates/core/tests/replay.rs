//! End-to-end decision-journal test: a server under pipelined load —
//! with a hot snapshot swap mid-run — journals every decision, and
//! [`dvfs_core::serve::journal::replay`] reproduces all of them bitwise
//! against a snapshot with the same weights.

use dvfs_core::dataset::Dataset;
use dvfs_core::models::PowerTimeModels;
use dvfs_core::serve::journal::replay;
use dvfs_core::serve::loadgen;
use dvfs_core::serve::{LoadgenConfig, Pacing, ServeConfig, Server};
use dvfs_core::snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
use gpu_model::{DeviceSpec, DvfsGrid, NoiseModel, SignatureBuilder};
use std::path::PathBuf;
use std::sync::Arc;

/// Small-but-real trained weights (same recipe as the serve tests).
fn trained_models() -> PowerTimeModels {
    let spec = DeviceSpec::ga100();
    let nm = NoiseModel::default_bench();
    let sigs = [
        SignatureBuilder::new("c").flops(2e13).bytes(2e11).build(),
        SignatureBuilder::new("m").flops(2e11).bytes(2e13).build(),
        SignatureBuilder::new("x").flops(8e12).bytes(3e12).build(),
    ];
    let grid = DvfsGrid::for_spec(&spec);
    let mut samples = Vec::new();
    for sig in &sigs {
        for &f in grid.used().iter().step_by(6) {
            samples.push(gpu_model::sample::measure(&spec, sig, f, 0, &nm));
        }
        samples.push(gpu_model::sample::measure(
            &spec,
            sig,
            spec.max_core_mhz,
            0,
            &nm,
        ));
    }
    PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap())
}

fn snapshot_from(models: PowerTimeModels, label: &str) -> ModelSnapshot {
    ModelSnapshot::new(
        models,
        DeviceSpec::ga100(),
        SnapshotMeta {
            label: label.into(),
            dataset_rows: 0,
            train_seconds: 0.0,
        },
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvfs-replay-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn loadgen_config(addr: String, requests: u64, seed: u64, shutdown: bool) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        connections: 8,
        requests,
        pacing: Pacing::Closed,
        keys: 48,
        zipf_s: 1.0,
        pipeline: 4,
        select_every: 4,
        seed,
        shutdown_after: shutdown,
    }
}

#[test]
fn replay_reproduces_journaled_decisions_bitwise_across_hot_swap() {
    let dir = scratch_dir("parity");
    let models = trained_models();
    let store = Arc::new(ModelStore::new(snapshot_from(models.clone(), "v1")));
    let config = ServeConfig {
        journal: Some(obs::journal::JournalConfig::new(dir.clone())),
        ..ServeConfig::default()
    };
    let server = Server::start(config, Arc::clone(&store)).expect("bind");
    let addr = server.local_addr().to_string();

    // First leg: pipelined load (8 connections x depth 4) against v1.
    let half = if cfg!(debug_assertions) { 600 } else { 2_000 };
    let report = loadgen::run(&loadgen_config(addr.clone(), half, 7, false)).expect("leg 1");
    assert_eq!(report.errors, 0.0, "leg 1 errors");

    // Hot swap: same weights republished as v2 — decisions must stay
    // identical, so the swap is invisible to replay but visible in the
    // journal's version column.
    store.publish(snapshot_from(models.clone(), "v2"));

    // Second leg against v2, then a drained shutdown (the journal
    // writer flushes its final batch on join).
    let report = loadgen::run(&loadgen_config(addr.clone(), half, 11, true)).expect("leg 2");
    assert_eq!(report.errors, 0.0, "leg 2 errors");
    server.join();

    let records = obs::journal::read_records(&dir).expect("read journal");
    assert_eq!(
        records.len() as u64,
        2 * half,
        "every served decision must be journaled"
    );

    let replay_snapshot = snapshot_from(models, "replay");
    let report = replay(&records, &replay_snapshot);
    assert_eq!(report.records, 2 * half);
    assert_eq!(report.undecodable, 0);
    assert!(report.decisions > 0, "the mix must include selects");
    assert_eq!(
        report.divergent,
        0,
        "replay must be bitwise-identical; first: {:?}",
        report.divergences.first()
    );
    assert_eq!(report.energy_mape, 0.0);
    assert_eq!(report.time_mape, 0.0);
    assert_eq!(
        report.versions,
        vec![1, 2],
        "both snapshot versions must appear in the journal"
    );
    assert_eq!(report.recorded_joules_saved, report.replayed_joules_saved);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_flags_divergence_under_different_weights() {
    let dir = scratch_dir("drift");
    let models = trained_models();
    let store = Arc::new(ModelStore::new(snapshot_from(models, "v1")));
    let config = ServeConfig {
        journal: Some(obs::journal::JournalConfig::new(dir.clone())),
        ..ServeConfig::default()
    };
    let server = Server::start(config, Arc::clone(&store)).expect("bind");
    let addr = server.local_addr().to_string();
    let report = loadgen::run(&loadgen_config(addr, 200, 3, true)).expect("loadgen");
    assert_eq!(report.errors, 0.0);
    server.join();

    // Retrain from a different sample mix: replaying the journal under
    // these weights measures drift instead of proving parity.
    let spec = DeviceSpec::ga100();
    let nm = NoiseModel::default_bench();
    let sig = SignatureBuilder::new("other")
        .flops(5e12)
        .bytes(6e12)
        .build();
    let grid = DvfsGrid::for_spec(&spec);
    let samples: Vec<_> = grid
        .used()
        .iter()
        .step_by(4)
        .map(|&f| gpu_model::sample::measure(&spec, &sig, f, 0, &nm))
        .collect();
    let other = PowerTimeModels::train(&Dataset::from_samples(&spec, &samples).unwrap());

    let records = obs::journal::read_records(&dir).expect("read journal");
    let report = replay(&records, &snapshot_from(other, "other"));
    assert_eq!(report.records, 200);
    assert!(
        report.divergent > 0,
        "different weights must surface as divergences"
    );
    assert!(
        report.energy_mape > 0.0,
        "drift must show up as a non-zero MAPE"
    );
    assert!(!report.divergences.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
