//! The paper's methodology: DNN-based power/performance prediction across
//! the GPU DVFS space and performance-aware optimal-frequency selection.
//!
//! The crate wires the substrates together:
//!
//! * [`dataset`] — turns telemetry campaigns into normalized training
//!   matrices (features: `fp_active`, `dram_active`, normalized clock;
//!   targets: power / TDP and time / time-at-max, paper Section 4.3);
//! * [`models`] — the two 3x64 SELU networks (power: 100 epochs, time: 25)
//!   trained with RMSprop on MSE, plus JSON persistence;
//! * [`predictor`] — the online phase: profile an *unseen* application
//!   once at the default clock, predict its power/time/energy at every
//!   DVFS state (paper Figure 2, right half) — batch-first (one forward
//!   pass per model for the whole sweep) with a rayon fan-out for many
//!   concurrent requests;
//! * [`cache`] — a bounded LRU over normalized profiles keyed on
//!   quantized activities + device/grid identity, so repeated
//!   applications skip the forward passes entirely;
//! * [`objective`] — EDP / ED²P multi-objective scoring and the optimal
//!   frequency selection of Algorithm 1, including performance-degradation
//!   thresholds;
//! * [`evaluation`] — MAPE-based accuracy (Table 3) and
//!   energy/performance trade-off accounting (Tables 4-6);
//! * [`pipeline`] — end-to-end offline phase: collect the 21-benchmark
//!   campaign, train, return a deployable [`pipeline::TrainedPipeline`];
//! * [`capping`] — fleet-level power-cap planning over predicted profiles
//!   (a downstream use the models enable beyond the paper);
//! * [`experiments`] — one driver per paper table/figure.

pub mod cache;
pub mod capping;
pub mod dataset;
pub mod evaluation;
pub mod experiments;
pub mod models;
pub mod objective;
pub mod pipeline;
pub mod predictor;
pub mod serve;
pub mod snapshot;

pub use cache::{CacheHandle, CacheStats, ProfileCache, ShardedProfileCache};
pub use capping::{plan_under_cap, CapPlan};
pub use dataset::Dataset;
pub use models::PowerTimeModels;
pub use objective::{select_optimal, Objective};
pub use pipeline::TrainedPipeline;
pub use predictor::PredictedProfile;
pub use snapshot::{ModelSnapshot, ModelStore, SnapshotMeta};
