//! A bounded LRU cache for online-phase prediction results.
//!
//! The online phase predicts a *normalized* profile — power per
//! frequency, `T(f)/T(f_max)` per frequency, and the time ratio at the
//! default clock — from the profiled activities alone. Those activities
//! are DVFS-invariant application fingerprints, so two reference runs
//! with (nearly) the same `fp_active`/`dram_active` on the same device
//! and grid produce the same normalized profile; only the absolute-time
//! anchor differs per request. That makes the normalized profile an
//! ideal cache value: a hit skips both network forward passes and pays
//! only the per-request anchor rescale.
//!
//! Keys quantize the two activities to a configurable step (default
//! [`ProfileCache::DEFAULT_QUANTUM`]) and fingerprint the device spec
//! and frequency grid, so near-identical requests share an entry while
//! different devices or sweeps never collide. Entries computed on a miss
//! use the *bucket-center* activities, so the cached value is
//! independent of which request inside a bucket arrived first —
//! concurrent and reordered request streams stay deterministic.

use gpu_model::DeviceSpec;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: quantized activities plus a device/grid fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    fp_bucket: i64,
    dram_bucket: i64,
    context_hash: u64,
}

/// The frequency-invariant part of a predicted profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedProfile {
    /// Predicted power in watts at each grid frequency.
    pub power_w: Vec<f64>,
    /// Predicted `T(f)/T(f_max)` at each grid frequency.
    pub time_ratio: Vec<f64>,
    /// Predicted time ratio at the default clock (the anchor divisor).
    pub ratio_at_max: f64,
}

/// Hit/miss/eviction counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    value: NormalizedProfile,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<CacheKey, Slot>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe LRU cache of [`NormalizedProfile`]s.
pub struct ProfileCache {
    state: Mutex<CacheState>,
    capacity: usize,
    quantum: f64,
}

impl ProfileCache {
    /// Default activity quantization step. Activities live in `[0, 1]`,
    /// so 1e-3 gives ~a thousand buckets per axis — fine enough that
    /// bucket-center predictions track the exact ones, coarse enough
    /// that repeated runs of the same application collapse onto one
    /// entry despite measurement noise.
    pub const DEFAULT_QUANTUM: f64 = 1e-3;

    /// Creates a cache holding at most `capacity` profiles.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_quantum(capacity, Self::DEFAULT_QUANTUM)
    }

    /// Creates a cache with an explicit activity quantization step.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `quantum` is not positive.
    pub fn with_quantum(capacity: usize, quantum: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(quantum > 0.0, "activity quantum must be positive");
        Self {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            capacity,
            quantum,
        }
    }

    fn bucket(&self, activity: f64) -> i64 {
        (activity / self.quantum).round() as i64
    }

    /// Snaps an activity to the center of its quantization bucket — the
    /// value predictions are computed from on a miss.
    pub fn quantize(&self, activity: f64) -> f64 {
        self.bucket(activity) as f64 * self.quantum
    }

    /// Builds the key for a (device, activities, frequency-grid) request.
    pub fn key(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> CacheKey {
        // FNV-1a over the spec identity and the exact grid bits: a
        // different chip, TDP, default clock, or sweep must never share
        // an entry.
        fn fnv(h: u64, byte: u8) -> u64 {
            (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
        }
        fn mix(h: u64, word: u64) -> u64 {
            word.to_le_bytes().into_iter().fold(h, fnv)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = spec.arch.chip_name().bytes().fold(h, fnv);
        h = mix(h, spec.max_core_mhz.to_bits());
        h = mix(h, spec.tdp_w.to_bits());
        h = mix(h, frequencies.len() as u64);
        for &f in frequencies {
            h = mix(h, f.to_bits());
        }
        CacheKey {
            fp_bucket: self.bucket(fp_active),
            dram_bucket: self.bucket(dram_active),
            context_hash: h,
        }
    }

    /// Returns the cached profile for `key`, computing it with `fill` and
    /// inserting (evicting the least-recently-used entry if full) on a
    /// miss.
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        fill: impl FnOnce() -> NormalizedProfile,
    ) -> NormalizedProfile {
        {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(slot) = state.entries.get_mut(&key) {
                slot.last_used = tick;
                let value = slot.value.clone();
                state.stats.hits += 1;
                return value;
            }
            state.stats.misses += 1;
        }
        // Compute outside the lock so concurrent misses on different keys
        // don't serialize the (relatively expensive) forward passes.
        let value = fill();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if state.entries.len() >= self.capacity && !state.entries.contains_key(&key) {
            // Evict the least-recently-used entry. `last_used` ticks are
            // unique, so the victim is deterministic.
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                state.entries.remove(&victim);
                state.stats.evictions += 1;
            }
        }
        state
            .entries
            .entry(key)
            .or_insert(Slot {
                value: value.clone(),
                last_used: tick,
            })
            .last_used = tick;
        value
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Bridges the cache's counters into the global metrics registry:
    /// `cache.hits` / `cache.misses` / `cache.evictions` counters plus
    /// `cache.hit_rate` (zero-total guarded by [`CacheStats::hit_rate`]),
    /// `cache.evictions_per_capacity`, `cache.resident`, and
    /// `cache.capacity` gauges. Absolute values are published (the cache
    /// keeps its own counters under its existing lock), so call this
    /// once per reporting point, e.g. after a batch completes.
    pub fn publish_stats(&self) {
        let stats = self.stats();
        let reg = obs::global();
        reg.counter("cache.hits").set(stats.hits);
        reg.counter("cache.misses").set(stats.misses);
        reg.counter("cache.evictions").set(stats.evictions);
        reg.gauge("cache.hit_rate").set(stats.hit_rate());
        reg.gauge("cache.evictions_per_capacity")
            .set(stats.evictions as f64 / self.capacity as f64);
        reg.gauge("cache.resident").set(self.len() as f64);
        reg.gauge("cache.capacity").set(self.capacity as f64);
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the cache holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(tag: f64) -> NormalizedProfile {
        NormalizedProfile {
            power_w: vec![tag; 3],
            time_ratio: vec![1.0, 1.0, 1.0],
            ratio_at_max: 1.0,
        }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::ga100()
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ProfileCache::new(4);
        let grid = [510.0, 960.0, 1410.0];
        let key = cache.key(&spec(), 0.5, 0.5, &grid);
        let a = cache.get_or_insert_with(key, || profile(1.0));
        let b = cache.get_or_insert_with(key, || profile(2.0));
        // Second lookup must return the first value, not recompute.
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ProfileCache::new(2);
        let grid = [510.0, 1410.0];
        let s = spec();
        let k1 = cache.key(&s, 0.1, 0.1, &grid);
        let k2 = cache.key(&s, 0.2, 0.2, &grid);
        let k3 = cache.key(&s, 0.3, 0.3, &grid);
        cache.get_or_insert_with(k1, || profile(1.0));
        cache.get_or_insert_with(k2, || profile(2.0));
        // Touch k1 so k2 becomes the LRU victim.
        cache.get_or_insert_with(k1, || profile(-1.0));
        cache.get_or_insert_with(k3, || profile(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // k1 survived (hit), k2 was evicted (recomputes).
        let v1 = cache.get_or_insert_with(k1, || profile(-1.0));
        assert_eq!(v1.power_w[0], 1.0);
        let v2 = cache.get_or_insert_with(k2, || profile(20.0));
        assert_eq!(v2.power_w[0], 20.0);
    }

    #[test]
    fn quantization_merges_nearby_activities_only() {
        let cache = ProfileCache::with_quantum(8, 1e-3);
        let grid = [510.0, 1410.0];
        let s = spec();
        // Same bucket: within half a quantum of the center.
        assert_eq!(
            cache.key(&s, 0.5000, 0.25, &grid),
            cache.key(&s, 0.5004, 0.25, &grid)
        );
        // Across the bucket boundary: different keys.
        assert_ne!(
            cache.key(&s, 0.5004, 0.25, &grid),
            cache.key(&s, 0.5006, 0.25, &grid)
        );
        // Quantize returns the shared bucket center.
        assert!((cache.quantize(0.5004) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn device_and_grid_changes_never_collide() {
        let cache = ProfileCache::new(8);
        let ga = DeviceSpec::ga100();
        let gv = DeviceSpec::gv100();
        let grid_a = [510.0, 1410.0];
        let grid_b = [510.0, 960.0, 1410.0];
        assert_ne!(
            cache.key(&ga, 0.5, 0.5, &grid_a),
            cache.key(&gv, 0.5, 0.5, &grid_a)
        );
        assert_ne!(
            cache.key(&ga, 0.5, 0.5, &grid_a),
            cache.key(&ga, 0.5, 0.5, &grid_b)
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProfileCache::new(0);
    }

    #[test]
    fn publish_stats_bridges_into_the_global_registry() {
        let cache = ProfileCache::new(2);
        let grid = [510.0, 1410.0];
        let s = spec();
        // Idle cache: the hit-rate gauge must guard the zero-total case.
        cache.publish_stats();
        assert_eq!(obs::global().gauge("cache.hit_rate").get(), 0.0);
        // 1 miss + 1 hit per key, third key evicts.
        for (fp, repeat) in [(0.1, true), (0.2, true), (0.3, false)] {
            let k = cache.key(&s, fp, fp, &grid);
            cache.get_or_insert_with(k, || profile(fp));
            if repeat {
                cache.get_or_insert_with(k, || profile(-fp));
            }
        }
        cache.publish_stats();
        let reg = obs::global();
        assert_eq!(reg.counter("cache.hits").get(), 2);
        assert_eq!(reg.counter("cache.misses").get(), 3);
        assert_eq!(reg.counter("cache.evictions").get(), 1);
        assert_eq!(reg.gauge("cache.hit_rate").get(), 2.0 / 5.0);
        assert_eq!(reg.gauge("cache.evictions_per_capacity").get(), 0.5);
        assert_eq!(reg.gauge("cache.resident").get(), 2.0);
        assert_eq!(reg.gauge("cache.capacity").get(), 2.0);
    }
}
