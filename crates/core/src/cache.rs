//! A bounded LRU cache for online-phase prediction results.
//!
//! The online phase predicts a *normalized* profile — power per
//! frequency, `T(f)/T(f_max)` per frequency, and the time ratio at the
//! default clock — from the profiled activities alone. Those activities
//! are DVFS-invariant application fingerprints, so two reference runs
//! with (nearly) the same `fp_active`/`dram_active` on the same device
//! and grid produce the same normalized profile; only the absolute-time
//! anchor differs per request. That makes the normalized profile an
//! ideal cache value: a hit skips both network forward passes and pays
//! only the per-request anchor rescale.
//!
//! Keys quantize the two activities to a configurable step (default
//! [`ProfileCache::DEFAULT_QUANTUM`]) and fingerprint the device spec
//! and frequency grid, so near-identical requests share an entry while
//! different devices or sweeps never collide. Entries computed on a miss
//! use the *bucket-center* activities, so the cached value is
//! independent of which request inside a bucket arrived first —
//! concurrent and reordered request streams stay deterministic.

use gpu_model::DeviceSpec;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: quantized activities plus a device/grid fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    fp_bucket: i64,
    dram_bucket: i64,
    context_hash: u64,
}

impl CacheKey {
    /// A stable 64-bit mix of all three key fields, used to pick a shard
    /// in [`ShardedProfileCache`]. Deliberately *not* `std::hash::Hash`
    /// (whose `DefaultHasher` output is unspecified across releases):
    /// shard placement — and therefore per-shard LRU eviction order —
    /// stays reproducible run to run.
    pub fn shard_hash(&self) -> u64 {
        fn mix(h: u64, word: u64) -> u64 {
            // FNV-1a over the word's bytes.
            word.to_le_bytes().into_iter().fold(h, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            })
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, self.fp_bucket as u64);
        h = mix(h, self.dram_bucket as u64);
        h = mix(h, self.context_hash);
        h
    }
}

/// The frequency-invariant part of a predicted profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedProfile {
    /// Predicted power in watts at each grid frequency.
    pub power_w: Vec<f64>,
    /// Predicted `T(f)/T(f_max)` at each grid frequency.
    pub time_ratio: Vec<f64>,
    /// Predicted time ratio at the default clock (the anchor divisor).
    pub ratio_at_max: f64,
}

/// Hit/miss/eviction counters, readable at any time.
///
/// Every copy handed out by [`ProfileCache::stats`] is snapshotted while
/// the cache's single state lock is held, so the counters are mutually
/// consistent: `lookups == hits + misses` always holds, even while other
/// threads are mid-lookup. (An earlier sketch kept the counters in
/// independent atomics, which let a reader observe `hits + misses`
/// disagreeing with the lookup total under concurrent load.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups (always `hits + misses`).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute and insert.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    ///
    /// Clamped to `0.0` before any lookup — the naive `hits / lookups`
    /// would be `0/0 = NaN`, which poisons every gauge arithmetic
    /// downstream (NaN compares false with everything, so an alert on
    /// `hit_rate < threshold` would silently never fire).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Element-wise sum, for aggregating per-shard snapshots.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups + other.lookups,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

struct Slot {
    value: NormalizedProfile,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<CacheKey, Slot>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe LRU cache of [`NormalizedProfile`]s.
pub struct ProfileCache {
    state: Mutex<CacheState>,
    capacity: usize,
    quantum: f64,
}

impl ProfileCache {
    /// Default activity quantization step. Activities live in `[0, 1]`,
    /// so 1e-3 gives ~a thousand buckets per axis — fine enough that
    /// bucket-center predictions track the exact ones, coarse enough
    /// that repeated runs of the same application collapse onto one
    /// entry despite measurement noise.
    pub const DEFAULT_QUANTUM: f64 = 1e-3;

    /// Creates a cache holding at most `capacity` profiles.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_quantum(capacity, Self::DEFAULT_QUANTUM)
    }

    /// Creates a cache with an explicit activity quantization step.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `quantum` is not positive.
    pub fn with_quantum(capacity: usize, quantum: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(quantum > 0.0, "activity quantum must be positive");
        Self {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            capacity,
            quantum,
        }
    }

    fn bucket(&self, activity: f64) -> i64 {
        (activity / self.quantum).round() as i64
    }

    /// Snaps an activity to the center of its quantization bucket — the
    /// value predictions are computed from on a miss.
    pub fn quantize(&self, activity: f64) -> f64 {
        self.bucket(activity) as f64 * self.quantum
    }

    /// Builds the key for a (device, activities, frequency-grid) request.
    pub fn key(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> CacheKey {
        // FNV-1a over the spec identity and the exact grid bits: a
        // different chip, TDP, default clock, or sweep must never share
        // an entry.
        fn fnv(h: u64, byte: u8) -> u64 {
            (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
        }
        fn mix(h: u64, word: u64) -> u64 {
            word.to_le_bytes().into_iter().fold(h, fnv)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = spec.arch.chip_name().bytes().fold(h, fnv);
        h = mix(h, spec.max_core_mhz.to_bits());
        h = mix(h, spec.tdp_w.to_bits());
        h = mix(h, frequencies.len() as u64);
        for &f in frequencies {
            h = mix(h, f.to_bits());
        }
        CacheKey {
            fp_bucket: self.bucket(fp_active),
            dram_bucket: self.bucket(dram_active),
            context_hash: h,
        }
    }

    /// Returns the cached profile for `key`, computing it with `fill` and
    /// inserting (evicting the least-recently-used entry if full) on a
    /// miss.
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        fill: impl FnOnce() -> NormalizedProfile,
    ) -> NormalizedProfile {
        {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            // `lookups` moves in the same critical section as the
            // hit/miss counter it classifies, so `stats()` can never
            // observe `lookups != hits + misses`.
            state.stats.lookups += 1;
            if let Some(slot) = state.entries.get_mut(&key) {
                slot.last_used = tick;
                let value = slot.value.clone();
                state.stats.hits += 1;
                return value;
            }
            state.stats.misses += 1;
        }
        // Compute outside the lock so concurrent misses on different keys
        // don't serialize the (relatively expensive) forward passes.
        let value = fill();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if state.entries.len() >= self.capacity && !state.entries.contains_key(&key) {
            // Evict the least-recently-used entry. `last_used` ticks are
            // unique, so the victim is deterministic.
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                state.entries.remove(&victim);
                state.stats.evictions += 1;
            }
        }
        state
            .entries
            .entry(key)
            .or_insert(Slot {
                value: value.clone(),
                last_used: tick,
            })
            .last_used = tick;
        value
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Accounts `n` lookups answered by a layer *in front of* this cache
    /// (the serve workers keep a per-snapshot serialized-reply cache
    /// whose hits never reach the shards). Booked as `n` lookups + `n`
    /// hits in one critical section, so the `lookups == hits + misses`
    /// invariant and the published hit rate stay truthful about the
    /// request stream as a whole.
    pub fn record_front_hits(&self, n: u64) {
        let mut state = self.state.lock();
        state.stats.lookups += n;
        state.stats.hits += n;
    }

    /// Bridges the cache's counters into the global metrics registry:
    /// `cache.lookups` / `cache.hits` / `cache.misses` /
    /// `cache.evictions` counters plus `cache.hit_rate` (zero-total
    /// guarded by [`CacheStats::hit_rate`]),
    /// `cache.evictions_per_capacity`, `cache.resident`, and
    /// `cache.capacity` gauges. Absolute values are published (the cache
    /// keeps its own counters under its existing lock), so call this
    /// once per reporting point, e.g. after a batch completes. Safe on a
    /// completely idle cache: every gauge is finite.
    pub fn publish_stats(&self) {
        publish_cache_stats(&self.stats(), self.len(), self.capacity);
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the cache holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }
}

/// Publishes one cache-stats snapshot under the shared `cache.*` metric
/// names (used by both the flat and the sharded cache, so dashboards see
/// one set of names regardless of topology).
fn publish_cache_stats(stats: &CacheStats, resident: usize, capacity: usize) {
    let reg = obs::global();
    reg.counter("cache.lookups").set(stats.lookups);
    reg.counter("cache.hits").set(stats.hits);
    reg.counter("cache.misses").set(stats.misses);
    reg.counter("cache.evictions").set(stats.evictions);
    reg.gauge("cache.hit_rate").set(stats.hit_rate());
    reg.gauge("cache.evictions_per_capacity")
        .set(stats.evictions as f64 / capacity.max(1) as f64);
    reg.gauge("cache.resident").set(resident as f64);
    reg.gauge("cache.capacity").set(capacity as f64);
}

/// The lookup surface the online predictor needs from a profile cache.
///
/// Implemented by both the flat [`ProfileCache`] and the
/// [`ShardedProfileCache`], so `Predictor::predict_from_reference_cached`
/// and friends work unchanged against either topology.
pub trait CacheHandle: Sync {
    /// Builds the key for a (device, activities, frequency-grid) request.
    fn key(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> CacheKey;

    /// Snaps an activity to the center of its quantization bucket.
    fn quantize(&self, activity: f64) -> f64;

    /// Returns the cached profile for `key`, computing and inserting on a
    /// miss.
    fn get_or_insert_with<F: FnOnce() -> NormalizedProfile>(
        &self,
        key: CacheKey,
        fill: F,
    ) -> NormalizedProfile;
}

impl CacheHandle for ProfileCache {
    fn key(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> CacheKey {
        ProfileCache::key(self, spec, fp_active, dram_active, frequencies)
    }

    fn quantize(&self, activity: f64) -> f64 {
        ProfileCache::quantize(self, activity)
    }

    fn get_or_insert_with<F: FnOnce() -> NormalizedProfile>(
        &self,
        key: CacheKey,
        fill: F,
    ) -> NormalizedProfile {
        ProfileCache::get_or_insert_with(self, key, fill)
    }
}

/// N independent [`ProfileCache`] shards picked by a stable hash of the
/// quantized cache key.
///
/// Each shard has its own lock, so concurrent server workers serving
/// different applications never contend on a global cache mutex; a
/// lookup touches exactly one shard. Shard placement is a pure function
/// of the key ([`CacheKey::shard_hash`]), so a request stream produces
/// the same residency regardless of which worker serves which request.
pub struct ShardedProfileCache {
    shards: Box<[ProfileCache]>,
}

impl ShardedProfileCache {
    /// Creates a cache of `shards` shards holding at most `capacity`
    /// profiles in total (split evenly, rounded up per shard).
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_quantum(capacity, shards, ProfileCache::DEFAULT_QUANTUM)
    }

    /// Creates a sharded cache with an explicit activity quantization
    /// step (shared by every shard — keys are topology-independent).
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero, or `quantum` is not
    /// positive.
    pub fn with_quantum(capacity: usize, shards: usize, quantum: f64) -> Self {
        assert!(shards > 0, "cache shard count must be positive");
        assert!(capacity > 0, "cache capacity must be positive");
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| ProfileCache::with_quantum(per_shard, quantum))
                .collect(),
        }
    }

    fn shard(&self, key: CacheKey) -> &ProfileCache {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    /// Number of cached profiles across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no shard holds a profile.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Aggregated counters.
    ///
    /// Each per-shard snapshot is taken under that shard's lock, so it is
    /// internally consistent (`lookups == hits + misses`); the sums
    /// therefore preserve the invariant even though the shards are read
    /// at slightly different instants.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(&s.stats()))
    }

    /// Publishes the aggregated counters under the same `cache.*` names
    /// as [`ProfileCache::publish_stats`], plus a `cache.shards` gauge.
    pub fn publish_stats(&self) {
        publish_cache_stats(&self.stats(), self.len(), self.capacity());
        obs::global()
            .gauge("cache.shards")
            .set(self.shards.len() as f64);
    }

    /// Drops all entries in every shard (counters are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.clear();
        }
    }

    /// Accounts `n` front-layer hits (see
    /// [`ProfileCache::record_front_hits`]); booked on shard 0 so the
    /// single-shard invariant carries over to the aggregate.
    pub fn record_front_hits(&self, n: u64) {
        self.shards[0].record_front_hits(n);
    }
}

impl CacheHandle for ShardedProfileCache {
    fn key(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> CacheKey {
        // Keys are quantization + fingerprint only, identical across
        // shards; shard 0 stands in for all of them.
        self.shards[0].key(spec, fp_active, dram_active, frequencies)
    }

    fn quantize(&self, activity: f64) -> f64 {
        self.shards[0].quantize(activity)
    }

    fn get_or_insert_with<F: FnOnce() -> NormalizedProfile>(
        &self,
        key: CacheKey,
        fill: F,
    ) -> NormalizedProfile {
        self.shard(key).get_or_insert_with(key, fill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(tag: f64) -> NormalizedProfile {
        NormalizedProfile {
            power_w: vec![tag; 3],
            time_ratio: vec![1.0, 1.0, 1.0],
            ratio_at_max: 1.0,
        }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::ga100()
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ProfileCache::new(4);
        let grid = [510.0, 960.0, 1410.0];
        let key = cache.key(&spec(), 0.5, 0.5, &grid);
        let a = cache.get_or_insert_with(key, || profile(1.0));
        let b = cache.get_or_insert_with(key, || profile(2.0));
        // Second lookup must return the first value, not recompute.
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.lookups, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_before_any_lookup() {
        // Regression: `hits / lookups` on an idle cache is 0/0; the
        // accessor must clamp it to 0.0 — a NaN here silently disables
        // every downstream `hit_rate < x` comparison.
        let idle = ProfileCache::new(4).stats();
        assert_eq!(idle.hit_rate(), 0.0);
        assert!(!idle.hit_rate().is_nan());
        let sharded = ShardedProfileCache::new(8, 4);
        assert_eq!(sharded.stats().hit_rate(), 0.0);
        // And publishing from the idle caches keeps every gauge finite.
        sharded.publish_stats();
        assert!(obs::global().gauge("cache.hit_rate").get().is_finite());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ProfileCache::new(2);
        let grid = [510.0, 1410.0];
        let s = spec();
        let k1 = cache.key(&s, 0.1, 0.1, &grid);
        let k2 = cache.key(&s, 0.2, 0.2, &grid);
        let k3 = cache.key(&s, 0.3, 0.3, &grid);
        cache.get_or_insert_with(k1, || profile(1.0));
        cache.get_or_insert_with(k2, || profile(2.0));
        // Touch k1 so k2 becomes the LRU victim.
        cache.get_or_insert_with(k1, || profile(-1.0));
        cache.get_or_insert_with(k3, || profile(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // k1 survived (hit), k2 was evicted (recomputes).
        let v1 = cache.get_or_insert_with(k1, || profile(-1.0));
        assert_eq!(v1.power_w[0], 1.0);
        let v2 = cache.get_or_insert_with(k2, || profile(20.0));
        assert_eq!(v2.power_w[0], 20.0);
    }

    #[test]
    fn quantization_merges_nearby_activities_only() {
        let cache = ProfileCache::with_quantum(8, 1e-3);
        let grid = [510.0, 1410.0];
        let s = spec();
        // Same bucket: within half a quantum of the center.
        assert_eq!(
            cache.key(&s, 0.5000, 0.25, &grid),
            cache.key(&s, 0.5004, 0.25, &grid)
        );
        // Across the bucket boundary: different keys.
        assert_ne!(
            cache.key(&s, 0.5004, 0.25, &grid),
            cache.key(&s, 0.5006, 0.25, &grid)
        );
        // Quantize returns the shared bucket center.
        assert!((cache.quantize(0.5004) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn device_and_grid_changes_never_collide() {
        let cache = ProfileCache::new(8);
        let ga = DeviceSpec::ga100();
        let gv = DeviceSpec::gv100();
        let grid_a = [510.0, 1410.0];
        let grid_b = [510.0, 960.0, 1410.0];
        assert_ne!(
            cache.key(&ga, 0.5, 0.5, &grid_a),
            cache.key(&gv, 0.5, 0.5, &grid_a)
        );
        assert_ne!(
            cache.key(&ga, 0.5, 0.5, &grid_a),
            cache.key(&ga, 0.5, 0.5, &grid_b)
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProfileCache::new(0);
    }

    #[test]
    fn publish_stats_bridges_into_the_global_registry() {
        let cache = ProfileCache::new(2);
        let grid = [510.0, 1410.0];
        let s = spec();
        // Idle cache: the hit-rate gauge must guard the zero-total case.
        cache.publish_stats();
        assert_eq!(obs::global().gauge("cache.hit_rate").get(), 0.0);
        // 1 miss + 1 hit per key, third key evicts.
        for (fp, repeat) in [(0.1, true), (0.2, true), (0.3, false)] {
            let k = cache.key(&s, fp, fp, &grid);
            cache.get_or_insert_with(k, || profile(fp));
            if repeat {
                cache.get_or_insert_with(k, || profile(-fp));
            }
        }
        cache.publish_stats();
        let reg = obs::global();
        assert_eq!(reg.counter("cache.lookups").get(), 5);
        assert_eq!(reg.counter("cache.hits").get(), 2);
        assert_eq!(reg.counter("cache.misses").get(), 3);
        assert_eq!(reg.counter("cache.evictions").get(), 1);
        assert_eq!(reg.gauge("cache.hit_rate").get(), 2.0 / 5.0);
        assert_eq!(reg.gauge("cache.evictions_per_capacity").get(), 0.5);
        assert_eq!(reg.gauge("cache.resident").get(), 2.0);
        assert_eq!(reg.gauge("cache.capacity").get(), 2.0);
    }

    #[test]
    fn sharded_cache_spreads_keys_and_serves_like_flat() {
        let sharded = ShardedProfileCache::new(64, 8);
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.capacity(), 64);
        let s = spec();
        let grid = [510.0, 1410.0];
        // Many distinct keys: placement must use more than one shard, and
        // every key must round-trip its own value.
        for i in 0..32 {
            let fp = i as f64 / 32.0;
            let k = CacheHandle::key(&sharded, &s, fp, 1.0 - fp, &grid);
            let v = sharded.get_or_insert_with(k, || profile(fp));
            assert_eq!(v.power_w[0], fp);
            let again = sharded.get_or_insert_with(k, || profile(-1.0));
            assert_eq!(again.power_w[0], fp, "hit must not recompute");
        }
        let touched = (0..sharded.num_shards())
            .filter(|&i| !sharded.shards[i].is_empty())
            .count();
        assert!(touched > 1, "all 32 keys landed in one shard");
        let stats = sharded.stats();
        assert_eq!((stats.hits, stats.misses), (32, 32));
        assert_eq!(stats.lookups, 64);
        assert_eq!(sharded.len(), 32);
        // Shard placement is a pure function of the key.
        let k = CacheHandle::key(&sharded, &s, 0.25, 0.75, &grid);
        assert!(std::ptr::eq(sharded.shard(k), sharded.shard(k)));
    }

    #[test]
    fn concurrent_stats_snapshots_stay_consistent() {
        // The satellite bug this guards: counters read non-atomically
        // relative to each other let `hits + misses` disagree with
        // `lookups` while writers are mid-lookup. Hammer a sharded cache
        // from several threads while a sampler thread asserts the
        // invariant on every snapshot it takes.
        let cache = std::sync::Arc::new(ShardedProfileCache::new(32, 4));
        let s = spec();
        let grid = [510.0, 960.0, 1410.0];
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let sref = &s;
                let gref = &grid;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        // 64 distinct keys over a 32-entry cache: steady
                        // mix of hits, misses, and evictions.
                        let fp = ((i * 7 + t * 13) % 64) as f64 / 64.0;
                        let k = CacheHandle::key(&*cache, sref, fp, fp, gref);
                        let _ = cache.get_or_insert_with(k, || profile(fp));
                    }
                });
            }
            let sampler = {
                let cache = std::sync::Arc::clone(&cache);
                let stop = std::sync::Arc::clone(&stop);
                scope.spawn(move || {
                    let mut samples = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let st = cache.stats();
                        assert_eq!(
                            st.lookups,
                            st.hits + st.misses,
                            "torn stats snapshot: {st:?}"
                        );
                        assert!(!st.hit_rate().is_nan());
                        samples += 1;
                    }
                    samples
                })
            };
            // Scope drops worker handles first; signal the sampler once
            // the workers are done by joining them explicitly.
            // (Workers were moved into the scope — spawn order above —
            // so just wait for the writers via a final barrier lookup.)
            std::thread::sleep(std::time::Duration::from_millis(30));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let samples = sampler.join().expect("sampler panicked");
            assert!(samples > 0, "sampler never ran");
        });
        let end = cache.stats();
        assert_eq!(end.lookups, 4 * 2_000);
        assert_eq!(end.lookups, end.hits + end.misses);
    }
}
