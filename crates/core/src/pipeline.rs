//! End-to-end offline phase: collect the training campaign, train the
//! models, hand back a deployable pipeline (paper Figure 2, left half).

use crate::dataset::Dataset;
use crate::models::PowerTimeModels;
use crate::predictor::Predictor;
use gpu_model::{DeviceSpec, MetricSample, PhasedWorkload};
use kernels::suite::training_suite;
use telemetry::{CollectionCampaign, GpuBackend, LaunchConfig, SimulatorBackend};

/// How many runs per (workload, frequency) point the campaign takes
/// (the paper executes each workload three times).
pub const RUNS_PER_POINT: u32 = 3;

/// A trained, deployable pipeline: models + the spec they were trained on.
pub struct TrainedPipeline {
    /// The trained power and time models.
    pub models: PowerTimeModels,
    /// The device the training campaign ran on.
    pub train_spec: DeviceSpec,
    /// The raw campaign samples (kept for the feature-characterization
    /// experiments).
    pub samples: Vec<MetricSample>,
    /// The normalized dataset the models were fitted on.
    pub dataset: Dataset,
}

impl TrainedPipeline {
    /// Runs the full offline phase on `backend` with the paper's
    /// 21-benchmark suite and run count. `stride` subsamples the frequency
    /// grid (1 = every used state, the paper's setting; larger strides
    /// speed up tests).
    pub fn train_on<B: GpuBackend + ?Sized>(backend: &B, stride: usize) -> Self {
        let spec = backend.spec().clone();
        let workloads: Vec<PhasedWorkload> =
            training_suite().iter().map(|k| k.workload(&spec)).collect();
        Self::train_on_workloads(backend, &workloads, stride)
    }

    /// Offline phase with an explicit workload list.
    pub fn train_on_workloads<B: GpuBackend + ?Sized>(
        backend: &B,
        workloads: &[PhasedWorkload],
        stride: usize,
    ) -> Self {
        obs::span!("pipeline");
        let spec = backend.spec().clone();
        let mut freqs: Vec<f64> = backend
            .grid()
            .used()
            .into_iter()
            .step_by(stride.max(1))
            .collect();
        // The default clock must be present (exactly — `Dataset` matches
        // `sm_app_clock == max_core_mhz` for normalization). Comparing the
        // last stride-subsampled frequency with exact `!=` would duplicate
        // the point whenever accumulated grid arithmetic leaves it within
        // float error of the maximum, so dedup with a tolerance well below
        // the grid step before appending the exact value.
        let tol = spec.step_mhz.max(1.0) * 1e-6;
        freqs.retain(|&f| (f - spec.max_core_mhz).abs() > tol);
        freqs.push(spec.max_core_mhz);
        let config = LaunchConfig {
            frequencies: freqs,
            runs: RUNS_PER_POINT,
            output: None,
            threads: 0,
        };
        // Each phase publishes its wall time as a gauge so a dashboard
        // (or `dvfs obs`) can see where an offline run spends its time
        // without digging through span histograms.
        let t0 = std::time::Instant::now();
        let samples = {
            obs::span!("campaign");
            CollectionCampaign::new(backend, config)
                .collect(workloads)
                .expect("in-memory campaign cannot fail on IO")
        };
        obs::global()
            .gauge("pipeline.campaign_s")
            .set(t0.elapsed().as_secs_f64());
        let t1 = std::time::Instant::now();
        let dataset = {
            obs::span!("dataset");
            Dataset::from_samples(&spec, &samples).expect("campaign covers the default clock")
        };
        obs::global()
            .gauge("pipeline.dataset_s")
            .set(t1.elapsed().as_secs_f64());
        // Timeline marker between the campaign and training phases: how
        // much data the fit is about to see (the phase spans themselves
        // land on the trace via the span hook).
        obs::trace::instant(
            obs::trace::intern("pipeline.dataset_ready"),
            &[
                (
                    obs::trace::intern("rows"),
                    obs::trace::ArgValue::U64(dataset.len() as u64),
                ),
                (
                    obs::trace::intern("samples"),
                    obs::trace::ArgValue::U64(samples.len() as u64),
                ),
            ],
        );
        let t2 = std::time::Instant::now();
        let models = {
            obs::span!("train");
            PowerTimeModels::train(&dataset)
        };
        obs::global()
            .gauge("pipeline.train_s")
            .set(t2.elapsed().as_secs_f64());
        Self {
            models,
            train_spec: spec,
            samples,
            dataset,
        }
    }

    /// Convenience: the paper's full GA100 offline phase.
    pub fn paper_ga100() -> Self {
        let backend = SimulatorBackend::ga100();
        Self::train_on(&backend, 1)
    }

    /// A predictor bound to `spec` (use the training spec for same-device
    /// prediction, or another spec for the portability study).
    pub fn predictor(&self, spec: DeviceSpec) -> Predictor<'_> {
        Predictor::new(&self.models, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::SignatureBuilder;

    fn quick_pipeline() -> (SimulatorBackend, TrainedPipeline) {
        let backend = SimulatorBackend::ga100();
        // Stride 6 over the grid keeps the test fast while covering the
        // frequency range.
        let workloads: Vec<PhasedWorkload> = vec![
            PhasedWorkload::single(
                SignatureBuilder::new("c")
                    .flops(2e13)
                    .bytes(2e11)
                    .kappa_compute(0.9)
                    .build(),
            ),
            PhasedWorkload::single(
                SignatureBuilder::new("m")
                    .flops(2e11)
                    .bytes(2e13)
                    .kappa_memory(0.85)
                    .build(),
            ),
            PhasedWorkload::single(SignatureBuilder::new("x").flops(8e12).bytes(3e12).build()),
            PhasedWorkload::single(
                SignatureBuilder::new("y")
                    .flops(3e12)
                    .bytes(1e12)
                    .kappa_compute(0.5)
                    .build(),
            ),
        ];
        let p = TrainedPipeline::train_on_workloads(&backend, &workloads, 3);
        (backend, p)
    }

    #[test]
    fn campaign_produces_expected_row_count() {
        let (_, p) = quick_pipeline();
        // 21 frequencies (stride 3 over 61) x 4 workloads x 3 runs, and
        // FeatureMode::Both doubles the dataset rows.
        assert_eq!(p.samples.len(), 21 * 4 * 3);
        assert_eq!(p.dataset.len(), 2 * p.samples.len());
    }

    #[test]
    fn trained_pipeline_predicts_unseen_app() {
        let (backend, p) = quick_pipeline();
        let app = PhasedWorkload::single(
            SignatureBuilder::new("unseen")
                .flops(1e13)
                .bytes(1e12)
                .build(),
        );
        let predictor = p.predictor(p.train_spec.clone());
        let profile = predictor.predict_online(&backend, &app);
        assert_eq!(profile.frequencies.len(), 61);
        let measured = crate::predictor::measured_profile(&backend, &app);
        let mape = nn::metrics::mape(&profile.power_w, &measured.power_w);
        assert!(mape < 12.0, "power MAPE {mape:.1}%");
    }

    #[test]
    fn pipeline_phases_record_spans() {
        let (_, _p) = quick_pipeline();
        for path in [
            "pipeline",
            "pipeline/campaign",
            "pipeline/dataset",
            "pipeline/train",
            // Power fit: inline on the caller, under the open span tree.
            "pipeline/train/fit/epoch",
            // Time fit: grafted under the same parent by train_with.
            "pipeline/train/time/fit/epoch",
        ] {
            assert!(obs::span::stat(path).is_some(), "missing span `{path}`");
        }
    }

    #[test]
    fn pipeline_phases_publish_wall_time_gauges() {
        let (_, _p) = quick_pipeline();
        for gauge in [
            "pipeline.campaign_s",
            "pipeline.dataset_s",
            "pipeline.train_s",
        ] {
            let v = obs::global().gauge(gauge).get();
            assert!(v > 0.0, "gauge `{gauge}` not published (got {v})");
        }
    }

    #[test]
    fn dataset_includes_default_clock_rows() {
        let (_, p) = quick_pipeline();
        let has_max = p
            .samples
            .iter()
            .any(|s| s.sm_app_clock == p.train_spec.max_core_mhz);
        assert!(has_max);
    }
}
