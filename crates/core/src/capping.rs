//! Fleet power capping on top of predicted profiles.
//!
//! Once per-application power/time profiles exist (measured or predicted),
//! node- or rack-level questions become cheap searches. This module solves
//! the classic one: choose one frequency per GPU so the group stays under a
//! power budget with the least performance damage. The planner is a greedy
//! marginal-cost descent — at each step it downclocks the GPU whose next
//! grid step costs the least *normalized slowdown per watt saved* — which
//! is optimal for convex power/time trade-off curves and near-optimal for
//! the mildly non-convex profiles real applications produce.

use crate::predictor::PredictedProfile;
use serde::{Deserialize, Serialize};

/// One GPU's assignment in a cap plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Application name.
    pub workload: String,
    /// Chosen frequency (MHz).
    pub frequency_mhz: f64,
    /// Index into the profile's frequency list.
    pub index: usize,
    /// Power at the chosen point (W).
    pub power_w: f64,
    /// Predicted slowdown vs the default clock (fraction, >= 0).
    pub slowdown: f64,
}

/// The result of planning a power cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapPlan {
    /// One assignment per input profile, in input order.
    pub assignments: Vec<Assignment>,
    /// Total power of the plan (W).
    pub total_power_w: f64,
    /// Whether the plan meets the requested cap (false only when every GPU
    /// is already at its floor and the cap is still exceeded).
    pub feasible: bool,
}

impl CapPlan {
    /// Worst per-GPU slowdown in the plan.
    pub fn worst_slowdown(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.slowdown)
            .fold(0.0, f64::max)
    }
}

/// Plans frequencies for a group of GPUs under a shared power cap.
///
/// # Panics
/// Panics if `profiles` is empty or any profile has an empty grid.
pub fn plan_under_cap(profiles: &[&PredictedProfile], cap_w: f64) -> CapPlan {
    assert!(!profiles.is_empty(), "cannot plan an empty fleet");
    for p in profiles {
        assert!(!p.frequencies.is_empty(), "{}: empty profile", p.workload);
    }
    let mut idx: Vec<usize> = profiles.iter().map(|p| p.max_freq_index()).collect();

    let draw =
        |idx: &[usize]| -> f64 { idx.iter().zip(profiles).map(|(&i, p)| p.power_w[i]).sum() };

    let mut feasible = true;
    while draw(&idx) > cap_w {
        // Cheapest next downclock: least added slowdown per watt saved.
        let mut best: Option<(usize, f64)> = None;
        for (g, p) in profiles.iter().enumerate() {
            let i = idx[g];
            if i == 0 {
                continue;
            }
            let d_power = p.power_w[i] - p.power_w[i - 1];
            if d_power <= 0.0 {
                continue;
            }
            let t_ref = p.time_s[p.max_freq_index()];
            let d_time = (p.time_s[i - 1] - p.time_s[i]).max(0.0) / t_ref;
            let cost = d_time / d_power;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((g, cost));
            }
        }
        match best {
            Some((g, _)) => idx[g] -= 1,
            None => {
                feasible = false;
                break;
            }
        }
    }

    let assignments = idx
        .iter()
        .zip(profiles)
        .map(|(&i, p)| Assignment {
            workload: p.workload.clone(),
            frequency_mhz: p.frequencies[i],
            index: i,
            power_w: p.power_w[i],
            slowdown: p.time_change_at(i).max(0.0),
        })
        .collect();
    CapPlan {
        total_power_w: draw(&idx),
        assignments,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, p_scale: f64, steep: f64) -> PredictedProfile {
        let frequencies: Vec<f64> = (0..21).map(|i| 510.0 + 45.0 * i as f64).collect();
        let fmax = *frequencies.last().unwrap();
        let time_s: Vec<f64> = frequencies
            .iter()
            .map(|&f| (fmax / f).powf(steep))
            .collect();
        let power_w: Vec<f64> = frequencies
            .iter()
            .map(|&f| p_scale * (100.0 + 400.0 * (f / fmax).powi(2)))
            .collect();
        let energy_j: Vec<f64> = power_w.iter().zip(&time_s).map(|(&p, &t)| p * t).collect();
        PredictedProfile {
            workload: name.into(),
            frequencies,
            power_w,
            time_s,
            energy_j,
        }
    }

    #[test]
    fn loose_cap_keeps_default_clocks() {
        let a = profile("a", 1.0, 1.0);
        let b = profile("b", 1.0, 0.2);
        let plan = plan_under_cap(&[&a, &b], 10_000.0);
        assert!(plan.feasible);
        assert!(plan.assignments.iter().all(|x| x.frequency_mhz == 1410.0));
        assert_eq!(plan.worst_slowdown(), 0.0);
    }

    #[test]
    fn cap_is_respected_when_feasible() {
        let a = profile("a", 1.0, 1.0);
        let b = profile("b", 1.0, 0.2);
        let cap = 700.0;
        let plan = plan_under_cap(&[&a, &b], cap);
        assert!(plan.feasible);
        assert!(plan.total_power_w <= cap);
    }

    #[test]
    fn dvfs_insensitive_gpu_is_downclocked_first() {
        // b's time barely reacts to frequency (steep 0.1): the greedy
        // planner should throttle it before the steep one.
        let a = profile("steep", 1.0, 1.5);
        let b = profile("flat", 1.0, 0.1);
        let plan = plan_under_cap(&[&a, &b], 900.0);
        assert!(plan.feasible);
        assert!(
            plan.assignments[1].frequency_mhz < plan.assignments[0].frequency_mhz,
            "flat app should take the downclock: {:?}",
            plan.assignments
        );
    }

    #[test]
    fn impossible_cap_reports_infeasible_at_floor() {
        let a = profile("a", 1.0, 1.0);
        let plan = plan_under_cap(&[&a], 10.0);
        assert!(!plan.feasible);
        assert_eq!(plan.assignments[0].index, 0);
    }

    #[test]
    fn slowdowns_are_nonnegative_and_monotone_with_cap() {
        let a = profile("a", 1.0, 1.0);
        let b = profile("b", 2.0, 0.5);
        let loose = plan_under_cap(&[&a, &b], 1400.0);
        let tight = plan_under_cap(&[&a, &b], 900.0);
        assert!(tight.worst_slowdown() >= loose.worst_slowdown());
        assert!(loose.assignments.iter().all(|x| x.slowdown >= 0.0));
    }

    #[test]
    #[should_panic(expected = "empty fleet")]
    fn empty_fleet_panics() {
        let _ = plan_under_cap(&[], 100.0);
    }
}
