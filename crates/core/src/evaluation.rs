//! Evaluation utilities: MAPE-based accuracy and the four-way selector
//! comparison (M-EDP / P-EDP / M-ED²P / P-ED²P) used by Tables 3–5.

use crate::objective::{Objective, Selection};
use crate::predictor::PredictedProfile;
use nn::metrics;
use serde::{Deserialize, Serialize};

/// Model accuracy for one application on one device (a Table 3 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Application name.
    pub application: String,
    /// Power-model accuracy in percent (`100 - MAPE`).
    pub power_accuracy: f64,
    /// Time-model accuracy in percent.
    pub time_accuracy: f64,
}

/// Computes the Table 3 accuracy row from a measured and a predicted
/// profile over the same frequency grid, and feeds the pairs into the
/// global model-quality monitors (so every evaluation keeps the rolling
/// drift statistics fresh).
///
/// # Panics
/// Panics if the two profiles cover different frequency lists.
pub fn accuracy_row(measured: &PredictedProfile, predicted: &PredictedProfile) -> AccuracyRow {
    record_ground_truth(measured, predicted);
    AccuracyRow {
        application: measured.workload.clone(),
        power_accuracy: metrics::accuracy_from_mape(&predicted.power_w, &measured.power_w),
        time_accuracy: metrics::accuracy_from_mape(
            &predicted.normalized_time(),
            &measured.normalized_time(),
        ),
    }
}

/// Feeds one predicted-vs-measured profile pair into the global
/// [`obs::quality`] monitors: the `power` monitor sees per-frequency
/// watts, the `time` monitor sees per-frequency *normalized* times (the
/// quantity the paper's Figure 8 accuracy is computed on, so the alert
/// band is directly comparable to its tables). Each monitor keeps a
/// rolling MAPE/max-APE and fires its drift alert once per crossing of
/// the 12% band.
///
/// # Panics
/// Panics if the two profiles cover different frequency lists.
pub fn record_ground_truth(measured: &PredictedProfile, predicted: &PredictedProfile) {
    assert_eq!(
        measured.frequencies, predicted.frequencies,
        "profiles must cover the same grid"
    );
    obs::quality::monitor("power").observe_profile(&predicted.power_w, &measured.power_w);
    obs::quality::monitor("time")
        .observe_profile(&predicted.normalized_time(), &measured.normalized_time());
}

/// One application's four optimal frequencies (a Table 4 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionRow {
    /// Application name.
    pub application: String,
    /// Measured-data ED²P selection.
    pub m_ed2p: Selection,
    /// Predicted-data ED²P selection.
    pub p_ed2p: Selection,
    /// Measured-data EDP selection.
    pub m_edp: Selection,
    /// Predicted-data EDP selection.
    pub p_edp: Selection,
}

/// Runs all four selectors for one application.
pub fn four_way_selection(
    measured: &PredictedProfile,
    predicted: &PredictedProfile,
) -> SelectionRow {
    SelectionRow {
        application: measured.workload.clone(),
        m_ed2p: measured.select(Objective::Ed2p, None),
        p_ed2p: predicted.select(Objective::Ed2p, None),
        m_edp: measured.select(Objective::Edp, None),
        p_edp: predicted.select(Objective::Edp, None),
    }
}

/// Energy/time change of one selector choice, *evaluated on measured
/// data* (what actually happens if you deploy the chosen frequency),
/// relative to the default clock. This is how the paper's Table 5 scores
/// both M- and P- selections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeOff {
    /// Energy saving in percent (positive = saved energy).
    pub energy_saving_pct: f64,
    /// Execution-time change in percent (negative = performance loss,
    /// matching the paper's sign convention in Table 5).
    pub time_change_pct: f64,
}

/// Evaluates a chosen frequency index against the measured profile.
pub fn trade_off(measured: &PredictedProfile, index: usize) -> TradeOff {
    TradeOff {
        energy_saving_pct: 100.0 * measured.energy_saving_at(index),
        // Paper sign convention: negative values indicate performance loss.
        time_change_pct: -100.0 * measured.time_change_at(index),
    }
}

/// A full Table 5 row: the four selectors' trade-offs for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeOffRow {
    /// Application name.
    pub application: String,
    /// Measured-ED²P outcome.
    pub m_ed2p: TradeOff,
    /// Predicted-ED²P outcome.
    pub p_ed2p: TradeOff,
    /// Measured-EDP outcome.
    pub m_edp: TradeOff,
    /// Predicted-EDP outcome.
    pub p_edp: TradeOff,
}

/// Builds the Table 5 row for one application.
pub fn trade_off_row(measured: &PredictedProfile, sel: &SelectionRow) -> TradeOffRow {
    TradeOffRow {
        application: sel.application.clone(),
        m_ed2p: trade_off(measured, sel.m_ed2p.index),
        p_ed2p: trade_off(measured, sel.p_ed2p.index),
        m_edp: trade_off(measured, sel.m_edp.index),
        p_edp: trade_off(measured, sel.p_edp.index),
    }
}

/// Column-wise average of trade-off rows (Table 5's "Average" row).
pub fn average_trade_offs(rows: &[TradeOffRow]) -> TradeOffRow {
    assert!(!rows.is_empty(), "no rows to average");
    let n = rows.len() as f64;
    let avg = |f: &dyn Fn(&TradeOffRow) -> TradeOff| -> TradeOff {
        TradeOff {
            energy_saving_pct: rows.iter().map(|r| f(r).energy_saving_pct).sum::<f64>() / n,
            time_change_pct: rows.iter().map(|r| f(r).time_change_pct).sum::<f64>() / n,
        }
    };
    TradeOffRow {
        application: "Average".into(),
        m_ed2p: avg(&|r| r.m_ed2p),
        p_ed2p: avg(&|r| r.p_ed2p),
        m_edp: avg(&|r| r.m_edp),
        p_edp: avg(&|r| r.p_edp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, scale: f64) -> PredictedProfile {
        let frequencies: Vec<f64> = (0..10).map(|i| 510.0 + 100.0 * i as f64).collect();
        let time_s: Vec<f64> = frequencies.iter().map(|&f| scale * 1410.0 / f).collect();
        let power_w: Vec<f64> = frequencies
            .iter()
            .map(|&f| 100.0 + 300.0 * (f / 1410.0).powi(2))
            .collect();
        let energy_j: Vec<f64> = power_w.iter().zip(&time_s).map(|(&p, &t)| p * t).collect();
        PredictedProfile {
            workload: name.into(),
            frequencies,
            power_w,
            time_s,
            energy_j,
        }
    }

    #[test]
    fn identical_profiles_have_perfect_accuracy() {
        let m = profile("app", 1.0);
        let row = accuracy_row(&m, &m);
        assert_eq!(row.power_accuracy, 100.0);
        assert_eq!(row.time_accuracy, 100.0);
    }

    #[test]
    fn accuracy_reflects_prediction_error() {
        let m = profile("app", 1.0);
        let mut p = m.clone();
        for v in &mut p.power_w {
            *v *= 1.05; // uniform 5% over-prediction
        }
        let row = accuracy_row(&m, &p);
        assert!((row.power_accuracy - 95.0).abs() < 1e-9);
        assert_eq!(row.time_accuracy, 100.0);
    }

    #[test]
    fn normalized_time_accuracy_ignores_absolute_scale() {
        // Predicted absolute times off by 2x but correct shape: normalized
        // accuracy stays perfect (Figure 8 is normalized).
        let m = profile("app", 1.0);
        let p = profile("app", 2.0);
        let row = accuracy_row(&m, &p);
        assert_eq!(row.time_accuracy, 100.0);
    }

    #[test]
    fn four_way_selection_consistency() {
        let m = profile("app", 1.0);
        let sel = four_way_selection(&m, &m);
        assert_eq!(sel.m_edp.frequency_mhz, sel.p_edp.frequency_mhz);
        assert!(sel.m_ed2p.frequency_mhz >= sel.m_edp.frequency_mhz);
    }

    /// Forced drift: perturbing the simulator's measured profile past the
    /// 12% band fires the monitor's alert exactly once per crossing.
    #[test]
    fn forced_drift_fires_alert_once_per_crossing() {
        use telemetry::SimulatorBackend;

        let backend = SimulatorBackend::ga100();
        let app = gpu_model::PhasedWorkload::single(
            gpu_model::SignatureBuilder::new("drift-app")
                .flops(1e13)
                .bytes(1e12)
                .build(),
        );
        let truth = crate::predictor::measured_profile(&backend, &app);
        let n = truth.frequencies.len();

        // A private monitor (window = one grid sweep) keeps this test
        // independent of the global monitors other tests feed.
        let registry = obs::MetricsRegistry::new();
        let monitor = obs::QualityMonitor::with_registry(
            "drift-power",
            obs::QualityConfig {
                window: n,
                warn_mape: 12.0,
            },
            &registry,
        );

        // Perfect predictions: no alert.
        assert_eq!(monitor.observe_profile(&truth.power_w, &truth.power_w), 0);
        assert_eq!(monitor.stat().alerts, 0);

        // 20% uniform power drift — the rolling MAPE crosses the band on
        // the first drifted pair and stays above: exactly one alert for
        // the whole sweep.
        let drifted: Vec<f64> = truth.power_w.iter().map(|&p| 1.2 * p).collect();
        assert_eq!(monitor.observe_profile(&drifted, &truth.power_w), 1);
        let s = monitor.stat();
        assert_eq!(s.alerts, 1);
        assert!(s.above_band);
        assert_eq!(registry.counter("quality.drift-power.alerts").get(), 1);

        // Recovery: clean sweeps push the drifted window out and the
        // rolling MAPE back below the band without firing anything.
        monitor.observe_profile(&truth.power_w, &truth.power_w);
        assert!(!monitor.stat().above_band);
        assert_eq!(monitor.stat().alerts, 1);

        // Second drift episode: exactly one more alert.
        assert_eq!(monitor.observe_profile(&drifted, &truth.power_w), 1);
        assert_eq!(monitor.stat().alerts, 2);
    }

    /// Normalized-time drift needs a frequency-dependent tilt (a uniform
    /// time scale cancels in `T(f)/T(f_max)`); the monitor sees it.
    #[test]
    fn time_drift_must_be_frequency_dependent() {
        use telemetry::SimulatorBackend;

        let backend = SimulatorBackend::ga100();
        let app = gpu_model::PhasedWorkload::single(
            gpu_model::SignatureBuilder::new("tilt-app")
                .flops(5e12)
                .bytes(3e12)
                .build(),
        );
        let truth = crate::predictor::measured_profile(&backend, &app);
        let f_max = *truth.frequencies.last().unwrap();

        let registry = obs::MetricsRegistry::new();
        let monitor = obs::QualityMonitor::with_registry(
            "drift-time",
            obs::QualityConfig {
                window: truth.frequencies.len(),
                warn_mape: 12.0,
            },
            &registry,
        );

        // Uniform 2x slowdown: invisible in normalized time.
        let uniform = PredictedProfile::new(
            truth.workload.clone(),
            truth.frequencies.clone(),
            truth.power_w.clone(),
            truth.time_s.iter().map(|&t| 2.0 * t).collect(),
        );
        monitor.observe_profile(&uniform.normalized_time(), &truth.normalized_time());
        assert!(monitor.stat().mape < 1e-9, "uniform scaling must cancel");

        // A low-frequency tilt (predictions 50% too slow at the floor,
        // exact at f_max) does not cancel — the monitor crosses the band
        // (rolling MAPE settles at ~16% over the GA100 grid).
        let tilted = PredictedProfile::new(
            truth.workload.clone(),
            truth.frequencies.clone(),
            truth.power_w.clone(),
            truth
                .time_s
                .iter()
                .zip(&truth.frequencies)
                .map(|(&t, &f)| t * (1.0 + 0.5 * (1.0 - f / f_max)))
                .collect(),
        );
        let alerts = monitor.observe_profile(&tilted.normalized_time(), &truth.normalized_time());
        assert_eq!(alerts, 1, "tilted drift fires exactly once");
        assert!(monitor.stat().above_band);
    }

    /// `accuracy_row` keeps the *global* power/time monitors fed, so any
    /// evaluation run refreshes `dvfs monitor`'s statistics.
    #[test]
    fn accuracy_row_feeds_global_quality_monitors() {
        let m = profile("feed-app", 1.0);
        let power_before = obs::quality::monitor("power").stat().samples;
        let time_before = obs::quality::monitor("time").stat().samples;
        let _ = accuracy_row(&m, &m);
        let grid = m.frequencies.len() as u64;
        assert!(obs::quality::monitor("power").stat().samples >= power_before + grid);
        assert!(obs::quality::monitor("time").stat().samples >= time_before + grid);
    }

    #[test]
    fn trade_off_at_max_is_zero() {
        let m = profile("app", 1.0);
        let t = trade_off(&m, m.max_freq_index());
        assert_eq!(t.energy_saving_pct, 0.0);
        assert_eq!(t.time_change_pct, 0.0);
    }

    #[test]
    fn slower_choice_reports_negative_time_change() {
        let m = profile("app", 1.0);
        let t = trade_off(&m, 0); // lowest frequency: slow but low energy?
        assert!(
            t.time_change_pct < 0.0,
            "paper convention: loss is negative"
        );
    }

    #[test]
    fn average_is_columnwise_mean() {
        let m = profile("a", 1.0);
        let sel = four_way_selection(&m, &m);
        let r1 = trade_off_row(&m, &sel);
        let mut r2 = r1.clone();
        r2.m_edp.energy_saving_pct += 10.0;
        let avg = average_trade_offs(&[r1.clone(), r2.clone()]);
        assert!(
            (avg.m_edp.energy_saving_pct
                - (r1.m_edp.energy_saving_pct + r2.m_edp.energy_saving_pct) / 2.0)
                .abs()
                < 1e-12
        );
        assert_eq!(avg.application, "Average");
    }

    #[test]
    #[should_panic(expected = "same grid")]
    fn mismatched_grids_rejected() {
        let m = profile("a", 1.0);
        let mut p = profile("a", 1.0);
        p.frequencies.pop();
        p.power_w.pop();
        p.time_s.pop();
        p.energy_j.pop();
        let _ = accuracy_row(&m, &p);
    }
}
