//! Calibration scratch tool: trains the full paper pipeline and prints
//! per-application accuracy plus selector outcomes.

use dvfs_core::evaluation::{accuracy_row, four_way_selection, trade_off_row};
use dvfs_core::pipeline::TrainedPipeline;
use dvfs_core::predictor::measured_profile;
use telemetry::SimulatorBackend;

fn main() {
    let t0 = std::time::Instant::now();
    let backend = SimulatorBackend::ga100();
    let pipe = TrainedPipeline::train_on(&backend, 1);
    println!(
        "train: {:.1}s, rows {}",
        t0.elapsed().as_secs_f64(),
        pipe.dataset.len()
    );
    println!(
        "power loss final {:.5}, time loss final {:.5}",
        pipe.models.power_history.train_loss.last().unwrap(),
        pipe.models.time_history.train_loss.last().unwrap()
    );
    let predictor = pipe.predictor(pipe.train_spec.clone());
    for app in kernels::apps::evaluation_apps() {
        let meas = measured_profile(&backend, &app);
        let pred = predictor.predict_online(&backend, &app);
        let acc = accuracy_row(&meas, &pred);
        let sel = four_way_selection(&meas, &pred);
        let tr = trade_off_row(&meas, &sel);
        println!("{:<10} powerAcc {:5.1}% timeAcc {:5.1}% | M-ED2P {:4.0} P-ED2P {:4.0} M-EDP {:4.0} P-EDP {:4.0} | M-ED2P E {:5.1}% T {:5.1}% | P-ED2P E {:5.1}% T {:5.1}%",
            acc.application, acc.power_accuracy, acc.time_accuracy,
            sel.m_ed2p.frequency_mhz, sel.p_ed2p.frequency_mhz,
            sel.m_edp.frequency_mhz, sel.p_edp.frequency_mhz,
            tr.m_ed2p.energy_saving_pct, tr.m_ed2p.time_change_pct,
            tr.p_ed2p.energy_saving_pct, tr.p_ed2p.time_change_pct);
    }
    // Detailed curve dump for LAMMPS.
    let app = kernels::apps::lammps();
    let meas = measured_profile(&backend, &app);
    let pred = predictor.predict_online(&backend, &app);
    let tn_m = meas.normalized_time();
    let tn_p = pred.normalized_time();
    for i in (0..meas.frequencies.len()).step_by(6) {
        let f = meas.frequencies[i];
        println!(
            "f {:4.0}  T_m {:.3} T_p {:.3}  P_m {:5.1} P_p {:5.1}  ED2P_m {:.3} ED2P_p {:.3}",
            f,
            tn_m[i],
            tn_p[i],
            meas.power_w[i],
            pred.power_w[i],
            meas.energy_j[i] * meas.time_s[i].powi(2)
                / (meas.energy_j.last().unwrap() * meas.time_s.last().unwrap().powi(2)),
            pred.energy_j[i] * pred.time_s[i].powi(2)
                / (pred.energy_j.last().unwrap() * pred.time_s.last().unwrap().powi(2))
        );
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
