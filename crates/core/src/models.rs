//! The paper's two DNN models and their training recipe (Section 4.3).

use crate::dataset::{Dataset, NUM_FEATURES};
use gpu_model::DeviceSpec;
use nn::{
    Activation, InferenceEngine, Loss, Network, NetworkBuilder, OptimizerKind, Precision,
    TrainConfig, Trainer, TrainingHistory,
};
use serde::{Deserialize, Serialize};

/// Epochs for the power model (paper: losses converge at 100, Figure 6a).
pub const POWER_EPOCHS: usize = 100;
/// Epochs for the time model (paper: converges at 25, Figure 6b — more
/// overfits).
pub const TIME_EPOCHS: usize = 25;
/// Batch size (the paper uses 64, matching the layer width).
pub const BATCH_SIZE: usize = 64;

/// Hyperparameters for one model; defaults are the paper's configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden layer count.
    pub hidden_layers: usize,
    /// Neurons per hidden layer.
    pub width: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's power-model configuration.
    pub fn paper_power() -> Self {
        Self {
            hidden_layers: 3,
            width: 64,
            activation: Activation::Selu,
            optimizer: OptimizerKind::paper_default(),
            epochs: POWER_EPOCHS,
            seed: 0x000A_1001,
        }
    }

    /// The paper's time-model configuration.
    pub fn paper_time() -> Self {
        Self {
            epochs: TIME_EPOCHS,
            seed: 0x000A_1002,
            ..Self::paper_power()
        }
    }

    /// Builds the (untrained) network.
    pub fn build_network(&self) -> Network {
        let mut b = NetworkBuilder::new(NUM_FEATURES).seed(self.seed);
        for _ in 0..self.hidden_layers {
            b = b.hidden(self.width, self.activation);
        }
        b.output(1, Activation::Linear).build()
    }

    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: BATCH_SIZE,
            optimizer: self.optimizer,
            loss: Loss::Mse,
            validation_split: 0.2,
            shuffle_seed: self.seed ^ 0x5A5A,
            early_stop_patience: None,
            ..TrainConfig::default()
        }
    }
}

/// The trained power and time models plus their loss histories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerTimeModels {
    /// Power model: features -> `P / TDP`.
    pub power: Network,
    /// Time model: features -> `T(f) / T(f_max)`.
    pub time: Network,
    /// Power-model training history (Figure 6a).
    pub power_history: TrainingHistory,
    /// Time-model training history (Figure 6b).
    pub time_history: TrainingHistory,
}

impl PowerTimeModels {
    /// Trains both models on a dataset with the paper's configurations.
    pub fn train(dataset: &Dataset) -> Self {
        Self::train_with(
            dataset,
            ModelConfig::paper_power(),
            ModelConfig::paper_time(),
        )
    }

    /// Trains both models with explicit configurations (ablations).
    ///
    /// The two fits are independent, so they run on both sides of a
    /// `rayon::join`. The power fit stays on the calling thread (its
    /// spans keep nesting under the caller's open span tree); the time
    /// fit's spans are grafted under the same parent as `time` so its
    /// timing survives landing on a helper thread. Each fit is
    /// internally deterministic for any thread count, so the pair of
    /// trained networks is bitwise identical to sequential training.
    pub fn train_with(dataset: &Dataset, power_cfg: ModelConfig, time_cfg: ModelConfig) -> Self {
        let yp = tensor::Matrix::col_vector(&dataset.y_power);
        let yt = tensor::Matrix::col_vector(&dataset.y_time);
        let parent = obs::span::current_path();

        let ((power_trainer, power_history), (time_trainer, time_history)) = rayon::join(
            || {
                let mut t = Trainer::new(power_cfg.build_network(), power_cfg.train_config());
                let h = t.fit(&dataset.x, &yp).expect("dataset validated upstream");
                (t, h)
            },
            || {
                let _graft = parent
                    .as_deref()
                    .map(|p| obs::span::Span::enter_under(p, "time"));
                let mut t = Trainer::new(time_cfg.build_network(), time_cfg.train_config());
                let h = t.fit(&dataset.x, &yt).expect("dataset validated upstream");
                (t, h)
            },
        );

        Self {
            power: power_trainer.into_network(),
            time: time_trainer.into_network(),
            power_history,
            time_history,
        }
    }

    /// Assembles the F x 3 feature matrix for one application (fixed
    /// activities, one row per frequency) and runs a single forward pass
    /// through `network`.
    ///
    /// Both the feature matrix and the network intermediates live in
    /// thread-local buffers reused across calls, so a steady stream of
    /// sweeps allocates only the returned `Vec` per request.
    fn batch_forward(
        network: &nn::Network,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        thread_local! {
            static FEATURES: std::cell::RefCell<tensor::Matrix> =
                std::cell::RefCell::new(tensor::Matrix::zeros(0, 0));
        }
        FEATURES.with(|cell| {
            let mut x = cell.borrow_mut();
            x.resize_to(frequencies.len(), NUM_FEATURES);
            for (r, &mhz) in frequencies.iter().enumerate() {
                x.row_mut(r).copy_from_slice(&Dataset::feature_row(
                    fp_active,
                    dram_active,
                    mhz / spec.max_core_mhz,
                ));
            }
            nn::Workspace::with_thread_local(network, |ws| {
                network.predict_into(&x, ws).as_slice().to_vec()
            })
        })
    }

    /// Predicted power in watts at every frequency in `frequencies`, with
    /// one network forward pass for the whole sweep.
    ///
    /// Each output row depends only on its own input row, so this matches
    /// [`PowerTimeModels::predict_power_w`] bit-for-bit per frequency.
    pub fn predict_power_w_batch(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        Self::batch_forward(&self.power, spec, fp_active, dram_active, frequencies)
            .into_iter()
            .map(|frac| (frac * spec.tdp_w).max(0.0))
            .collect()
    }

    /// Predicted normalized times `T(f)/T(f_max)` at every frequency in
    /// `frequencies`, with one network forward pass for the whole sweep.
    pub fn predict_time_ratio_batch(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        Self::batch_forward(&self.time, spec, fp_active, dram_active, frequencies)
            .into_iter()
            .map(|ratio| ratio.max(0.0))
            .collect()
    }

    /// Predicted power in watts for `spec` at the given features/clock.
    pub fn predict_power_w(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        mhz: f64,
    ) -> f64 {
        self.predict_power_w_batch(spec, fp_active, dram_active, std::slice::from_ref(&mhz))[0]
    }

    /// Predicted normalized time `T(f)/T(f_max)` at the given
    /// features/clock.
    pub fn predict_time_ratio(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        mhz: f64,
    ) -> f64 {
        self.predict_time_ratio_batch(spec, fp_active, dram_active, std::slice::from_ref(&mhz))[0]
    }

    /// Serializes both models to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialize")
    }

    /// Restores models from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The compiled inference-engine pair for the serving hot path: both
/// trained networks frozen into [`nn::InferenceEngine`]s at a chosen
/// [`Precision`].
///
/// Mirrors the [`PowerTimeModels`] prediction API (same feature
/// assembly, same output clamping) but runs every sweep through the
/// packed batch-fused kernels — one fused GEMM per layer over all
/// frequencies instead of per-state matvecs. In [`Precision::F64`] mode
/// the outputs are **bitwise identical** to the corresponding
/// `PowerTimeModels` methods; the reduced-precision modes carry the
/// documented error bounds from [`nn::infer`] and are gated behind the
/// quality monitor before a snapshot may serve them (see
/// `crate::snapshot`).
#[derive(Debug, Clone)]
pub struct PredictEngines {
    power: InferenceEngine,
    time: InferenceEngine,
}

impl PredictEngines {
    /// Compiles both networks once (weight conversion + panel packing
    /// happen here, never per request).
    pub fn compile(models: &PowerTimeModels, precision: Precision) -> Self {
        Self {
            power: InferenceEngine::compile(&models.power, precision),
            time: InferenceEngine::compile(&models.time, precision),
        }
    }

    /// The numeric mode both engines were compiled for.
    pub fn precision(&self) -> Precision {
        self.power.precision()
    }

    /// Assembles the F x 3 feature matrix (thread-local, reused across
    /// calls) and runs one batched engine pass — the engine-side twin of
    /// `PowerTimeModels::batch_forward`.
    fn batch_forward(
        engine: &InferenceEngine,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        thread_local! {
            static FEATURES: std::cell::RefCell<tensor::Matrix> =
                std::cell::RefCell::new(tensor::Matrix::zeros(0, 0));
        }
        FEATURES.with(|cell| {
            let mut x = cell.borrow_mut();
            x.resize_to(frequencies.len(), NUM_FEATURES);
            for (r, &mhz) in frequencies.iter().enumerate() {
                x.row_mut(r).copy_from_slice(&Dataset::feature_row(
                    fp_active,
                    dram_active,
                    mhz / spec.max_core_mhz,
                ));
            }
            let mut out = Vec::with_capacity(frequencies.len());
            engine.predict_into(&x, &mut out);
            out
        })
    }

    /// Predicted power in watts at every frequency, one fused engine
    /// pass for the whole sweep.
    pub fn predict_power_w_batch(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        let mut out = Self::batch_forward(&self.power, spec, fp_active, dram_active, frequencies);
        for v in &mut out {
            *v = (*v * spec.tdp_w).max(0.0);
        }
        out
    }

    /// Predicted normalized times `T(f)/T(f_max)` at every frequency.
    pub fn predict_time_ratio_batch(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> Vec<f64> {
        let mut out = Self::batch_forward(&self.time, spec, fp_active, dram_active, frequencies);
        for v in &mut out {
            *v = v.max(0.0);
        }
        out
    }

    /// Single-frequency time ratio through the engine's `rows = 1` path:
    /// no `Matrix` assembly, no per-call workspace resizing — and
    /// bitwise-identical to the corresponding row of a batched call in
    /// every precision mode (per-row accumulation chains are independent
    /// of the batch blocking).
    pub fn predict_time_ratio(
        &self,
        spec: &DeviceSpec,
        fp_active: f64,
        dram_active: f64,
        mhz: f64,
    ) -> f64 {
        let features = Dataset::feature_row(fp_active, dram_active, mhz / spec.max_core_mhz);
        let mut out = Vec::with_capacity(1);
        self.time.predict_one_into(&features, &mut out);
        out[0].max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{MetricSample, NoiseModel, SignatureBuilder};

    /// A small synthetic campaign: 4 workloads x 13 frequencies x 2 runs.
    fn small_dataset(spec: &DeviceSpec) -> Dataset {
        let nm = NoiseModel::default_bench();
        let sigs = [
            SignatureBuilder::new("comp")
                .flops(2e13)
                .bytes(2e11)
                .kappa_compute(0.9)
                .build(),
            SignatureBuilder::new("mem")
                .flops(2e11)
                .bytes(2e13)
                .kappa_memory(0.85)
                .build(),
            SignatureBuilder::new("mix").flops(8e12).bytes(3e12).build(),
            SignatureBuilder::new("idlish")
                .flops(4e11)
                .bytes(9e11)
                .kappa_compute(0.3)
                .build(),
        ];
        let mut samples: Vec<MetricSample> = Vec::new();
        let grid = gpu_model::DvfsGrid::for_spec(spec);
        for sig in &sigs {
            for &f in grid.used().iter().step_by(2) {
                for run in 0..3 {
                    samples.push(gpu_model::sample::measure(spec, sig, f, run, &nm));
                }
            }
            // Ensure the exact default clock is present.
            for run in 0..2 {
                samples.push(gpu_model::sample::measure(
                    spec,
                    sig,
                    spec.max_core_mhz,
                    run,
                    &nm,
                ));
            }
        }
        Dataset::from_samples(spec, &samples).unwrap()
    }

    #[test]
    fn paper_configs_match_section_4_3() {
        let p = ModelConfig::paper_power();
        assert_eq!(p.hidden_layers, 3);
        assert_eq!(p.width, 64);
        assert_eq!(p.activation, Activation::Selu);
        assert_eq!(p.optimizer.name(), "rmsprop");
        assert_eq!(p.epochs, 100);
        assert_eq!(ModelConfig::paper_time().epochs, 25);
    }

    #[test]
    fn network_shape_is_3x64() {
        let net = ModelConfig::paper_power().build_network();
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 1);
        assert_eq!(net.layers().len(), 4);
        assert_eq!(net.layers()[0].out_dim(), 64);
    }

    #[test]
    fn training_converges_on_simulated_campaign() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        let models = PowerTimeModels::train(&ds);
        // Power loss in normalized units should be small.
        let final_loss = *models.power_history.train_loss.last().unwrap();
        assert!(final_loss < 0.01, "power loss {final_loss}");
        let final_time_loss = *models.time_history.train_loss.last().unwrap();
        assert!(final_time_loss < 0.05, "time loss {final_time_loss}");
        assert_eq!(models.power_history.train_loss.len(), 100);
        assert_eq!(models.time_history.train_loss.len(), 25);
    }

    #[test]
    fn predictions_follow_physical_trends() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        // The small test campaign gives the paper's 25 time-epochs too few
        // SGD steps; give the time model a fuller budget here (the trend
        // check is about the learned physics, not the epoch count).
        let time_cfg = ModelConfig {
            epochs: 120,
            ..ModelConfig::paper_time()
        };
        let models = PowerTimeModels::train_with(&ds, ModelConfig::paper_power(), time_cfg);
        // Use the compute-bound training workload's own default-clock
        // features (the regime the online phase operates in).
        let sig = SignatureBuilder::new("comp")
            .flops(2e13)
            .bytes(2e11)
            .kappa_compute(0.9)
            .build();
        let (fp, dram) = gpu_model::model::activities(&spec, &sig, spec.max_core_mhz);
        let p_low = models.predict_power_w(&spec, fp, dram, 510.0);
        let p_high = models.predict_power_w(&spec, fp, dram, 1410.0);
        assert!(p_high > p_low * 1.5, "{p_low} -> {p_high}");
        let t_low = models.predict_time_ratio(&spec, fp, dram, 510.0);
        let t_high = models.predict_time_ratio(&spec, fp, dram, 1410.0);
        assert!(t_low > 1.5 * t_high, "{t_low} -> {t_high}");
        assert!(
            (t_high - 1.0).abs() < 0.15,
            "time ratio at fmax ~ 1, got {t_high}"
        );
    }

    #[test]
    fn json_round_trip() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        let models = PowerTimeModels::train(&ds);
        let back = PowerTimeModels::from_json(&models.to_json()).unwrap();
        let a = models.predict_power_w(&spec, 0.5, 0.5, 1005.0);
        let b = back.predict_power_w(&spec, 0.5, 0.5, 1005.0);
        assert_eq!(a, b);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Trains once and shares across all property cases — the property
        /// is about the prediction paths, not training.
        fn shared() -> &'static (DeviceSpec, PowerTimeModels) {
            static SHARED: OnceLock<(DeviceSpec, PowerTimeModels)> = OnceLock::new();
            SHARED.get_or_init(|| {
                let spec = DeviceSpec::ga100();
                let models = PowerTimeModels::train(&small_dataset(&spec));
                (spec, models)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            /// The batched sweep must be *bitwise* identical to the scalar
            /// per-frequency path — including grids larger than the matmul
            /// parallel-dispatch threshold (64 rows), where the blocked
            /// kernel hands rows to worker threads.
            #[test]
            fn batch_matches_scalar_bitwise(
                fp in 0.0..1.0f64,
                dram in 0.0..1.0f64,
                n in 1usize..100,
            ) {
                let (spec, models) = shared();
                let freqs: Vec<f64> =
                    (0..n).map(|i| 510.0 + 900.0 * i as f64 / n as f64).collect();
                let batch_p = models.predict_power_w_batch(spec, fp, dram, &freqs);
                let batch_t = models.predict_time_ratio_batch(spec, fp, dram, &freqs);
                prop_assert_eq!(batch_p.len(), n);
                prop_assert_eq!(batch_t.len(), n);
                for (i, &f) in freqs.iter().enumerate() {
                    let p = models.predict_power_w(spec, fp, dram, f);
                    let t = models.predict_time_ratio(spec, fp, dram, f);
                    prop_assert_eq!(batch_p[i].to_bits(), p.to_bits());
                    prop_assert_eq!(batch_t[i].to_bits(), t.to_bits());
                }
            }
        }
    }

    #[test]
    fn f64_engines_match_models_bitwise() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        let models = PowerTimeModels::train(&ds);
        let engines = PredictEngines::compile(&models, Precision::F64);
        let freqs: Vec<f64> = (0..61).map(|i| 510.0 + 15.0 * i as f64).collect();
        let (fp, dram) = (0.62, 0.31);
        assert_eq!(
            engines.predict_power_w_batch(&spec, fp, dram, &freqs),
            models.predict_power_w_batch(&spec, fp, dram, &freqs)
        );
        assert_eq!(
            engines.predict_time_ratio_batch(&spec, fp, dram, &freqs),
            models.predict_time_ratio_batch(&spec, fp, dram, &freqs)
        );
        assert_eq!(
            engines
                .predict_time_ratio(&spec, fp, dram, 1005.0)
                .to_bits(),
            models.predict_time_ratio(&spec, fp, dram, 1005.0).to_bits()
        );
    }

    #[test]
    fn reduced_precision_engines_stay_near_f64() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        let models = PowerTimeModels::train(&ds);
        let freqs: Vec<f64> = (0..61).map(|i| 510.0 + 15.0 * i as f64).collect();
        // Normalized-output tolerances: power fractions and time ratios
        // live in O(1) units, so the nn-level bounds apply directly
        // (power is additionally scaled by TDP below).
        for (precision, rtol) in [(Precision::F32, 1e-3), (Precision::Bf16, 5e-2)] {
            let engines = PredictEngines::compile(&models, precision);
            assert_eq!(engines.precision(), precision);
            let want_t = models.predict_time_ratio_batch(&spec, 0.7, 0.4, &freqs);
            let got_t = engines.predict_time_ratio_batch(&spec, 0.7, 0.4, &freqs);
            for (g, w) in got_t.iter().zip(&want_t) {
                assert!(
                    (g - w).abs() <= rtol + rtol * w.abs(),
                    "{precision}: time ratio {g} vs {w}"
                );
            }
            let want_p = models.predict_power_w_batch(&spec, 0.7, 0.4, &freqs);
            let got_p = engines.predict_power_w_batch(&spec, 0.7, 0.4, &freqs);
            for (g, w) in got_p.iter().zip(&want_p) {
                assert!(
                    (g - w).abs() <= rtol * spec.tdp_w + rtol * w.abs(),
                    "{precision}: power {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let spec = DeviceSpec::ga100();
        let ds = small_dataset(&spec);
        let m1 = PowerTimeModels::train(&ds);
        let m2 = PowerTimeModels::train(&ds);
        assert_eq!(m1.power_history.train_loss, m2.power_history.train_loss);
        assert_eq!(
            m1.predict_power_w(&spec, 0.7, 0.3, 900.0),
            m2.predict_power_w(&spec, 0.7, 0.3, 900.0)
        );
    }
}
