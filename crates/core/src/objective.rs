//! Multi-objective scoring (EDP / ED²P) and optimal frequency selection
//! (paper Section 4.4, Algorithm 1).

use serde::{Deserialize, Serialize};

/// The multi-objective function combining energy and delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Energy-delay product `E * T`.
    Edp,
    /// Energy-delay-squared product `E * T^2` (more performance weight).
    Ed2p,
    /// Energy only (`E`): maximum savings, performance ignored.
    EnergyOnly,
    /// Time only (`T`): always selects the fastest configuration.
    TimeOnly,
    /// Weighted generalization `E * T^w` (the paper's framework lets the
    /// user define the objective; EDP is `w = 1`, ED²P is `w = 2`).
    Weighted {
        /// Exponent on the delay term.
        time_weight: f64,
    },
}

impl Objective {
    /// Scores one (energy, time) pair; lower is better.
    pub fn score(&self, energy: f64, time: f64) -> f64 {
        match *self {
            Objective::Edp => energy * time,
            Objective::Ed2p => energy * time * time,
            Objective::EnergyOnly => energy,
            Objective::TimeOnly => time,
            Objective::Weighted { time_weight } => energy * time.powf(time_weight),
        }
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Objective::Edp => "EDP".to_string(),
            Objective::Ed2p => "ED2P".to_string(),
            Objective::EnergyOnly => "E".to_string(),
            Objective::TimeOnly => "T".to_string(),
            Objective::Weighted { time_weight } => format!("E*T^{time_weight}"),
        }
    }
}

/// Result of the optimal-frequency selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen frequency in MHz.
    pub frequency_mhz: f64,
    /// Index of the chosen frequency in the input lists.
    pub index: usize,
    /// The objective score at the chosen frequency.
    pub score: f64,
    /// Performance degradation at the chosen frequency relative to the
    /// maximum-performance configuration (positive = slower).
    pub perf_degradation: f64,
    /// Whether the threshold forced a move above the unconstrained optimum.
    pub threshold_applied: bool,
}

/// Algorithm 1: selects the optimal frequency from per-frequency energies
/// and times.
///
/// `frequencies` must be ascending; `energies[i]`/`times[i]` correspond to
/// `frequencies[i]`. With `threshold = None` the frequency with the lowest
/// objective score wins outright. With a threshold `th` (fractional, e.g.
/// `0.05` for the paper's 5 %), the algorithm walks *upward in frequency*
/// from the unconstrained optimum until performance degradation relative
/// to the fastest configuration drops below `th` — exactly the paper's
/// "a higher frequency configuration is selected when the performance loss
/// is greater than the threshold" step.
///
/// # Panics
/// Panics if the slices are empty, have mismatched lengths, or
/// `frequencies` is not ascending.
pub fn select_optimal(
    frequencies: &[f64],
    energies: &[f64],
    times: &[f64],
    objective: Objective,
    threshold: Option<f64>,
) -> Selection {
    assert!(!frequencies.is_empty(), "no frequencies to select from");
    assert_eq!(
        frequencies.len(),
        energies.len(),
        "energy list length mismatch"
    );
    assert_eq!(frequencies.len(), times.len(), "time list length mismatch");
    assert!(
        frequencies.windows(2).all(|w| w[0] < w[1]),
        "frequencies must be ascending"
    );

    // Performance = 1 / time; maxPerf is the best across configurations.
    let perf: Vec<f64> = times.iter().map(|&t| 1.0 / t).collect();
    let max_perf = perf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let degradation = |i: usize| (max_perf - perf[i]) / max_perf;

    // Step 1: unconstrained optimum by objective score.
    let scores: Vec<f64> = energies
        .iter()
        .zip(times)
        .map(|(&e, &t)| objective.score(e, t))
        .collect();
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if s < scores[best] {
            best = i;
        }
    }

    // Step 2: threshold walk to higher frequencies.
    let mut index = best;
    let mut threshold_applied = false;
    if let Some(th) = threshold {
        while degradation(index) > th && index + 1 < frequencies.len() {
            index += 1;
            threshold_applied = true;
        }
    }

    Selection {
        frequency_mhz: frequencies[index],
        index,
        score: scores[index],
        perf_degradation: degradation(index),
        threshold_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic profile: time falls with f, power rises superlinearly.
    fn profile() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let freqs: Vec<f64> = (0..61).map(|i| 510.0 + 15.0 * i as f64).collect();
        let times: Vec<f64> = freqs.iter().map(|&f| 1410.0 / f).collect();
        let powers: Vec<f64> = freqs
            .iter()
            .map(|&f| 100.0 + 400.0 * (f / 1410.0).powi(3))
            .collect();
        let energies: Vec<f64> = powers.iter().zip(&times).map(|(&p, &t)| p * t).collect();
        (freqs, energies, times)
    }

    #[test]
    fn edp_picks_interior_minimum() {
        let (f, e, t) = profile();
        let sel = select_optimal(&f, &e, &t, Objective::Edp, None);
        assert!(sel.frequency_mhz > 510.0 && sel.frequency_mhz < 1410.0);
        // Verify it really is the minimum score.
        for i in 0..f.len() {
            assert!(Objective::Edp.score(e[i], t[i]) >= sel.score - 1e-12);
        }
    }

    #[test]
    fn ed2p_selects_at_least_edp_frequency() {
        let (f, e, t) = profile();
        let edp = select_optimal(&f, &e, &t, Objective::Edp, None);
        let ed2p = select_optimal(&f, &e, &t, Objective::Ed2p, None);
        assert!(
            ed2p.frequency_mhz >= edp.frequency_mhz,
            "ED2P {} < EDP {}",
            ed2p.frequency_mhz,
            edp.frequency_mhz
        );
    }

    #[test]
    fn time_only_picks_max_frequency() {
        let (f, e, t) = profile();
        let sel = select_optimal(&f, &e, &t, Objective::TimeOnly, None);
        assert_eq!(sel.frequency_mhz, 1410.0);
        assert_eq!(sel.perf_degradation, 0.0);
    }

    #[test]
    fn energy_only_picks_lower_than_edp() {
        let (f, e, t) = profile();
        let eo = select_optimal(&f, &e, &t, Objective::EnergyOnly, None);
        let edp = select_optimal(&f, &e, &t, Objective::Edp, None);
        assert!(eo.frequency_mhz <= edp.frequency_mhz);
    }

    #[test]
    fn weighted_interpolates_between_edp_and_ed2p() {
        let (f, e, t) = profile();
        let w15 = select_optimal(&f, &e, &t, Objective::Weighted { time_weight: 1.5 }, None);
        let edp = select_optimal(&f, &e, &t, Objective::Edp, None);
        let ed2p = select_optimal(&f, &e, &t, Objective::Ed2p, None);
        assert!(w15.frequency_mhz >= edp.frequency_mhz);
        assert!(w15.frequency_mhz <= ed2p.frequency_mhz);
    }

    #[test]
    fn threshold_forces_higher_frequency() {
        let (f, e, t) = profile();
        let unconstrained = select_optimal(&f, &e, &t, Objective::EnergyOnly, None);
        let tight = select_optimal(&f, &e, &t, Objective::EnergyOnly, Some(0.01));
        assert!(tight.frequency_mhz > unconstrained.frequency_mhz);
        assert!(tight.threshold_applied);
        assert!(tight.perf_degradation <= 0.01 + 1e-12);
    }

    #[test]
    fn threshold_zero_reaches_max_frequency() {
        let (f, e, t) = profile();
        let sel = select_optimal(&f, &e, &t, Objective::Edp, Some(0.0));
        assert_eq!(sel.frequency_mhz, 1410.0);
    }

    #[test]
    fn satisfied_threshold_changes_nothing() {
        let (f, e, t) = profile();
        let loose = select_optimal(&f, &e, &t, Objective::Ed2p, Some(0.99));
        let free = select_optimal(&f, &e, &t, Objective::Ed2p, None);
        assert_eq!(loose.frequency_mhz, free.frequency_mhz);
        assert!(!loose.threshold_applied);
    }

    #[test]
    fn objective_scores_match_definitions() {
        assert_eq!(Objective::Edp.score(2.0, 3.0), 6.0);
        assert_eq!(Objective::Ed2p.score(2.0, 3.0), 18.0);
        assert_eq!(Objective::EnergyOnly.score(2.0, 3.0), 2.0);
        assert_eq!(Objective::TimeOnly.score(2.0, 3.0), 3.0);
        assert_eq!(
            Objective::Weighted { time_weight: 2.0 }.score(2.0, 3.0),
            18.0
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn descending_frequencies_rejected() {
        let _ = select_optimal(&[2.0, 1.0], &[1.0, 1.0], &[1.0, 1.0], Objective::Edp, None);
    }

    #[test]
    #[should_panic(expected = "no frequencies")]
    fn empty_input_rejected() {
        let _ = select_optimal(&[], &[], &[], Objective::Edp, None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random but physically-shaped profiles: time decreasing in f,
        /// power increasing in f.
        fn arb_profile() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
            (4usize..40, 0.5..3.0f64, 50.0..200.0f64).prop_map(|(n, steep, p0)| {
                let freqs: Vec<f64> = (0..n).map(|i| 510.0 + 15.0 * i as f64).collect();
                let fmax = *freqs.last().unwrap();
                let times: Vec<f64> = freqs
                    .iter()
                    .map(|&f| (fmax / f).powf(steep / 2.0))
                    .collect();
                let energies: Vec<f64> = freqs
                    .iter()
                    .zip(&times)
                    .map(|(&f, &t)| (p0 + 400.0 * (f / fmax).powf(steep)) * t)
                    .collect();
                (freqs, energies, times)
            })
        }

        proptest! {
            /// Tightening the threshold never lowers the chosen frequency
            /// and never worsens the degradation bound.
            #[test]
            fn threshold_walk_is_monotone(
                (f, e, t) in arb_profile(),
                th1 in 0.0..0.5f64,
                th2 in 0.0..0.5f64,
            ) {
                let (lo, hi) = if th1 <= th2 { (th1, th2) } else { (th2, th1) };
                let tight = select_optimal(&f, &e, &t, Objective::Edp, Some(lo));
                let loose = select_optimal(&f, &e, &t, Objective::Edp, Some(hi));
                prop_assert!(tight.frequency_mhz >= loose.frequency_mhz);
            }

            /// The unconstrained selection really is the argmin of its score.
            #[test]
            fn selection_is_global_minimum((f, e, t) in arb_profile()) {
                for obj in [Objective::Edp, Objective::Ed2p, Objective::EnergyOnly, Objective::TimeOnly] {
                    let sel = select_optimal(&f, &e, &t, obj, None);
                    for i in 0..f.len() {
                        prop_assert!(obj.score(e[i], t[i]) >= sel.score - 1e-12);
                    }
                }
            }

            /// Raising the time weight never lowers the chosen frequency on
            /// physically-shaped profiles.
            #[test]
            fn heavier_delay_weight_raises_frequency(
                (f, e, t) in arb_profile(),
                w1 in 0.0..3.0f64,
                w2 in 0.0..3.0f64,
            ) {
                let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
                let a = select_optimal(&f, &e, &t, Objective::Weighted { time_weight: lo }, None);
                let b = select_optimal(&f, &e, &t, Objective::Weighted { time_weight: hi }, None);
                prop_assert!(b.frequency_mhz >= a.frequency_mhz);
            }

            /// Degradation reported is consistent with the time lists.
            #[test]
            fn degradation_matches_times((f, e, t) in arb_profile()) {
                let sel = select_optimal(&f, &e, &t, Objective::Edp, None);
                let t_best = t.iter().cloned().fold(f64::INFINITY, f64::min);
                let expect = (1.0 / t_best - 1.0 / t[sel.index]) / (1.0 / t_best);
                prop_assert!((sel.perf_degradation - expect).abs() < 1e-9);
            }
        }
    }
}
