//! The online prediction phase (paper Figure 2, right half).
//!
//! An unseen application is executed **once, at the default (maximum)
//! frequency**, to acquire its features and reference time. The trained
//! models then predict its power and execution time at every DVFS state,
//! energy follows as `E(f) = P(f) * T(f)` (Equation 8), and the objective
//! function selects the optimal frequency.

use crate::models::PowerTimeModels;
use crate::objective::{select_optimal, Objective, Selection};
use gpu_model::{DeviceSpec, MetricSample, PhasedWorkload};
use serde::{Deserialize, Serialize};
use telemetry::{GpuBackend, Profiler};

/// Predicted (or measured) per-frequency profile of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedProfile {
    /// Application name.
    pub workload: String,
    /// The swept frequencies, ascending (MHz).
    pub frequencies: Vec<f64>,
    /// Power at each frequency, watts.
    pub power_w: Vec<f64>,
    /// Absolute execution time at each frequency, seconds.
    pub time_s: Vec<f64>,
    /// Energy at each frequency, joules.
    pub energy_j: Vec<f64>,
}

impl PredictedProfile {
    /// Normalized times `T(f) / T(f_max)` (Figure 8's y-axis).
    pub fn normalized_time(&self) -> Vec<f64> {
        let t_max = *self.time_s.last().expect("non-empty profile");
        self.time_s.iter().map(|&t| t / t_max).collect()
    }

    /// Selects the optimal frequency under `objective` and `threshold`.
    pub fn select(&self, objective: Objective, threshold: Option<f64>) -> Selection {
        select_optimal(&self.frequencies, &self.energy_j, &self.time_s, objective, threshold)
    }

    /// Index of the maximum (default) frequency.
    pub fn max_freq_index(&self) -> usize {
        self.frequencies.len() - 1
    }

    /// Energy saving (fraction) at `index` relative to the default clock.
    pub fn energy_saving_at(&self, index: usize) -> f64 {
        let e_max = self.energy_j[self.max_freq_index()];
        (e_max - self.energy_j[index]) / e_max
    }

    /// Execution-time change (fraction) at `index` relative to the default
    /// clock; positive = slower.
    pub fn time_change_at(&self, index: usize) -> f64 {
        let t_max = self.time_s[self.max_freq_index()];
        (self.time_s[index] - t_max) / t_max
    }
}

/// The online predictor: trained models bound to a device spec.
pub struct Predictor<'a> {
    models: &'a PowerTimeModels,
    spec: DeviceSpec,
}

impl<'a> Predictor<'a> {
    /// Creates a predictor for `spec`.
    pub fn new(models: &'a PowerTimeModels, spec: DeviceSpec) -> Self {
        Self { models, spec }
    }

    /// Builds the predicted profile from a default-clock measurement.
    ///
    /// `reference` must have been taken at the device's maximum frequency —
    /// this is the paper's single profiling run.
    ///
    /// # Panics
    /// Panics if the reference sample was not taken at the default clock.
    pub fn predict_from_reference(
        &self,
        reference: &MetricSample,
        frequencies: &[f64],
    ) -> PredictedProfile {
        assert_eq!(
            reference.sm_app_clock, self.spec.max_core_mhz,
            "online phase requires a default-clock reference run"
        );
        let fp = reference.fp_active();
        let dram = reference.dram_active;
        // Anchor absolute time on the measured default-clock run; the model
        // provides the relative scaling across frequencies.
        let anchor = reference.exec_time
            / self
                .models
                .predict_time_ratio(&self.spec, fp, dram, self.spec.max_core_mhz)
                .max(1e-9);

        let mut power_w = Vec::with_capacity(frequencies.len());
        let mut time_s = Vec::with_capacity(frequencies.len());
        let mut energy_j = Vec::with_capacity(frequencies.len());
        for &f in frequencies {
            let p = self.models.predict_power_w(&self.spec, fp, dram, f);
            let t = anchor * self.models.predict_time_ratio(&self.spec, fp, dram, f);
            power_w.push(p);
            time_s.push(t);
            energy_j.push(p * t);
        }
        PredictedProfile {
            workload: reference.workload.clone(),
            frequencies: frequencies.to_vec(),
            power_w,
            time_s,
            energy_j,
        }
    }

    /// Full online phase against a backend: profiles `workload` once at the
    /// default clock, then predicts across the backend's used grid.
    pub fn predict_online<B: GpuBackend + ?Sized>(
        &self,
        backend: &B,
        workload: &PhasedWorkload,
    ) -> PredictedProfile {
        backend.reset_clock();
        let profile = Profiler::new(backend).profile_run(workload, 0);
        self.predict_from_reference(&profile.sample, &backend.grid().used())
    }
}

/// Builds the *measured* profile of a workload by sweeping the grid on the
/// backend (ground truth for evaluation; one run per frequency).
pub fn measured_profile<B: GpuBackend + ?Sized>(
    backend: &B,
    workload: &PhasedWorkload,
) -> PredictedProfile {
    let freqs = backend.grid().used();
    let profiler = Profiler::new(backend);
    let mut power_w = Vec::with_capacity(freqs.len());
    let mut time_s = Vec::with_capacity(freqs.len());
    let mut energy_j = Vec::with_capacity(freqs.len());
    for &f in &freqs {
        backend
            .set_app_clock(f)
            .expect("used grid frequencies are supported");
        let p = profiler.profile_run(workload, 0);
        power_w.push(p.sample.power_usage);
        time_s.push(p.sample.exec_time);
        energy_j.push(p.sample.energy());
    }
    backend.reset_clock();
    PredictedProfile {
        workload: workload.name.clone(),
        frequencies: freqs,
        power_w,
        time_s,
        energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use gpu_model::{NoiseModel, SignatureBuilder};
    use telemetry::SimulatorBackend;

    fn trained_models(spec: &DeviceSpec) -> PowerTimeModels {
        let nm = NoiseModel::default_bench();
        let sigs = [
            SignatureBuilder::new("c1").flops(2e13).bytes(2e11).kappa_compute(0.9).build(),
            SignatureBuilder::new("m1").flops(2e11).bytes(2e13).kappa_memory(0.85).build(),
            SignatureBuilder::new("x1").flops(8e12).bytes(3e12).build(),
            SignatureBuilder::new("x2").flops(4e12).bytes(8e11).kappa_compute(0.5).build(),
            SignatureBuilder::new("x3").flops(1e12).bytes(4e12).kappa_memory(0.6).build(),
        ];
        let grid = gpu_model::DvfsGrid::for_spec(spec);
        let mut samples = Vec::new();
        for sig in &sigs {
            for &f in grid.used().iter().step_by(2) {
                for run in 0..3 {
                    samples.push(gpu_model::sample::measure(spec, sig, f, run, &nm));
                }
            }
            samples.push(gpu_model::sample::measure(spec, sig, spec.max_core_mhz, 0, &nm));
        }
        PowerTimeModels::train(&Dataset::from_samples(spec, &samples).unwrap())
    }

    fn unseen_app() -> PhasedWorkload {
        PhasedWorkload::single(
            SignatureBuilder::new("unseen").flops(1.5e13).bytes(1.0e12).build(),
        )
    }

    #[test]
    fn online_prediction_tracks_measurement() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let app = unseen_app();
        let predicted = predictor.predict_online(&backend, &app);
        let measured = measured_profile(&backend, &app);
        assert_eq!(predicted.frequencies, measured.frequencies);
        // Power MAPE across the sweep should be within the paper's band.
        let mape = nn::metrics::mape(&predicted.power_w, &measured.power_w);
        assert!(mape < 12.0, "power MAPE {mape:.1}%");
        let t_mape = nn::metrics::mape(&predicted.time_s, &measured.time_s);
        assert!(t_mape < 15.0, "time MAPE {t_mape:.1}%");
    }

    #[test]
    fn profile_energy_is_power_times_time() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let profile = predictor.predict_online(&backend, &unseen_app());
        for i in 0..profile.frequencies.len() {
            assert!((profile.energy_j[i] - profile.power_w[i] * profile.time_s[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_time_ends_at_one() {
        let backend = SimulatorBackend::ga100();
        let app = unseen_app();
        let measured = measured_profile(&backend, &app);
        let norm = measured.normalized_time();
        assert!((norm.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(norm[0] > 1.0);
    }

    #[test]
    fn savings_accounting_is_relative_to_max() {
        let backend = SimulatorBackend::ga100();
        let app = unseen_app();
        let measured = measured_profile(&backend, &app);
        let idx = measured.max_freq_index();
        assert_eq!(measured.energy_saving_at(idx), 0.0);
        assert_eq!(measured.time_change_at(idx), 0.0);
        // Some interior frequency saves energy at a time cost.
        let sel = measured.select(Objective::Edp, None);
        assert!(measured.energy_saving_at(sel.index) > 0.0);
    }

    #[test]
    #[should_panic(expected = "default-clock reference")]
    fn non_default_reference_rejected() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let sig = SignatureBuilder::new("w").flops(1e12).bytes(1e10).build();
        let bad = gpu_model::sample::measure(backend.spec(), &sig, 705.0, 0, &NoiseModel::none());
        let _ = predictor.predict_from_reference(&bad, &[705.0, 1410.0]);
    }
}
