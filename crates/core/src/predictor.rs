//! The online prediction phase (paper Figure 2, right half).
//!
//! An unseen application is executed **once, at the default (maximum)
//! frequency**, to acquire its features and reference time. The trained
//! models then predict its power and execution time at every DVFS state,
//! energy follows as `E(f) = P(f) * T(f)` (Equation 8), and the objective
//! function selects the optimal frequency.

use crate::cache::{CacheHandle, NormalizedProfile};
use crate::models::{PowerTimeModels, PredictEngines};
use crate::objective::{select_optimal, Objective, Selection};
use gpu_model::{DeviceSpec, MetricSample, PhasedWorkload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use telemetry::{GpuBackend, Profiler};

/// Predicted (or measured) per-frequency profile of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedProfile {
    /// Application name.
    pub workload: String,
    /// The swept frequencies, ascending (MHz).
    pub frequencies: Vec<f64>,
    /// Power at each frequency, watts.
    pub power_w: Vec<f64>,
    /// Absolute execution time at each frequency, seconds.
    pub time_s: Vec<f64>,
    /// Energy at each frequency, joules.
    pub energy_j: Vec<f64>,
}

impl PredictedProfile {
    /// Builds a profile from per-frequency power and time, deriving
    /// energy as `E(f) = P(f) * T(f)` (Equation 8).
    ///
    /// # Panics
    /// Panics unless `frequencies` is non-empty and strictly ascending
    /// (so the last entry really is the default clock that
    /// [`PredictedProfile::max_freq_index`], normalized times, and the
    /// savings accounting all key off), and all three vectors have the
    /// same length.
    pub fn new(
        workload: String,
        frequencies: Vec<f64>,
        power_w: Vec<f64>,
        time_s: Vec<f64>,
    ) -> Self {
        assert!(
            !frequencies.is_empty(),
            "profile requires at least one frequency"
        );
        assert!(
            frequencies.windows(2).all(|w| w[0] < w[1]),
            "profile frequencies must be strictly ascending (last = default clock)"
        );
        assert_eq!(
            frequencies.len(),
            power_w.len(),
            "one power value per frequency"
        );
        assert_eq!(
            frequencies.len(),
            time_s.len(),
            "one time value per frequency"
        );
        let energy_j = power_w.iter().zip(&time_s).map(|(&p, &t)| p * t).collect();
        Self {
            workload,
            frequencies,
            power_w,
            time_s,
            energy_j,
        }
    }

    /// Normalized times `T(f) / T(f_max)` (Figure 8's y-axis).
    pub fn normalized_time(&self) -> Vec<f64> {
        let t_max = *self.time_s.last().expect("non-empty profile");
        self.time_s.iter().map(|&t| t / t_max).collect()
    }

    /// Selects the optimal frequency under `objective` and `threshold`.
    pub fn select(&self, objective: Objective, threshold: Option<f64>) -> Selection {
        select_optimal(
            &self.frequencies,
            &self.energy_j,
            &self.time_s,
            objective,
            threshold,
        )
    }

    /// Index of the maximum (default) frequency.
    pub fn max_freq_index(&self) -> usize {
        self.frequencies.len() - 1
    }

    /// Energy saving (fraction) at `index` relative to the default clock.
    pub fn energy_saving_at(&self, index: usize) -> f64 {
        let e_max = self.energy_j[self.max_freq_index()];
        (e_max - self.energy_j[index]) / e_max
    }

    /// Execution-time change (fraction) at `index` relative to the default
    /// clock; positive = slower.
    pub fn time_change_at(&self, index: usize) -> f64 {
        let t_max = self.time_s[self.max_freq_index()];
        (self.time_s[index] - t_max) / t_max
    }
}

/// The online predictor: trained models bound to a device spec.
pub struct Predictor<'a> {
    models: &'a PowerTimeModels,
    /// Batch-fused inference engines (packed f32/bf16 kernels). When
    /// bound — the serve path binds its snapshot's engines — every sweep
    /// runs through [`PredictEngines`] instead of the training-path
    /// forward; in [`nn::Precision::F64`] mode that is bitwise identical
    /// to `models`, in reduced-precision modes it is the quality-gated
    /// fast path.
    engines: Option<&'a PredictEngines>,
    spec: DeviceSpec,
    /// Request-latency histogram (`predict.request_ns` in the global
    /// registry). The handle is fetched once here so the per-request
    /// record is a few relaxed atomics — no registry lock on the hot
    /// path, keeping instrumentation overhead well under the cached-hit
    /// microsecond budget.
    latency: obs::Histogram,
    /// Interned flight-recorder ids, resolved once here for the same
    /// reason: the per-request trace event is slot writes only.
    trace_request: u32,
    trace_arg_workload: u32,
    trace_arg_hit: u32,
}

impl<'a> Predictor<'a> {
    /// Creates a predictor for `spec`.
    pub fn new(models: &'a PowerTimeModels, spec: DeviceSpec) -> Self {
        Self {
            models,
            engines: None,
            spec,
            latency: obs::global().histogram("predict.request_ns"),
            trace_request: obs::trace::intern("predict.request"),
            trace_arg_workload: obs::trace::intern("workload"),
            trace_arg_hit: obs::trace::intern("hit"),
        }
    }

    /// Creates a predictor that routes every sweep through the packed
    /// batch-fused `engines` (the serve hot path binds its snapshot's
    /// engines here). `models` remains the source of truth for anything
    /// outside the forward pass.
    pub fn with_engines(
        models: &'a PowerTimeModels,
        engines: &'a PredictEngines,
        spec: DeviceSpec,
    ) -> Self {
        Self {
            engines: Some(engines),
            ..Self::new(models, spec)
        }
    }

    /// Emits the per-request timeline event: a complete span from
    /// `t0_ns`, tagged with the workload and — on the cached path —
    /// whether the profile cache hit.
    fn trace_request_event(&self, t0_ns: u64, workload: &str, hit: Option<bool>) {
        if !obs::trace::enabled() {
            return;
        }
        let wl = (
            self.trace_arg_workload,
            obs::trace::ArgValue::Str(obs::trace::intern(workload)),
        );
        match hit {
            Some(hit) => obs::trace::complete(
                self.trace_request,
                t0_ns,
                &[wl, (self.trace_arg_hit, obs::trace::ArgValue::Bool(hit))],
            ),
            None => obs::trace::complete(self.trace_request, t0_ns, &[wl]),
        }
    }

    /// Builds the predicted profile from a default-clock measurement.
    ///
    /// `reference` must have been taken at the device's maximum frequency —
    /// this is the paper's single profiling run.
    ///
    /// # Panics
    /// Panics if the reference sample was not taken at the default clock.
    pub fn predict_from_reference(
        &self,
        reference: &MetricSample,
        frequencies: &[f64],
    ) -> PredictedProfile {
        assert_eq!(
            reference.sm_app_clock, self.spec.max_core_mhz,
            "online phase requires a default-clock reference run"
        );
        let t0 = std::time::Instant::now();
        let t0_ns = obs::trace::now_ns();
        let fp = reference.fp_active();
        let dram = reference.dram_active;
        let normalized = self.normalized_profile(fp, dram, frequencies);
        let profile = self.anchor_profile(&normalized, reference, frequencies);
        self.latency.record_duration(t0.elapsed());
        self.trace_request_event(t0_ns, &reference.workload, None);
        profile
    }

    /// Runs both models once each over the whole sweep: one `F x 3`
    /// feature matrix and one forward pass per model, instead of `2F`
    /// single-row passes. Per-row results are bitwise identical to the
    /// scalar path (the matmul kernels accumulate per row in a fixed
    /// order regardless of batch size).
    fn normalized_profile(
        &self,
        fp_active: f64,
        dram_active: f64,
        frequencies: &[f64],
    ) -> NormalizedProfile {
        if let Some(engines) = self.engines {
            return NormalizedProfile {
                power_w: engines.predict_power_w_batch(
                    &self.spec,
                    fp_active,
                    dram_active,
                    frequencies,
                ),
                time_ratio: engines.predict_time_ratio_batch(
                    &self.spec,
                    fp_active,
                    dram_active,
                    frequencies,
                ),
                ratio_at_max: engines.predict_time_ratio(
                    &self.spec,
                    fp_active,
                    dram_active,
                    self.spec.max_core_mhz,
                ),
            };
        }
        NormalizedProfile {
            power_w: self.models.predict_power_w_batch(
                &self.spec,
                fp_active,
                dram_active,
                frequencies,
            ),
            time_ratio: self.models.predict_time_ratio_batch(
                &self.spec,
                fp_active,
                dram_active,
                frequencies,
            ),
            ratio_at_max: self.models.predict_time_ratio(
                &self.spec,
                fp_active,
                dram_active,
                self.spec.max_core_mhz,
            ),
        }
    }

    /// Converts a normalized profile to absolute time/energy, anchoring
    /// on the reference run's measured default-clock time.
    fn anchor_profile(
        &self,
        normalized: &NormalizedProfile,
        reference: &MetricSample,
        frequencies: &[f64],
    ) -> PredictedProfile {
        let anchor = reference.exec_time / normalized.ratio_at_max.max(1e-9);
        let time_s = normalized.time_ratio.iter().map(|&r| anchor * r).collect();
        PredictedProfile::new(
            reference.workload.clone(),
            frequencies.to_vec(),
            normalized.power_w.clone(),
            time_s,
        )
    }

    /// Predicts profiles for many reference samples, fanning the
    /// (independent) per-sample batch predictions across the rayon pool.
    /// Output order matches `references`, and each profile is bitwise
    /// identical to a sequential [`Predictor::predict_from_reference`]
    /// call.
    ///
    /// Every worker thread runs its sweeps through a thread-local
    /// `nn::Workspace` (plus a reused feature matrix), so per-request work
    /// allocates only the output profile — no per-request network
    /// intermediates.
    ///
    /// # Panics
    /// Panics if any reference was not taken at the default clock.
    pub fn predict_many(
        &self,
        references: &[MetricSample],
        frequencies: &[f64],
    ) -> Vec<PredictedProfile> {
        references
            .par_iter()
            .map(|reference| self.predict_from_reference(reference, frequencies))
            .collect()
    }

    /// Like [`Predictor::predict_from_reference`], but consults `cache`
    /// first (either a flat [`crate::cache::ProfileCache`] or a
    /// [`crate::cache::ShardedProfileCache`] — anything implementing
    /// [`CacheHandle`]). On a hit the two forward passes are skipped
    /// entirely and only the per-request time anchor is recomputed. On a
    /// miss the profile is predicted from the *quantized* activities (so
    /// the cached entry is independent of request order) and inserted.
    ///
    /// # Panics
    /// Panics if the reference sample was not taken at the default clock.
    pub fn predict_from_reference_cached<C: CacheHandle>(
        &self,
        cache: &C,
        reference: &MetricSample,
        frequencies: &[f64],
    ) -> PredictedProfile {
        assert_eq!(
            reference.sm_app_clock, self.spec.max_core_mhz,
            "online phase requires a default-clock reference run"
        );
        let t0 = std::time::Instant::now();
        let t0_ns = obs::trace::now_ns();
        let key = cache.key(
            &self.spec,
            reference.fp_active(),
            reference.dram_active,
            frequencies,
        );
        let fp = cache.quantize(reference.fp_active());
        let dram = cache.quantize(reference.dram_active);
        let mut missed = false;
        let normalized = cache.get_or_insert_with(key, || {
            missed = true;
            self.normalized_profile(fp, dram, frequencies)
        });
        let profile = self.anchor_profile(&normalized, reference, frequencies);
        self.latency.record_duration(t0.elapsed());
        self.trace_request_event(t0_ns, &reference.workload, Some(!missed));
        profile
    }

    /// Cache-aware [`Predictor::predict_many`]: concurrent requests share
    /// `cache`, so repeated applications in the stream hit after their
    /// first prediction.
    ///
    /// # Panics
    /// Panics if any reference was not taken at the default clock.
    pub fn predict_many_cached<C: CacheHandle>(
        &self,
        cache: &C,
        references: &[MetricSample],
        frequencies: &[f64],
    ) -> Vec<PredictedProfile> {
        references
            .par_iter()
            .map(|reference| self.predict_from_reference_cached(cache, reference, frequencies))
            .collect()
    }

    /// The serve-loop variant of [`Predictor::predict_many_cached`]: the
    /// same cached per-request path over a coalesced batch, but run
    /// sequentially on the calling thread.
    ///
    /// The `dvfs serve` daemon is thread-per-core — each worker already
    /// owns its core, and the compat `rayon`'s `par_iter` spawns scoped
    /// OS threads per call, which would cost more than the cached
    /// predictions it parallelizes. Results are bitwise identical to
    /// [`Predictor::predict_many_cached`] for the same cache state
    /// (both reduce to per-request `predict_from_reference_cached`).
    pub fn predict_batch_cached<C: CacheHandle>(
        &self,
        cache: &C,
        references: &[MetricSample],
        frequencies: &[f64],
    ) -> Vec<PredictedProfile> {
        references
            .iter()
            .map(|reference| self.predict_from_reference_cached(cache, reference, frequencies))
            .collect()
    }

    /// Full online phase against a backend: profiles `workload` once at the
    /// default clock, then predicts across the backend's used grid.
    ///
    /// On backends with a pure profiling path the reference run goes
    /// through [`GpuBackend::profile_at_clock`] — no device clock state
    /// is touched, so concurrent online predictions on a shared backend
    /// cannot race each other (the sample is bitwise identical to the
    /// apply-then-profile sequence).
    pub fn predict_online<B: GpuBackend + ?Sized>(
        &self,
        backend: &B,
        workload: &PhasedWorkload,
    ) -> PredictedProfile {
        let reference = match backend.profile_at_clock(workload, self.spec.max_core_mhz, 0) {
            Some(sample) => sample,
            None => {
                backend.reset_clock();
                Profiler::new(backend).profile_run(workload, 0).sample
            }
        };
        self.predict_from_reference(&reference, &backend.grid().used())
    }

    /// Feeds a measured ground-truth profile for a prediction this
    /// predictor made into the global model-quality monitors (rolling
    /// power/time MAPE, drift alerts — see [`obs::quality`]). Call it
    /// whenever a predicted workload is later measured across the grid
    /// (or at any subset of it).
    ///
    /// # Panics
    /// Panics if the two profiles cover different frequency lists.
    pub fn observe_ground_truth(&self, measured: &PredictedProfile, predicted: &PredictedProfile) {
        crate::evaluation::record_ground_truth(measured, predicted);
    }
}

/// Builds the *measured* profile of a workload by sweeping the grid on the
/// backend (ground truth for evaluation; one run per frequency).
///
/// On backends that support concurrent profiling, the per-frequency
/// sweep fans across the rayon pool via the side-effect-free
/// [`GpuBackend::profile_at_clock`] path, preserving the ascending
/// frequency order (results are bitwise identical to the serial
/// apply-then-profile loop, which remains the hardware fallback).
pub fn measured_profile<B: GpuBackend + ?Sized>(
    backend: &B,
    workload: &PhasedWorkload,
) -> PredictedProfile {
    let freqs = backend.grid().used();
    let (power_w, time_s) = if backend.supports_concurrent_profiling() {
        let samples: Vec<(f64, f64)> = freqs
            .par_iter()
            .map(|&f| {
                let s = backend
                    .profile_at_clock(workload, f, 0)
                    .expect("backend advertised concurrent profiling");
                (s.power_usage, s.exec_time)
            })
            .collect();
        samples.into_iter().unzip()
    } else {
        let profiler = Profiler::new(backend);
        let swept = freqs
            .iter()
            .map(|&f| {
                backend
                    .set_app_clock(f)
                    .expect("used grid frequencies are supported");
                let p = profiler.profile_run(workload, 0);
                (p.sample.power_usage, p.sample.exec_time)
            })
            .unzip();
        backend.reset_clock();
        swept
    };
    PredictedProfile::new(workload.name.clone(), freqs, power_w, time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ProfileCache;
    use crate::dataset::Dataset;
    use gpu_model::{NoiseModel, SignatureBuilder};
    use telemetry::SimulatorBackend;

    fn trained_models(spec: &DeviceSpec) -> PowerTimeModels {
        let nm = NoiseModel::default_bench();
        let sigs = [
            SignatureBuilder::new("c1")
                .flops(2e13)
                .bytes(2e11)
                .kappa_compute(0.9)
                .build(),
            SignatureBuilder::new("m1")
                .flops(2e11)
                .bytes(2e13)
                .kappa_memory(0.85)
                .build(),
            SignatureBuilder::new("x1").flops(8e12).bytes(3e12).build(),
            SignatureBuilder::new("x2")
                .flops(4e12)
                .bytes(8e11)
                .kappa_compute(0.5)
                .build(),
            SignatureBuilder::new("x3")
                .flops(1e12)
                .bytes(4e12)
                .kappa_memory(0.6)
                .build(),
        ];
        let grid = gpu_model::DvfsGrid::for_spec(spec);
        let mut samples = Vec::new();
        for sig in &sigs {
            for &f in grid.used().iter().step_by(2) {
                for run in 0..3 {
                    samples.push(gpu_model::sample::measure(spec, sig, f, run, &nm));
                }
            }
            samples.push(gpu_model::sample::measure(
                spec,
                sig,
                spec.max_core_mhz,
                0,
                &nm,
            ));
        }
        PowerTimeModels::train(&Dataset::from_samples(spec, &samples).unwrap())
    }

    fn unseen_app() -> PhasedWorkload {
        PhasedWorkload::single(
            SignatureBuilder::new("unseen")
                .flops(1.5e13)
                .bytes(1.0e12)
                .build(),
        )
    }

    #[test]
    fn online_prediction_tracks_measurement() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let app = unseen_app();
        let predicted = predictor.predict_online(&backend, &app);
        let measured = measured_profile(&backend, &app);
        assert_eq!(predicted.frequencies, measured.frequencies);
        // Power MAPE across the sweep should be within the paper's band.
        let mape = nn::metrics::mape(&predicted.power_w, &measured.power_w);
        assert!(mape < 12.0, "power MAPE {mape:.1}%");
        let t_mape = nn::metrics::mape(&predicted.time_s, &measured.time_s);
        assert!(t_mape < 15.0, "time MAPE {t_mape:.1}%");
    }

    #[test]
    fn profile_energy_is_power_times_time() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let profile = predictor.predict_online(&backend, &unseen_app());
        for i in 0..profile.frequencies.len() {
            assert!((profile.energy_j[i] - profile.power_w[i] * profile.time_s[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_time_ends_at_one() {
        let backend = SimulatorBackend::ga100();
        let app = unseen_app();
        let measured = measured_profile(&backend, &app);
        let norm = measured.normalized_time();
        assert!((norm.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(norm[0] > 1.0);
    }

    #[test]
    fn savings_accounting_is_relative_to_max() {
        let backend = SimulatorBackend::ga100();
        let app = unseen_app();
        let measured = measured_profile(&backend, &app);
        let idx = measured.max_freq_index();
        assert_eq!(measured.energy_saving_at(idx), 0.0);
        assert_eq!(measured.time_change_at(idx), 0.0);
        // Some interior frequency saves energy at a time cost.
        let sel = measured.select(Objective::Edp, None);
        assert!(measured.energy_saving_at(sel.index) > 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn non_ascending_frequencies_rejected() {
        // A descending grid would silently mislabel the anchor entry; the
        // constructor must refuse it.
        let _ = PredictedProfile::new(
            "w".into(),
            vec![1410.0, 705.0],
            vec![300.0, 200.0],
            vec![1.0, 1.6],
        );
    }

    fn reference_for(spec: &DeviceSpec, name: &str, flops: f64, bytes: f64) -> MetricSample {
        let sig = SignatureBuilder::new(name)
            .flops(flops)
            .bytes(bytes)
            .build();
        gpu_model::sample::measure(spec, &sig, spec.max_core_mhz, 0, &NoiseModel::none())
    }

    #[test]
    fn predict_many_matches_sequential_bitwise() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let predictor = Predictor::new(&models, spec.clone());
        let freqs = backend.grid().used();
        let refs: Vec<MetricSample> = [
            ("a", 1.5e13, 1.0e12),
            ("b", 2.0e11, 1.8e13),
            ("c", 6.0e12, 4.0e12),
            ("d", 9.0e12, 7.0e11),
        ]
        .iter()
        .map(|&(n, fl, by)| reference_for(&spec, n, fl, by))
        .collect();
        let fanned = predictor.predict_many(&refs, &freqs);
        assert_eq!(fanned.len(), refs.len());
        for (reference, parallel) in refs.iter().zip(&fanned) {
            let sequential = predictor.predict_from_reference(reference, &freqs);
            // PartialEq on the profile compares every f64 exactly.
            assert_eq!(&sequential, parallel);
        }
        // And a second fan-out is deterministic.
        assert_eq!(fanned, predictor.predict_many(&refs, &freqs));
    }

    #[test]
    fn engine_bound_predictor_is_bitwise_identical_in_f64_mode() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let engines = PredictEngines::compile(&models, nn::Precision::F64);
        let plain = Predictor::new(&models, spec.clone());
        let fused = Predictor::with_engines(&models, &engines, spec.clone());
        let freqs = backend.grid().used();
        let reference = reference_for(&spec, "app", 1.5e13, 1.0e12);
        // PartialEq on the profile compares every f64 exactly.
        assert_eq!(
            plain.predict_from_reference(&reference, &freqs),
            fused.predict_from_reference(&reference, &freqs)
        );
    }

    #[test]
    fn engine_bound_predictor_stays_close_in_reduced_precision() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let plain = Predictor::new(&models, spec.clone());
        let freqs = backend.grid().used();
        let reference = reference_for(&spec, "app", 1.5e13, 1.0e12);
        let exact = plain.predict_from_reference(&reference, &freqs);
        for (precision, rtol) in [(nn::Precision::F32, 1e-3), (nn::Precision::Bf16, 5e-2)] {
            let engines = PredictEngines::compile(&models, precision);
            let fused = Predictor::with_engines(&models, &engines, spec.clone());
            let got = fused.predict_from_reference(&reference, &freqs);
            for i in 0..freqs.len() {
                let dp = (got.power_w[i] - exact.power_w[i]).abs() / exact.power_w[i].max(1e-9);
                let dt = (got.time_s[i] - exact.time_s[i]).abs() / exact.time_s[i].max(1e-9);
                assert!(dp < rtol, "{precision:?} power drifted {dp:.2e} at row {i}");
                assert!(dt < rtol, "{precision:?} time drifted {dt:.2e} at row {i}");
            }
        }
    }

    #[test]
    fn cached_prediction_hits_and_stays_close_to_uncached() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let predictor = Predictor::new(&models, spec.clone());
        let freqs = backend.grid().used();
        let reference = reference_for(&spec, "app", 1.5e13, 1.0e12);
        let cache = ProfileCache::new(8);
        let first = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
        let second = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The hit reuses the cached normalized profile and the same anchor,
        // so the result is exactly reproduced.
        assert_eq!(first, second);
        // Quantizing the activities to 1e-3 moves the prediction only
        // marginally relative to the exact (uncached) path.
        let exact = predictor.predict_from_reference(&reference, &freqs);
        for (i, &f) in freqs.iter().enumerate() {
            let dp = (first.power_w[i] - exact.power_w[i]).abs() / exact.power_w[i];
            let dt = (first.time_s[i] - exact.time_s[i]).abs() / exact.time_s[i];
            assert!(dp < 0.02, "power drifted {:.3}% at {f} MHz", 100.0 * dp);
            assert!(dt < 0.02, "time drifted {:.3}% at {f} MHz", 100.0 * dt);
        }
    }

    #[test]
    fn predict_many_cached_shares_entries_across_requests() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let predictor = Predictor::new(&models, spec.clone());
        let freqs = backend.grid().used();
        let pool = [
            reference_for(&spec, "a", 1.5e13, 1.0e12),
            reference_for(&spec, "b", 2.0e11, 1.8e13),
        ];
        // 6 requests over 2 distinct applications.
        let stream: Vec<MetricSample> = (0..6).map(|i| pool[i % pool.len()].clone()).collect();
        let cache = ProfileCache::new(8);
        let profiles = predictor.predict_many_cached(&cache, &stream, &freqs);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 6);
        assert_eq!(cache.len(), 2);
        // Requests for the same app are identical regardless of arrival
        // order (entries are computed from bucket centers).
        assert_eq!(profiles[0], profiles[2]);
        assert_eq!(profiles[1], profiles[3]);
        assert_eq!(profiles[0], profiles[4]);
    }

    #[test]
    fn predictions_record_request_latency() {
        let backend = SimulatorBackend::ga100();
        let spec = backend.spec().clone();
        let models = trained_models(&spec);
        let predictor = Predictor::new(&models, spec.clone());
        let freqs = backend.grid().used();
        let reference = reference_for(&spec, "app", 1.5e13, 1.0e12);
        // The histogram is global and shared with concurrently-running
        // tests, so assert on growth, not absolute counts.
        let hist = obs::global().histogram("predict.request_ns");
        let before = hist.count();
        let cache = ProfileCache::new(4);
        let _ = predictor.predict_from_reference(&reference, &freqs);
        let _ = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
        let _ = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
        assert!(
            hist.count() >= before + 3,
            "latency histogram did not grow: {} -> {}",
            before,
            hist.count()
        );
        assert!(hist.max() > 0, "recorded latencies are nonzero");
    }

    #[test]
    #[should_panic(expected = "default-clock reference")]
    fn non_default_reference_rejected() {
        let backend = SimulatorBackend::ga100();
        let models = trained_models(backend.spec());
        let predictor = Predictor::new(&models, backend.spec().clone());
        let sig = SignatureBuilder::new("w").flops(1e12).bytes(1e10).build();
        let bad = gpu_model::sample::measure(backend.spec(), &sig, 705.0, 0, &NoiseModel::none());
        let _ = predictor.predict_from_reference(&bad, &[705.0, 1410.0]);
    }
}
