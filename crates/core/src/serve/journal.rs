//! The serve plane's decision journal: the per-decision audit payload
//! written through [`obs::journal`], the energy-savings ledger it feeds,
//! and the deterministic replay engine that proves each decision back.
//!
//! A [`DecisionRecord`] captures everything a served `predict`/`select`
//! answer was a function of — snapshot version, request features, the
//! quantized cache key, the chosen clock, a digest of the predicted
//! power/time curves, the constraint, and predicted energy against the
//! max-clock baseline. Because the serve path is deterministic in
//! exactly those inputs (bucket-center cached predictions, snapshot-
//! bound f64 engines, a pure objective), [`replay`] re-running a journal
//! through a [`ModelSnapshot`] with the same weights must reproduce
//! every decision **bitwise** — any divergence is a real drift signal
//! (changed weights, changed grid, changed math), which is what makes
//! the journal a usable replay buffer for the continual-learning loop.

use super::protocol::Request;
use super::server::reference_from;
use crate::cache::{CacheHandle, ShardedProfileCache};
use crate::objective::select_optimal;
use crate::predictor::{PredictedProfile, Predictor};
use crate::snapshot::ModelSnapshot;
use gpu_model::DvfsGrid;
use std::sync::atomic::{AtomicU64, Ordering};

/// On-wire format version of the decision payload.
const FORMAT: u8 = 1;
/// Fixed-size prefix of an encoded record, before the workload bytes.
const FIXED_LEN: usize = 112;

const FLAG_SELECT: u8 = 1 << 0;
const FLAG_THRESHOLD: u8 = 1 << 1;
const FLAG_SELECTION: u8 = 1 << 2;
const FLAG_HIT: u8 = 1 << 3;

/// The frequency chosen by a `select` decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChosenClock {
    /// Index into the snapshot's used DVFS grid.
    pub index: u32,
    /// The chosen core clock, MHz (bit-exact as served).
    pub frequency_mhz: f64,
}

/// One served decision, as recorded in the journal body.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Snapshot version that served the decision.
    pub version: u64,
    /// Process-unique request id (trace flow id).
    pub req_id: u64,
    /// True for `select`, false for `predict`.
    pub select: bool,
    /// Whether a worker-local fragment cache hit answered it.
    pub hit: bool,
    /// Workload name from the request.
    pub workload: String,
    /// Request features (exactly as validated on the wire).
    pub fp_active: f64,
    /// DRAM activity from the request.
    pub dram_active: f64,
    /// Default-clock execution time from the request, seconds.
    pub exec_time: f64,
    /// Objective name (`select` only).
    pub objective: Option<String>,
    /// Performance-degradation constraint (`select` only, optional).
    pub threshold: Option<f64>,
    /// Stable digest of the quantized profile-cache key
    /// ([`crate::cache::CacheKey::shard_hash`]).
    pub cache_key: u64,
    /// FNV-1a digest over the predicted frequency/power/time curves.
    pub profile_digest: u64,
    /// The chosen clock (`select` with a non-empty grid).
    pub chosen: Option<ChosenClock>,
    /// Predicted time at the decision point (chosen clock for `select`,
    /// the max clock for `predict`), seconds.
    pub predicted_time_s: f64,
    /// Predicted energy at the decision point, joules.
    pub predicted_energy_j: f64,
    /// Predicted energy at the max-clock baseline, joules.
    pub baseline_energy_j: f64,
}

/// Borrowed mirror of [`DecisionRecord`] used on the serving hot path:
/// it encodes straight from the request's own strings, so journaling a
/// decision allocates nothing in the worker. [`DecisionRecord::encode`]
/// delegates here, keeping the owned and borrowed sides on one layout.
pub struct DecisionView<'a> {
    pub version: u64,
    pub req_id: u64,
    pub select: bool,
    pub hit: bool,
    pub workload: &'a str,
    pub fp_active: f64,
    pub dram_active: f64,
    pub exec_time: f64,
    pub objective: Option<&'a str>,
    pub threshold: Option<f64>,
    pub cache_key: u64,
    pub profile_digest: u64,
    pub chosen: Option<ChosenClock>,
    pub predicted_time_s: f64,
    pub predicted_energy_j: f64,
    pub baseline_energy_j: f64,
}

impl DecisionView<'_> {
    /// See [`DecisionRecord::encode`] for the layout contract.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(FIXED_LEN + self.workload.len());
        let mut flags = 0u8;
        if self.select {
            flags |= FLAG_SELECT;
        }
        if self.threshold.is_some() {
            flags |= FLAG_THRESHOLD;
        }
        if self.chosen.is_some() {
            flags |= FLAG_SELECTION;
        }
        if self.hit {
            flags |= FLAG_HIT;
        }
        buf.push(FORMAT);
        buf.push(flags);
        buf.push(objective_code(self.objective));
        buf.push(0);
        buf.extend_from_slice(&(self.workload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&self.req_id.to_le_bytes());
        buf.extend_from_slice(&self.cache_key.to_le_bytes());
        buf.extend_from_slice(&self.profile_digest.to_le_bytes());
        buf.extend_from_slice(&self.fp_active.to_le_bytes());
        buf.extend_from_slice(&self.dram_active.to_le_bytes());
        buf.extend_from_slice(&self.exec_time.to_le_bytes());
        buf.extend_from_slice(&self.threshold.unwrap_or(0.0).to_le_bytes());
        let (index, mhz) = match self.chosen {
            Some(c) => (c.index, c.frequency_mhz),
            None => (u32::MAX, 0.0),
        };
        buf.extend_from_slice(&index.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&mhz.to_le_bytes());
        buf.extend_from_slice(&self.predicted_time_s.to_le_bytes());
        buf.extend_from_slice(&self.predicted_energy_j.to_le_bytes());
        buf.extend_from_slice(&self.baseline_energy_j.to_le_bytes());
        buf.extend_from_slice(self.workload.as_bytes());
    }
}

impl DecisionRecord {
    /// Predicted joules saved against the max-clock baseline. Zero for
    /// `predict` records (nothing was decided) and clamped at zero for
    /// the degenerate case of an objective picking a costlier point.
    pub fn joules_saved(&self) -> f64 {
        if self.select {
            (self.baseline_energy_j - self.predicted_energy_j).max(0.0)
        } else {
            0.0
        }
    }

    /// Serializes into `buf` (cleared first). The layout is a fixed
    /// 96-byte little-endian prefix followed by the workload bytes; the
    /// [`obs::journal`] envelope supplies length, CRC, sequence, and
    /// timestamp on top.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        DecisionView {
            version: self.version,
            req_id: self.req_id,
            select: self.select,
            hit: self.hit,
            workload: &self.workload,
            fp_active: self.fp_active,
            dram_active: self.dram_active,
            exec_time: self.exec_time,
            objective: self.objective.as_deref(),
            threshold: self.threshold,
            cache_key: self.cache_key,
            profile_digest: self.profile_digest,
            chosen: self.chosen,
            predicted_time_s: self.predicted_time_s,
            predicted_energy_j: self.predicted_energy_j,
            baseline_energy_j: self.baseline_energy_j,
        }
        .encode(buf)
    }

    /// Decodes a journal body. `None` on a foreign format or a
    /// malformed length — callers count these, they never panic.
    pub fn decode(body: &[u8]) -> Option<DecisionRecord> {
        if body.len() < FIXED_LEN || body[0] != FORMAT {
            return None;
        }
        let u32_at = |o: usize| u32::from_le_bytes(body[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
        let f64_at = |o: usize| f64::from_le_bytes(body[o..o + 8].try_into().unwrap());
        let flags = body[1];
        let workload_len = u32_at(4) as usize;
        if body.len() != FIXED_LEN + workload_len {
            return None;
        }
        let workload = String::from_utf8(body[FIXED_LEN..].to_vec()).ok()?;
        let chosen = if flags & FLAG_SELECTION != 0 {
            Some(ChosenClock {
                index: u32_at(72),
                frequency_mhz: f64_at(80),
            })
        } else {
            None
        };
        Some(DecisionRecord {
            version: u64_at(8),
            req_id: u64_at(16),
            select: flags & FLAG_SELECT != 0,
            hit: flags & FLAG_HIT != 0,
            workload,
            fp_active: f64_at(40),
            dram_active: f64_at(48),
            exec_time: f64_at(56),
            objective: objective_name(body[2]).map(str::to_string),
            threshold: (flags & FLAG_THRESHOLD != 0).then(|| f64_at(64)),
            cache_key: u64_at(24),
            profile_digest: u64_at(32),
            chosen,
            predicted_time_s: f64_at(88),
            predicted_energy_j: f64_at(96),
            baseline_energy_j: f64_at(104),
        })
    }

    /// Renders one JSON line for `dvfs journal --export`. `seq`/`ts_ns`
    /// come from the journal envelope; digests render as hex strings so
    /// the f64-backed JSON number type cannot round them.
    pub fn export_line(&self, seq: u64, ts_ns: u64) -> String {
        let mut line = String::with_capacity(256);
        line.push_str(&format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"version\":{},\"req_id\":{},\"cmd\":\"{}\",",
            self.version,
            self.req_id,
            if self.select { "select" } else { "predict" }
        ));
        line.push_str(&format!(
            "\"workload\":{},\"fp_active\":{},\"dram_active\":{},\"exec_time\":{},",
            json_str(&self.workload),
            fmt_f64(self.fp_active),
            fmt_f64(self.dram_active),
            fmt_f64(self.exec_time)
        ));
        match &self.objective {
            Some(o) => line.push_str(&format!("\"objective\":{},", json_str(o))),
            None => line.push_str("\"objective\":null,"),
        }
        match self.threshold {
            Some(t) => line.push_str(&format!("\"threshold\":{},", fmt_f64(t))),
            None => line.push_str("\"threshold\":null,"),
        }
        line.push_str(&format!(
            "\"cache_key\":\"{:016x}\",\"profile_digest\":\"{:016x}\",\"hit\":{},",
            self.cache_key, self.profile_digest, self.hit
        ));
        match self.chosen {
            Some(c) => line.push_str(&format!(
                "\"chosen_index\":{},\"chosen_mhz\":{},",
                c.index,
                fmt_f64(c.frequency_mhz)
            )),
            None => line.push_str("\"chosen_index\":null,\"chosen_mhz\":null,"),
        }
        line.push_str(&format!(
            "\"predicted_time_s\":{},\"predicted_energy_j\":{},\"baseline_energy_j\":{},\"joules_saved\":{},\"crc_ok\":true}}",
            fmt_f64(self.predicted_time_s),
            fmt_f64(self.predicted_energy_j),
            fmt_f64(self.baseline_energy_j),
            fmt_f64(self.joules_saved())
        ));
        line
    }
}

/// Shortest-roundtrip float rendering that stays valid JSON (no NaN or
/// infinity ever reaches here: the wire validator rejects them).
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Minimal JSON string escaping for workload/objective names.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn objective_code(name: Option<&str>) -> u8 {
    match name {
        None => 0,
        Some("edp") => 1,
        Some("ed2p") => 2,
        Some("energy") => 3,
        Some("time") => 4,
        Some(_) => 5,
    }
}

fn objective_name(code: u8) -> Option<&'static str> {
    match code {
        1 => Some("edp"),
        2 => Some("ed2p"),
        3 => Some("energy"),
        4 => Some("time"),
        _ => None,
    }
}

/// FNV-1a over the bit patterns of the predicted curves: two profiles
/// share a digest iff frequencies, power, and time are all bitwise
/// equal — exactly the "same decision inputs" predicate replay proves.
pub fn profile_digest(profile: &PredictedProfile) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(profile.frequencies.len() as u64);
    for &f in &profile.frequencies {
        mix(f.to_bits());
    }
    for &p in &profile.power_w {
        mix(p.to_bits());
    }
    for &t in &profile.time_s {
        mix(t.to_bits());
    }
    h
}

/// The energy-accounting ledger: a lock-free f64 accumulator of
/// predicted joules saved plus the monotone counters the windowed
/// `serve.window.watts_saved` gauge derives from.
///
/// The counter is kept in **millijoules** (`u64` counters cannot carry
/// fractions; a millijoule of resolution keeps sub-second windows
/// meaningful), the exact total stays in the f64 accumulator.
pub struct EnergyLedger {
    joules_bits: AtomicU64,
    saved_mj: obs::Counter,
    decisions: obs::Counter,
}

impl Default for EnergyLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyLedger {
    /// Binds the ledger to the global registry counters.
    pub fn new() -> Self {
        let reg = obs::global();
        Self {
            joules_bits: AtomicU64::new(0f64.to_bits()),
            saved_mj: reg.counter("energy.predicted_joules_saved_mj"),
            decisions: reg.counter("energy.decisions"),
        }
    }

    /// Books one `select` decision's predicted saving.
    pub fn record(&self, joules_saved: f64) {
        self.decisions.inc();
        if joules_saved > 0.0 {
            self.saved_mj.add((joules_saved * 1e3) as u64);
            let mut cur = self.joules_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + joules_saved).to_bits();
                match self.joules_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Exact total predicted joules saved since start.
    pub fn total_joules(&self) -> f64 {
        f64::from_bits(self.joules_bits.load(Ordering::Relaxed))
    }

    /// `select` decisions booked since start.
    pub fn decisions(&self) -> u64 {
        self.decisions.get()
    }
}

/// One replay mismatch, capped-collected for reporting.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Journal sequence number of the diverging record.
    pub seq: u64,
    /// Workload name for context.
    pub workload: String,
    /// Which compared field diverged.
    pub field: &'static str,
    /// The journaled value.
    pub recorded: String,
    /// The re-computed value.
    pub replayed: String,
}

/// What [`replay`] found.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Decoded decision records replayed.
    pub records: u64,
    /// Journal records that failed to decode (foreign format).
    pub undecodable: u64,
    /// `select` decisions among the replayed records.
    pub decisions: u64,
    /// Records with any bitwise mismatch.
    pub divergent: u64,
    /// Mean absolute percentage error of replayed vs recorded predicted
    /// energy (0 when every decision reproduced bitwise).
    pub energy_mape: f64,
    /// Same for predicted time.
    pub time_mape: f64,
    /// Sum of journaled predicted savings, joules.
    pub recorded_joules_saved: f64,
    /// Sum of replayed predicted savings, joules.
    pub replayed_joules_saved: f64,
    /// Snapshot versions seen in the journal.
    pub versions: Vec<u64>,
    /// First few divergences, for diagnostics.
    pub divergences: Vec<Divergence>,
}

/// How many divergences [`replay`] keeps verbatim.
const MAX_DIVERGENCES: usize = 16;

/// Re-runs journaled decisions through `snapshot` and verifies each
/// against the recorded outcome, bit for bit.
///
/// The replay path is the worker path: the same quantized shared cache
/// (bucket-center entries make results independent of request order and
/// of cache capacity), the same snapshot-bound engines, the same
/// objective — so with the weights the journal was served from, every
/// comparison must be exact. Records from *different* weights surface
/// as divergences plus a recorded-vs-replayed MAPE, which is the drift
/// measurement the retraining loop consumes.
pub fn replay(records: &[obs::journal::JournalRecord], snapshot: &ModelSnapshot) -> ReplayReport {
    let mut report = ReplayReport::default();
    let predictor =
        Predictor::with_engines(&snapshot.models, &snapshot.engines, snapshot.spec.clone());
    let freqs = DvfsGrid::for_spec(&snapshot.spec).used();
    let cache = ShardedProfileCache::new(4096, 4);
    let mut ape_energy = 0.0f64;
    let mut ape_time = 0.0f64;
    let mut compared = 0u64;
    for record in records {
        let decision = match DecisionRecord::decode(&record.body) {
            Some(d) => d,
            None => {
                report.undecodable += 1;
                continue;
            }
        };
        report.records += 1;
        if !report.versions.contains(&decision.version) {
            report.versions.push(decision.version);
        }
        let req = if decision.select {
            Request::select(
                &decision.workload,
                decision.fp_active,
                decision.dram_active,
                decision.exec_time,
                decision.objective.as_deref().unwrap_or("edp"),
                decision.threshold,
            )
        } else {
            Request::predict(
                &decision.workload,
                decision.fp_active,
                decision.dram_active,
                decision.exec_time,
            )
        };
        let reference = reference_from(&req, snapshot.spec.max_core_mhz);
        let profile = predictor.predict_from_reference_cached(&cache, &reference, &freqs);
        let mut diverged = false;
        let mut diverge = |field: &'static str, recorded: String, replayed: String| {
            diverged = true;
            if report.divergences.len() < MAX_DIVERGENCES {
                report.divergences.push(Divergence {
                    seq: record.seq,
                    workload: decision.workload.clone(),
                    field,
                    recorded,
                    replayed,
                });
            }
        };
        let replayed_digest = profile_digest(&profile);
        if replayed_digest != decision.profile_digest {
            diverge(
                "profile_digest",
                format!("{:016x}", decision.profile_digest),
                format!("{replayed_digest:016x}"),
            );
        }
        let replayed_key = cache
            .key(
                &snapshot.spec,
                decision.fp_active,
                decision.dram_active,
                &freqs,
            )
            .shard_hash();
        if replayed_key != decision.cache_key {
            diverge(
                "cache_key",
                format!("{:016x}", decision.cache_key),
                format!("{replayed_key:016x}"),
            );
        }
        let max_idx = profile.max_freq_index();
        let (rep_idx, rep_time, rep_energy) = if decision.select {
            report.decisions += 1;
            let objective =
                super::protocol::parse_objective(decision.objective.as_deref().unwrap_or(""))
                    .unwrap_or(crate::objective::Objective::Edp);
            let selection = select_optimal(
                &profile.frequencies,
                &profile.energy_j,
                &profile.time_s,
                objective,
                decision.threshold,
            );
            match decision.chosen {
                Some(chosen) => {
                    if selection.index as u32 != chosen.index {
                        diverge(
                            "chosen_index",
                            chosen.index.to_string(),
                            selection.index.to_string(),
                        );
                    }
                    if selection.frequency_mhz.to_bits() != chosen.frequency_mhz.to_bits() {
                        diverge(
                            "chosen_mhz",
                            format!("{}", chosen.frequency_mhz),
                            format!("{}", selection.frequency_mhz),
                        );
                    }
                }
                None => diverge("chosen", "none".to_string(), "some".to_string()),
            }
            (
                selection.index,
                profile.time_s[selection.index],
                profile.energy_j[selection.index],
            )
        } else {
            (max_idx, profile.time_s[max_idx], profile.energy_j[max_idx])
        };
        let _ = rep_idx;
        if rep_time.to_bits() != decision.predicted_time_s.to_bits() {
            diverge(
                "predicted_time_s",
                format!("{}", decision.predicted_time_s),
                format!("{rep_time}"),
            );
        }
        if rep_energy.to_bits() != decision.predicted_energy_j.to_bits() {
            diverge(
                "predicted_energy_j",
                format!("{}", decision.predicted_energy_j),
                format!("{rep_energy}"),
            );
        }
        let rep_baseline = profile.energy_j[max_idx];
        if rep_baseline.to_bits() != decision.baseline_energy_j.to_bits() {
            diverge(
                "baseline_energy_j",
                format!("{}", decision.baseline_energy_j),
                format!("{rep_baseline}"),
            );
        }
        compared += 1;
        if decision.predicted_energy_j.abs() > f64::EPSILON {
            ape_energy +=
                ((rep_energy - decision.predicted_energy_j) / decision.predicted_energy_j).abs();
        }
        if decision.predicted_time_s.abs() > f64::EPSILON {
            ape_time += ((rep_time - decision.predicted_time_s) / decision.predicted_time_s).abs();
        }
        report.recorded_joules_saved += decision.joules_saved();
        if decision.select {
            report.replayed_joules_saved += (rep_baseline - rep_energy).max(0.0);
        }
        if diverged {
            report.divergent += 1;
        }
    }
    if compared > 0 {
        report.energy_mape = 100.0 * ape_energy / compared as f64;
        report.time_mape = 100.0 * ape_time / compared as f64;
    }
    report.versions.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> DecisionRecord {
        DecisionRecord {
            version: 3,
            req_id: 41,
            select: true,
            hit: true,
            workload: "lammps-β".to_string(),
            fp_active: 0.62,
            dram_active: 0.31,
            exec_time: 12.5,
            objective: Some("edp".to_string()),
            threshold: Some(0.05),
            cache_key: 0xDEAD_BEEF_0123_4567,
            profile_digest: 0x0123_4567_89AB_CDEF,
            chosen: Some(ChosenClock {
                index: 7,
                frequency_mhz: 1155.0,
            }),
            predicted_time_s: 13.25,
            predicted_energy_j: 3120.75,
            baseline_energy_j: 3900.5,
        }
    }

    #[test]
    fn record_round_trips_bitwise() {
        let record = sample_record();
        let mut buf = Vec::new();
        record.encode(&mut buf);
        let decoded = DecisionRecord::decode(&buf).unwrap();
        assert_eq!(decoded, record);
        // A predict record without optionals round-trips too.
        let predict = DecisionRecord {
            select: false,
            objective: None,
            threshold: None,
            chosen: None,
            hit: false,
            ..record
        };
        predict.encode(&mut buf);
        assert_eq!(DecisionRecord::decode(&buf).unwrap(), predict);
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        let record = sample_record();
        let mut buf = Vec::new();
        record.encode(&mut buf);
        assert!(DecisionRecord::decode(&buf[..buf.len() - 1]).is_none());
        assert!(DecisionRecord::decode(&[]).is_none());
        let mut foreign = buf.clone();
        foreign[0] = 99;
        assert!(DecisionRecord::decode(&foreign).is_none());
    }

    #[test]
    fn export_line_is_valid_json_with_hex_digests() {
        let record = sample_record();
        let line = record.export_line(12, 1_700_000_000_000_000_000);
        let value: obs::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value.get("seq").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(
            value.get("cache_key").and_then(|v| v.as_str()),
            Some("deadbeef01234567")
        );
        assert_eq!(
            value.get("workload").and_then(|v| v.as_str()),
            Some("lammps-β")
        );
        assert_eq!(value.get("crc_ok").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            value.get("chosen_index").and_then(|v| v.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn joules_saved_clamps_and_ignores_predicts() {
        let mut record = sample_record();
        assert!((record.joules_saved() - 779.75).abs() < 1e-9);
        record.predicted_energy_j = record.baseline_energy_j + 1.0;
        assert_eq!(record.joules_saved(), 0.0);
        record.select = false;
        assert_eq!(record.joules_saved(), 0.0);
    }

    #[test]
    fn ledger_accumulates_exactly() {
        let ledger = EnergyLedger::new();
        let before = ledger.decisions();
        ledger.record(1.5);
        ledger.record(0.25);
        ledger.record(0.0);
        assert!((ledger.total_joules() - 1.75).abs() < 1e-12);
        assert_eq!(ledger.decisions() - before, 3);
    }

    #[test]
    fn profile_digest_separates_bitwise_changes() {
        let profile = PredictedProfile::new(
            "w".into(),
            vec![705.0, 1410.0],
            vec![200.0, 300.0],
            vec![1.6, 1.0],
        );
        let base = profile_digest(&profile);
        let mut tweaked = profile.clone();
        tweaked.power_w[1] = f64::from_bits(tweaked.power_w[1].to_bits() ^ 1);
        assert_ne!(base, profile_digest(&tweaked));
        assert_eq!(base, profile_digest(&profile.clone()));
    }
}
