//! Sharded handler→worker dispatch with work stealing.
//!
//! The previous serving queue was one `Mutex<VecDeque<Job>>` plus a
//! `Condvar`: every handler and every worker serialized on the same lock
//! and every push took the condvar's wait-queue lock, so at saturation
//! the queue itself showed up ahead of the prediction work. This
//! dispatcher gives each worker its own mutex'd deque; handlers push a
//! whole connection burst to one shard (round-robin across bursts), the
//! owning worker drains its shard in batches, and an idle worker steals
//! a batch from the busiest sibling instead of sleeping. Two workers
//! only ever contend when one of them is otherwise idle.
//!
//! Parking uses a separate `Mutex<()>`/`Condvar` pair plus an atomic
//! pending count, ordered to make lost wakeups impossible: a pusher
//! increments `pending`, then passes through the sleep mutex *before*
//! notifying — so a worker that observed `pending == 0` under that mutex
//! is guaranteed to be inside `wait_timeout` (or re-checking) when the
//! notify lands. Waits still time out at a coarse poll interval so
//! workers re-check stop/version flags even on an idle server.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Shard<T> {
    jobs: Mutex<VecDeque<T>>,
}

/// A fixed set of per-worker job shards with batched push/pop and work
/// stealing. `T` is the job type; the dispatcher never inspects it.
pub struct Dispatcher<T> {
    shards: Box<[Shard<T>]>,
    /// Jobs pushed but not yet popped, across all shards. Maintained
    /// push-side before wakeup and pop-side after removal, so a worker
    /// that sees 0 under the sleep mutex can safely park.
    pending: AtomicUsize,
    /// Round-robin cursor: each pushed burst lands wholly in one shard
    /// (keeping it poppable as one batch), successive bursts spread out.
    cursor: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl<T> Dispatcher<T> {
    /// Creates a dispatcher with one shard per worker.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "dispatcher needs at least one shard");
        Self {
            shards: (0..workers)
                .map(|_| Shard {
                    jobs: Mutex::new(VecDeque::new()),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Number of shards (== workers).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued (pushed, not yet popped).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Whether no job is queued. A job already popped by a worker is the
    /// worker's responsibility — drain loops pair this with per-worker
    /// completion of the batch in hand.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Pushes one job (see [`Dispatcher::push_batch`]).
    pub fn push(&self, job: T) {
        self.push_batch(std::iter::once(job));
    }

    /// Pushes a burst of jobs into the next round-robin shard as one
    /// unit, so the popping worker can coalesce the whole burst into one
    /// prediction batch. Wakes one parked worker per burst (every job in
    /// the burst goes to the same worker anyway).
    pub fn push_batch(&self, jobs: impl IntoIterator<Item = T>) {
        let shard = &self.shards[self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len()];
        let mut n = 0;
        {
            let mut queue = shard.jobs.lock().unwrap();
            for job in jobs {
                queue.push_back(job);
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        self.pending.fetch_add(n, Ordering::Release);
        // Pass through the sleep mutex so any worker that read
        // `pending == 0` has since reached `wait_timeout`.
        drop(self.sleep.lock().unwrap());
        self.wake.notify_one();
    }

    /// Wakes every parked worker (shutdown, snapshot publish).
    pub fn wake_all(&self) {
        drop(self.sleep.lock().unwrap());
        self.wake.notify_all();
    }

    /// Pops up to `max` jobs into `out` (cleared first): from the
    /// worker's own shard if it has any, otherwise stolen from the
    /// fullest sibling reachable without blocking. Returns with `out`
    /// empty after parking for at most `park` without work — callers
    /// re-check stop/rebind conditions then.
    pub fn pop_batch_into(&self, worker: usize, max: usize, park: Duration, out: &mut Vec<T>) {
        out.clear();
        let own = &self.shards[worker % self.shards.len()];
        {
            let mut queue = own.jobs.lock().unwrap();
            let n = queue.len().min(max);
            out.extend(queue.drain(..n));
        }
        if out.is_empty() && self.shards.len() > 1 {
            self.steal_into(worker, max, out);
        }
        if !out.is_empty() {
            self.pending.fetch_sub(out.len(), Ordering::Release);
            return;
        }
        // Park until a push passes through the sleep mutex or the poll
        // interval elapses. Checking `pending` under the mutex closes the
        // race with a push that landed between the drains above and here.
        let guard = self.sleep.lock().unwrap();
        if self.pending.load(Ordering::Acquire) == 0 {
            let _ = self.wake.wait_timeout(guard, park).unwrap();
        }
    }

    /// Steals up to `max` jobs from the fullest sibling shard, skipping
    /// any shard whose lock is currently held (a busy owner) — stealing
    /// must never add contention to a worker that is making progress.
    fn steal_into(&self, worker: usize, max: usize, out: &mut Vec<T>) {
        let mut best: Option<(usize, usize)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if i == worker % self.shards.len() {
                continue;
            }
            if let Ok(queue) = shard.jobs.try_lock() {
                let len = queue.len();
                if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
                    best = Some((i, len));
                }
            }
        }
        if let Some((victim, _)) = best {
            if let Ok(mut queue) = self.shards[victim].jobs.try_lock() {
                let n = queue.len().min(max);
                out.extend(queue.drain(..n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    const PARK: Duration = Duration::from_millis(5);

    #[test]
    fn bursts_stay_whole_and_round_robin_across_shards() {
        let d: Dispatcher<u32> = Dispatcher::new(2);
        d.push_batch([1, 2, 3]);
        d.push_batch([4, 5]);
        assert_eq!(d.pending(), 5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        d.pop_batch_into(0, 16, PARK, &mut a);
        d.pop_batch_into(1, 16, PARK, &mut b);
        // Each burst arrived intact in its own shard.
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(b, vec![4, 5]);
        assert!(d.is_empty());
    }

    #[test]
    fn pop_respects_max_batch() {
        let d: Dispatcher<u32> = Dispatcher::new(1);
        d.push_batch(0..10);
        let mut out = Vec::new();
        d.pop_batch_into(0, 4, PARK, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(d.pending(), 6);
        d.pop_batch_into(0, 100, PARK, &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_sibling() {
        let d: Dispatcher<u32> = Dispatcher::new(4);
        // All bursts land in shard 0's round-robin turns 0 and 4.
        d.push_batch([7, 8]);
        let mut out = Vec::new();
        // Worker 2's own shard is empty; it must steal the burst.
        d.pop_batch_into(2, 16, PARK, &mut out);
        assert_eq!(out, vec![7, 8]);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_pop_parks_then_returns_empty() {
        let d: Dispatcher<u32> = Dispatcher::new(1);
        let mut out = vec![99];
        let t0 = std::time::Instant::now();
        d.pop_batch_into(0, 16, Duration::from_millis(20), &mut out);
        assert!(out.is_empty(), "pop must clear the output vec");
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "must have parked"
        );
    }

    #[test]
    fn concurrent_push_pop_loses_no_jobs() {
        let workers = 3;
        let per_pusher = 5_000u64;
        let pushers = 4;
        let d: Arc<Dispatcher<u64>> = Arc::new(Dispatcher::new(workers));
        let popped = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..pushers {
                let d = Arc::clone(&d);
                scope.spawn(move || {
                    let mut next = p * per_pusher;
                    while next < (p + 1) * per_pusher {
                        let burst = (next % 7) + 1;
                        let end = ((p + 1) * per_pusher).min(next + burst);
                        d.push_batch(next..end);
                        next = end;
                    }
                });
            }
            let total = pushers * per_pusher;
            for w in 0..workers {
                let d = Arc::clone(&d);
                let popped = Arc::clone(&popped);
                let sum = Arc::clone(&sum);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while popped.load(Ordering::Acquire) < total {
                        d.pop_batch_into(w, 32, Duration::from_millis(1), &mut out);
                        if !out.is_empty() {
                            sum.fetch_add(out.iter().sum::<u64>(), Ordering::Relaxed);
                            popped.fetch_add(out.len() as u64, Ordering::Release);
                        }
                    }
                });
            }
        });
        assert_eq!(popped.load(Ordering::Acquire), pushers * per_pusher);
        // Every job arrived exactly once: the sum over 0..N is exact.
        let n = pushers * per_pusher;
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert!(d.is_empty());
    }
}
