//! The serve wire protocol: one JSON request object per frame, one JSON
//! response object per frame.
//!
//! The compat `serde_derive` requires every named field to be present on
//! deserialize (there is no `#[serde(default)]`), so both sides always
//! send the full struct and use `null` for fields a command does not
//! need. [`Request`] constructors fill the boilerplate.
//!
//! Commands:
//!
//! | `cmd`      | inputs                                              | reply payload |
//! |------------|-----------------------------------------------------|---------------|
//! | `ping`     | —                                                   | `ok`, `version` |
//! | `version`  | —                                                   | current snapshot version + label |
//! | `predict`  | `workload`, `fp_active`, `dram_active`, `exec_time` | full [`PredictedProfile`] |
//! | `select`   | predict inputs + `objective`, optional `threshold`  | profile + [`Selection`] |
//! | `stats`    | —                                                   | cache counters + [`ServerStatsReply`] (uptime, build, windowed rates, SLO/quality state) |
//! | `scrape`   | —                                                   | Prometheus text exposition in `text` |
//! | `reload`   | `path` (models JSON)                                | newly published version |
//! | `shutdown` | —                                                   | `ok`, then the server drains and exits |
//!
//! The full `stats` reply schema is pinned by a snapshot test below —
//! dashboards (`dvfs top`) and scripts parse it, so adding a field is
//! fine but renaming or removing one must be deliberate.

use crate::objective::Selection;
use crate::predictor::PredictedProfile;
use serde::{Deserialize, Serialize};

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Command discriminator (see the module table).
    pub cmd: String,
    /// Workload name (predict/select).
    pub workload: Option<String>,
    /// Combined FP pipe activity in `[0, 1]` from the default-clock
    /// profiling run (predict/select).
    pub fp_active: Option<f64>,
    /// DRAM activity in `[0, 1]` from the default-clock run
    /// (predict/select).
    pub dram_active: Option<f64>,
    /// Execution time in seconds at the default clock (predict/select).
    pub exec_time: Option<f64>,
    /// Objective name: `edp`, `ed2p`, `energy`, `time` (select).
    pub objective: Option<String>,
    /// Performance-degradation threshold, fractional (select).
    pub threshold: Option<f64>,
    /// Models JSON path (reload).
    pub path: Option<String>,
}

impl Request {
    fn blank(cmd: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            workload: None,
            fp_active: None,
            dram_active: None,
            exec_time: None,
            objective: None,
            threshold: None,
            path: None,
        }
    }

    /// A `ping` request.
    pub fn ping() -> Self {
        Self::blank("ping")
    }

    /// A `version` request.
    pub fn version() -> Self {
        Self::blank("version")
    }

    /// A `stats` request.
    pub fn stats() -> Self {
        Self::blank("stats")
    }

    /// A `scrape` request (Prometheus text exposition over the
    /// protocol port — the HTTP telemetry port serves the same body).
    pub fn scrape() -> Self {
        Self::blank("scrape")
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Self {
        Self::blank("shutdown")
    }

    /// A `reload` request for the models JSON at `path`.
    pub fn reload(path: &str) -> Self {
        let mut r = Self::blank("reload");
        r.path = Some(path.to_string());
        r
    }

    /// A `predict` request from a default-clock profiling run.
    pub fn predict(workload: &str, fp_active: f64, dram_active: f64, exec_time: f64) -> Self {
        let mut r = Self::blank("predict");
        r.workload = Some(workload.to_string());
        r.fp_active = Some(fp_active);
        r.dram_active = Some(dram_active);
        r.exec_time = Some(exec_time);
        r
    }

    /// A `select` request: predict plus frequency selection.
    pub fn select(
        workload: &str,
        fp_active: f64,
        dram_active: f64,
        exec_time: f64,
        objective: &str,
        threshold: Option<f64>,
    ) -> Self {
        let mut r = Self::predict(workload, fp_active, dram_active, exec_time);
        r.cmd = "select".to_string();
        r.objective = Some(objective.to_string());
        r.threshold = threshold;
        r
    }
}

/// Cache counters on the wire (`stats` reply). Mirrors
/// [`crate::cache::CacheStats`] plus occupancy, as plain fields — the
/// internal struct stays wire-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsReply {
    /// Total lookups.
    pub lookups: f64,
    /// Lookups served from cache.
    pub hits: f64,
    /// Lookups that computed and inserted.
    pub misses: f64,
    /// Capacity evictions.
    pub evictions: f64,
    /// Hit fraction (0.0 on an idle cache, never NaN).
    pub hit_rate: f64,
    /// Resident entries across all shards.
    pub resident: f64,
    /// Number of independent shards.
    pub shards: f64,
}

/// One objective's burn-rate state on the wire (`stats` reply).
/// Mirrors [`obs::slo::SloStatus`] with wire-friendly field types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReply {
    /// Objective name (`latency_p99`, `availability`, …).
    pub name: String,
    /// Required good fraction, e.g. 0.99.
    pub target: f64,
    /// Burn rate over the fast window (0 with no data).
    pub burn_fast: f64,
    /// Burn rate over the slow window (0 with no data).
    pub burn_slow: f64,
    /// Whether both windows currently exceed the burn threshold.
    pub firing: bool,
    /// Rising-edge alerts since start.
    pub alerts: f64,
}

/// One model-quality monitor's state on the wire (`stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReply {
    /// Monitored model name (`power`, `time`).
    pub model: String,
    /// Rolling MAPE over the monitor window, percent.
    pub mape: f64,
    /// Worst single APE in the window, percent.
    pub max_ape: f64,
    /// Ground-truth pairs observed so far.
    pub samples: f64,
    /// Alert-band crossings so far.
    pub alerts: f64,
    /// Whether the rolling MAPE currently sits above the band.
    pub above_band: bool,
}

/// Server-level state on the wire (`stats` reply): identity, uptime,
/// and rolling-window rates from the observability plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsReply {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Crate version baked in at build time.
    pub build_version: String,
    /// Git revision baked in at build time (`unknown` outside CI).
    pub build_git: String,
    /// Precision the live snapshot actually serves (`f64`/`f32`/`bf16`)
    /// — post-veto, so it can differ from `--precision`.
    pub precision: String,
    /// The rolling window the rates below cover, seconds (0 until the
    /// sampler has two ticks).
    pub window_s: f64,
    /// Requests per second over the window.
    pub qps: f64,
    /// Median request latency over the window, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency over the window, microseconds.
    pub p99_us: f64,
    /// Cache hit fraction over the window (0 on no traffic).
    pub hit_rate: f64,
    /// Per-objective burn-rate state.
    pub slo: Vec<SloReply>,
    /// Per-model drift-monitor state (empty unless the server observes
    /// ground truth).
    pub quality: Vec<QualityReply>,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// True unless the request failed; then `error` says why.
    pub ok: bool,
    /// Human-readable failure reason (`ok == false` only).
    pub error: Option<String>,
    /// Version of the [`crate::snapshot::ModelSnapshot`] that served the
    /// request (0 for replies that never touched the models, e.g. a
    /// protocol error).
    pub version: f64,
    /// Snapshot provenance label (`version` command only).
    pub label: Option<String>,
    /// The predicted profile (predict/select).
    pub profile: Option<PredictedProfile>,
    /// The frequency selection (select).
    pub selection: Option<Selection>,
    /// Cache counters (`stats` command only).
    pub stats: Option<CacheStatsReply>,
    /// Server identity, uptime, and windowed rates (`stats` only).
    pub server: Option<ServerStatsReply>,
    /// Prometheus text exposition (`scrape` only).
    pub text: Option<String>,
}

impl Response {
    /// A minimal success reply carrying only the snapshot version.
    pub fn ok(version: u64) -> Self {
        Self {
            ok: true,
            error: None,
            version: version as f64,
            label: None,
            profile: None,
            selection: None,
            stats: None,
            server: None,
            text: None,
        }
    }

    /// A failure reply. Protocol-level failures carry version 0.
    pub fn err(version: u64, message: impl Into<String>) -> Self {
        let mut r = Self::ok(version);
        r.ok = false;
        r.error = Some(message.into());
        r
    }
}

/// Parses an objective name from the wire (same names the CLI accepts).
pub fn parse_objective(name: &str) -> Result<crate::objective::Objective, String> {
    use crate::objective::Objective;
    match name {
        "edp" => Ok(Objective::Edp),
        "ed2p" => Ok(Objective::Ed2p),
        "energy" => Ok(Objective::EnergyOnly),
        "time" => Ok(Objective::TimeOnly),
        other => Err(format!(
            "unknown objective `{other}` (expected edp|ed2p|energy|time)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request::select("lammps", 0.62, 0.31, 12.5, "edp", Some(0.05));
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
        // None fields serialize as null and come back as None.
        assert!(json.contains("\"path\":null"));
    }

    #[test]
    fn response_floats_round_trip_bitwise() {
        let profile = PredictedProfile::new(
            "w".into(),
            vec![705.0, 1410.0],
            vec![213.4567890123, 400.0000000001],
            vec![1.618_033_988_749_895, 1.0],
        );
        let mut resp = Response::ok(3);
        resp.profile = Some(profile.clone());
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        let got = back.profile.unwrap();
        for (a, b) in profile.energy_j.iter().zip(&got.energy_j) {
            assert_eq!(a.to_bits(), b.to_bits(), "energy must survive the wire");
        }
        for (a, b) in profile.time_s.iter().zip(&got.time_s) {
            assert_eq!(a.to_bits(), b.to_bits(), "time must survive the wire");
        }
    }

    #[test]
    fn unknown_objective_is_a_clean_error() {
        assert!(parse_objective("edp").is_ok());
        assert!(parse_objective("frobnicate").is_err());
    }

    /// Collects every dotted key path in a JSON tree; array elements
    /// contribute their paths under `[]` (one representative element is
    /// enough — the schema is homogeneous).
    fn key_paths(value: &serde_json::Value, prefix: &str, out: &mut Vec<String>) {
        match value {
            serde_json::Value::Object(entries) => {
                for (k, v) in entries {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    key_paths(v, &path, out);
                }
            }
            serde_json::Value::Array(items) => {
                if let Some(first) = items.first() {
                    key_paths(first, &format!("{prefix}[]"), out);
                }
            }
            _ => {}
        }
    }

    /// Pins the full `stats`-frame schema. `dvfs top` and shell smoke
    /// scripts parse these exact paths; a rename or removal here is a
    /// breaking dashboard change and must update this list consciously.
    #[test]
    fn stats_frame_schema_is_pinned() {
        let mut resp = Response::ok(3);
        resp.stats = Some(CacheStatsReply {
            lookups: 10.0,
            hits: 8.0,
            misses: 2.0,
            evictions: 0.0,
            hit_rate: 0.8,
            resident: 2.0,
            shards: 4.0,
        });
        resp.server = Some(ServerStatsReply {
            uptime_s: 12.5,
            build_version: "0.1.0".to_string(),
            build_git: "unknown".to_string(),
            precision: "f64".to_string(),
            window_s: 10.0,
            qps: 1000.0,
            p50_us: 120.0,
            p99_us: 900.0,
            hit_rate: 0.8,
            slo: vec![SloReply {
                name: "latency_p99".to_string(),
                target: 0.99,
                burn_fast: 0.1,
                burn_slow: 0.05,
                firing: false,
                alerts: 0.0,
            }],
            quality: vec![QualityReply {
                model: "power".to_string(),
                mape: 3.0,
                max_ape: 9.0,
                samples: 100.0,
                alerts: 0.0,
                above_band: false,
            }],
        });
        let json = serde_json::to_string(&resp).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut paths = Vec::new();
        key_paths(&value, "", &mut paths);
        paths.sort();
        let expected = [
            "error",
            "label",
            "ok",
            "profile",
            "selection",
            "server",
            "server.build_git",
            "server.build_version",
            "server.hit_rate",
            "server.p50_us",
            "server.p99_us",
            "server.precision",
            "server.qps",
            "server.quality",
            "server.quality[].above_band",
            "server.quality[].alerts",
            "server.quality[].mape",
            "server.quality[].max_ape",
            "server.quality[].model",
            "server.quality[].samples",
            "server.slo",
            "server.slo[].alerts",
            "server.slo[].burn_fast",
            "server.slo[].burn_slow",
            "server.slo[].firing",
            "server.slo[].name",
            "server.slo[].target",
            "server.uptime_s",
            "server.window_s",
            "stats",
            "stats.evictions",
            "stats.hit_rate",
            "stats.hits",
            "stats.lookups",
            "stats.misses",
            "stats.resident",
            "stats.shards",
            "text",
            "version",
        ];
        assert_eq!(
            paths, expected,
            "stats-frame schema changed — update dashboards (dvfs top, check.sh) first"
        );
        // And the extended reply round-trips.
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
