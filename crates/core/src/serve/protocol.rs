//! The serve wire protocol: one JSON request object per frame, one JSON
//! response object per frame.
//!
//! The compat `serde_derive` requires every named field to be present on
//! deserialize (there is no `#[serde(default)]`), so both sides always
//! send the full struct and use `null` for fields a command does not
//! need. [`Request`] constructors fill the boilerplate.
//!
//! Commands:
//!
//! | `cmd`      | inputs                                              | reply payload |
//! |------------|-----------------------------------------------------|---------------|
//! | `ping`     | —                                                   | `ok`, `version` |
//! | `version`  | —                                                   | current snapshot version + label |
//! | `predict`  | `workload`, `fp_active`, `dram_active`, `exec_time` | full [`PredictedProfile`] |
//! | `select`   | predict inputs + `objective`, optional `threshold`  | profile + [`Selection`] |
//! | `stats`    | —                                                   | cache counters + [`ServerStatsReply`] (uptime, build, windowed rates, SLO/quality state) |
//! | `scrape`   | —                                                   | Prometheus text exposition in `text` |
//! | `reload`   | `path` (models JSON)                                | newly published version |
//! | `shutdown` | —                                                   | `ok`, then the server drains and exits |
//!
//! The full `stats` reply schema is pinned by a snapshot test below —
//! dashboards (`dvfs top`) and scripts parse it, so adding a field is
//! fine but renaming or removing one must be deliberate.

use crate::objective::Selection;
use crate::predictor::PredictedProfile;
use serde::{Deserialize, Serialize};

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Command discriminator (see the module table).
    pub cmd: String,
    /// Workload name (predict/select).
    pub workload: Option<String>,
    /// Combined FP pipe activity in `[0, 1]` from the default-clock
    /// profiling run (predict/select).
    pub fp_active: Option<f64>,
    /// DRAM activity in `[0, 1]` from the default-clock run
    /// (predict/select).
    pub dram_active: Option<f64>,
    /// Execution time in seconds at the default clock (predict/select).
    pub exec_time: Option<f64>,
    /// Objective name: `edp`, `ed2p`, `energy`, `time` (select).
    pub objective: Option<String>,
    /// Performance-degradation threshold, fractional (select).
    pub threshold: Option<f64>,
    /// Models JSON path (reload).
    pub path: Option<String>,
}

impl Request {
    fn blank(cmd: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            workload: None,
            fp_active: None,
            dram_active: None,
            exec_time: None,
            objective: None,
            threshold: None,
            path: None,
        }
    }

    /// A `ping` request.
    pub fn ping() -> Self {
        Self::blank("ping")
    }

    /// A `version` request.
    pub fn version() -> Self {
        Self::blank("version")
    }

    /// A `stats` request.
    pub fn stats() -> Self {
        Self::blank("stats")
    }

    /// A `scrape` request (Prometheus text exposition over the
    /// protocol port — the HTTP telemetry port serves the same body).
    pub fn scrape() -> Self {
        Self::blank("scrape")
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Self {
        Self::blank("shutdown")
    }

    /// A `reload` request for the models JSON at `path`.
    pub fn reload(path: &str) -> Self {
        let mut r = Self::blank("reload");
        r.path = Some(path.to_string());
        r
    }

    /// A `predict` request from a default-clock profiling run.
    pub fn predict(workload: &str, fp_active: f64, dram_active: f64, exec_time: f64) -> Self {
        let mut r = Self::blank("predict");
        r.workload = Some(workload.to_string());
        r.fp_active = Some(fp_active);
        r.dram_active = Some(dram_active);
        r.exec_time = Some(exec_time);
        r
    }

    /// A `select` request: predict plus frequency selection.
    pub fn select(
        workload: &str,
        fp_active: f64,
        dram_active: f64,
        exec_time: f64,
        objective: &str,
        threshold: Option<f64>,
    ) -> Self {
        let mut r = Self::predict(workload, fp_active, dram_active, exec_time);
        r.cmd = "select".to_string();
        r.objective = Some(objective.to_string());
        r.threshold = threshold;
        r
    }
}

/// Cache counters on the wire (`stats` reply). Mirrors
/// [`crate::cache::CacheStats`] plus occupancy, as plain fields — the
/// internal struct stays wire-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsReply {
    /// Total lookups.
    pub lookups: f64,
    /// Lookups served from cache.
    pub hits: f64,
    /// Lookups that computed and inserted.
    pub misses: f64,
    /// Capacity evictions.
    pub evictions: f64,
    /// Hit fraction (0.0 on an idle cache, never NaN).
    pub hit_rate: f64,
    /// Resident entries across all shards.
    pub resident: f64,
    /// Number of independent shards.
    pub shards: f64,
}

/// One objective's burn-rate state on the wire (`stats` reply).
/// Mirrors [`obs::slo::SloStatus`] with wire-friendly field types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReply {
    /// Objective name (`latency_p99`, `availability`, …).
    pub name: String,
    /// Required good fraction, e.g. 0.99.
    pub target: f64,
    /// Burn rate over the fast window (0 with no data).
    pub burn_fast: f64,
    /// Burn rate over the slow window (0 with no data).
    pub burn_slow: f64,
    /// Whether both windows currently exceed the burn threshold.
    pub firing: bool,
    /// Rising-edge alerts since start.
    pub alerts: f64,
}

/// One model-quality monitor's state on the wire (`stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReply {
    /// Monitored model name (`power`, `time`).
    pub model: String,
    /// Rolling MAPE over the monitor window, percent.
    pub mape: f64,
    /// Worst single APE in the window, percent.
    pub max_ape: f64,
    /// Ground-truth pairs observed so far.
    pub samples: f64,
    /// Alert-band crossings so far.
    pub alerts: f64,
    /// Whether the rolling MAPE currently sits above the band.
    pub above_band: bool,
}

/// Energy-accounting state on the wire (`stats` reply): the ledger's
/// running totals plus the journal's durability counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReply {
    /// Predicted joules saved vs the max-clock baseline since start.
    pub predicted_joules_saved: f64,
    /// `select` decisions booked since start.
    pub decisions: f64,
    /// Predicted watts saved over the rolling window.
    pub window_watts_saved: f64,
    /// Decision records made durable since start (0 with no journal).
    pub journal_appended: f64,
    /// Decision records dropped by full rings since start.
    pub journal_dropped: f64,
}

/// Server-level state on the wire (`stats` reply): identity, uptime,
/// and rolling-window rates from the observability plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsReply {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Crate version baked in at build time.
    pub build_version: String,
    /// Git revision baked in at build time (`unknown` outside CI).
    pub build_git: String,
    /// Precision the live snapshot actually serves (`f64`/`f32`/`bf16`)
    /// — post-veto, so it can differ from `--precision`.
    pub precision: String,
    /// The rolling window the rates below cover, seconds (0 until the
    /// sampler has two ticks).
    pub window_s: f64,
    /// Requests per second over the window.
    pub qps: f64,
    /// Median request latency over the window, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency over the window, microseconds.
    pub p99_us: f64,
    /// Cache hit fraction over the window (0 on no traffic).
    pub hit_rate: f64,
    /// Per-objective burn-rate state.
    pub slo: Vec<SloReply>,
    /// Per-model drift-monitor state (empty unless the server observes
    /// ground truth).
    pub quality: Vec<QualityReply>,
    /// Energy-savings accounting and journal durability counters.
    pub energy: EnergyReply,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// True unless the request failed; then `error` says why.
    pub ok: bool,
    /// Human-readable failure reason (`ok == false` only).
    pub error: Option<String>,
    /// Version of the [`crate::snapshot::ModelSnapshot`] that served the
    /// request (0 for replies that never touched the models, e.g. a
    /// protocol error).
    pub version: f64,
    /// Snapshot provenance label (`version` command only).
    pub label: Option<String>,
    /// The predicted profile (predict/select).
    pub profile: Option<PredictedProfile>,
    /// The frequency selection (select).
    pub selection: Option<Selection>,
    /// Cache counters (`stats` command only).
    pub stats: Option<CacheStatsReply>,
    /// Server identity, uptime, and windowed rates (`stats` only).
    pub server: Option<ServerStatsReply>,
    /// Prometheus text exposition (`scrape` only).
    pub text: Option<String>,
}

impl Response {
    /// A minimal success reply carrying only the snapshot version.
    pub fn ok(version: u64) -> Self {
        Self {
            ok: true,
            error: None,
            version: version as f64,
            label: None,
            profile: None,
            selection: None,
            stats: None,
            server: None,
            text: None,
        }
    }

    /// A failure reply. Protocol-level failures carry version 0.
    pub fn err(version: u64, message: impl Into<String>) -> Self {
        let mut r = Self::ok(version);
        r.ok = false;
        r.error = Some(message.into());
        r
    }
}

/// Serde-free fast paths for the two hot frame shapes.
///
/// The compat `serde_json` builds a boxed [`serde::value::Value`] tree on
/// both serialize and parse; at ~4.4 KB per predict response that tree —
/// not the model math — dominated the serving profile. This module
/// renders and parses the hot shapes directly against byte buffers,
/// **byte-for-byte identical** to the serde output (pinned by tests
/// below): same field order (declaration order), same float rendering
/// (shortest-roundtrip `{}`, non-finite as `null`), same string escapes.
///
/// Both directions are strict: the parser returns `None` on *any*
/// deviation from the canonical shape (missing/duplicate/unknown key,
/// escape sequences, malformed numbers) and the caller falls back to the
/// serde path — so error semantics, including exact error-message text,
/// never change. The serializer refuses (returns `false`) any response
/// carrying fields outside the hot shapes (`label`/`stats`/`server`/
/// `text`), which the caller serializes via serde instead.
pub mod fast {
    use super::{Request, Response};
    use crate::objective::Selection;
    use crate::predictor::PredictedProfile;

    /// Writes one f64 exactly as the compat `serde_json` does: `null`
    /// for non-finite values, shortest-roundtrip `{}` otherwise.
    pub fn write_f64(out: &mut Vec<u8>, v: f64) {
        if !v.is_finite() {
            out.extend_from_slice(b"null");
        } else {
            use std::io::Write;
            write!(out, "{v}").expect("write to Vec");
        }
    }

    /// Writes a JSON string with the compat escape rules (`"` `\` `\n`
    /// `\r` `\t` escaped by name, other control chars as `\u00xx`).
    pub fn write_json_str(out: &mut Vec<u8>, s: &str) {
        out.push(b'"');
        for c in s.chars() {
            match c {
                '"' => out.extend_from_slice(b"\\\""),
                '\\' => out.extend_from_slice(b"\\\\"),
                '\n' => out.extend_from_slice(b"\\n"),
                '\r' => out.extend_from_slice(b"\\r"),
                '\t' => out.extend_from_slice(b"\\t"),
                c if (c as u32) < 0x20 => {
                    use std::io::Write;
                    write!(out, "\\u{:04x}", c as u32).expect("write to Vec");
                }
                c => {
                    let mut utf8 = [0u8; 4];
                    out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
                }
            }
        }
        out.push(b'"');
    }

    fn write_f64_array(out: &mut Vec<u8>, xs: &[f64]) {
        out.push(b'[');
        for (i, &x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            write_f64(out, x);
        }
        out.push(b']');
    }

    /// The workload-independent tail of a serialized profile object:
    /// everything from the comma after the workload string through the
    /// profile's closing brace. The serve workers cache exactly these
    /// bytes per (quantized activities, exec-time) key.
    pub fn write_profile_tail(out: &mut Vec<u8>, profile: &PredictedProfile) {
        out.extend_from_slice(b",\"frequencies\":");
        write_f64_array(out, &profile.frequencies);
        out.extend_from_slice(b",\"power_w\":");
        write_f64_array(out, &profile.power_w);
        out.extend_from_slice(b",\"time_s\":");
        write_f64_array(out, &profile.time_s);
        out.extend_from_slice(b",\"energy_j\":");
        write_f64_array(out, &profile.energy_j);
        out.push(b'}');
    }

    /// Writes a full profile object (workload + tail).
    pub fn write_profile(out: &mut Vec<u8>, profile: &PredictedProfile) {
        out.extend_from_slice(b"{\"workload\":");
        write_json_str(out, &profile.workload);
        write_profile_tail(out, profile);
    }

    /// Writes a selection object.
    pub fn write_selection(out: &mut Vec<u8>, sel: &Selection) {
        out.extend_from_slice(b"{\"frequency_mhz\":");
        write_f64(out, sel.frequency_mhz);
        out.extend_from_slice(b",\"index\":");
        write_f64(out, sel.index as f64);
        out.extend_from_slice(b",\"score\":");
        write_f64(out, sel.score);
        out.extend_from_slice(b",\"perf_degradation\":");
        write_f64(out, sel.perf_degradation);
        out.extend_from_slice(b",\"threshold_applied\":");
        out.extend_from_slice(if sel.threshold_applied {
            b"true"
        } else {
            b"false"
        });
        out.push(b'}');
    }

    /// The fixed bytes between a predict/select response's start and its
    /// version number.
    pub const RESPONSE_OK_HEAD: &[u8] = b"{\"ok\":true,\"error\":null,\"version\":";
    /// The fixed bytes between the version and the profile's workload
    /// string in a predict/select response.
    pub const RESPONSE_PROFILE_HEAD: &[u8] = b",\"label\":null,\"profile\":{\"workload\":";
    /// The bytes between the profile object and the selection value.
    pub const RESPONSE_SELECTION_HEAD: &[u8] = b",\"selection\":";
    /// The fixed trailing bytes of every hot-shape response.
    pub const RESPONSE_TAIL: &[u8] = b",\"stats\":null,\"server\":null,\"text\":null}";

    /// Serializes `resp` into `out` (appending), byte-identical to
    /// `serde_json::to_string(resp)`. Returns `false` without writing
    /// when `resp` carries fields outside the hot shapes — the caller
    /// must then use the serde path.
    pub fn write_response(out: &mut Vec<u8>, resp: &Response) -> bool {
        if resp.label.is_some()
            || resp.stats.is_some()
            || resp.server.is_some()
            || resp.text.is_some()
        {
            return false;
        }
        out.extend_from_slice(b"{\"ok\":");
        out.extend_from_slice(if resp.ok { b"true" } else { b"false" });
        out.extend_from_slice(b",\"error\":");
        match &resp.error {
            Some(e) => write_json_str(out, e),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(b",\"version\":");
        write_f64(out, resp.version);
        out.extend_from_slice(b",\"label\":null,\"profile\":");
        match &resp.profile {
            Some(p) => write_profile(out, p),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(b",\"selection\":");
        match &resp.selection {
            Some(s) => write_selection(out, s),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(RESPONSE_TAIL);
        true
    }

    // ------------------------------------------------------- request parse

    /// One parsed field value: request fields are strings, numbers, or
    /// null only.
    enum Field<'a> {
        Str(&'a str),
        Num(f64),
        Null,
    }

    struct Scan<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Scan<'a> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, byte: u8) -> Option<()> {
            if self.bytes.get(self.pos) == Some(&byte) {
                self.pos += 1;
                Some(())
            } else {
                None
            }
        }

        /// A string with no escapes: `"` through the next `"`. Any
        /// backslash or control byte aborts (the serde fallback handles
        /// escapes with identical semantics).
        fn string(&mut self) -> Option<&'a str> {
            self.eat(b'"')?;
            let start = self.pos;
            loop {
                match self.bytes.get(self.pos)? {
                    b'"' => break,
                    b'\\' => return None,
                    b if *b < 0x20 => return None,
                    _ => self.pos += 1,
                }
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
            self.pos += 1;
            Some(s)
        }

        /// A number, consuming the same charset the compat parser does
        /// and delegating to `str::parse` like it does — identical
        /// accepted grammar, identical bits.
        fn number(&mut self) -> Option<f64> {
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()?
                .parse()
                .ok()
        }

        fn literal(&mut self, lit: &[u8]) -> Option<()> {
            if self.bytes[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                Some(())
            } else {
                None
            }
        }

        fn value(&mut self) -> Option<Field<'a>> {
            match self.bytes.get(self.pos)? {
                b'"' => self.string().map(Field::Str),
                b'n' => {
                    self.literal(b"null")?;
                    Some(Field::Null)
                }
                b'0'..=b'9' | b'-' | b'+' | b'.' => self.number().map(Field::Num),
                _ => None,
            }
        }
    }

    fn opt_str(field: Option<Field<'_>>) -> Option<Option<String>> {
        match field {
            Some(Field::Str(s)) => Some(Some(s.to_string())),
            Some(Field::Null) => Some(None),
            _ => None,
        }
    }

    fn opt_num(field: Option<Field<'_>>) -> Option<Option<f64>> {
        match field {
            Some(Field::Num(n)) => Some(Some(n)),
            Some(Field::Null) => Some(None),
            _ => None,
        }
    }

    /// Parses the canonical request shape without building a value tree.
    /// Returns `None` on any deviation — unknown or duplicate keys,
    /// escaped strings, trailing bytes, a missing field — and the caller
    /// falls back to the serde parser, whose behavior (including error
    /// text) is authoritative.
    pub fn parse_request(bytes: &[u8]) -> Option<Request> {
        const KEYS: [&str; 8] = [
            "cmd",
            "workload",
            "fp_active",
            "dram_active",
            "exec_time",
            "objective",
            "threshold",
            "path",
        ];
        let mut scan = Scan { bytes, pos: 0 };
        scan.skip_ws();
        scan.eat(b'{')?;
        let mut fields: [Option<Field<'_>>; 8] = std::array::from_fn(|_| None);
        let mut first = true;
        loop {
            scan.skip_ws();
            if scan.eat(b'}').is_some() {
                break;
            }
            if !first {
                scan.eat(b',')?;
                scan.skip_ws();
            }
            first = false;
            let key = scan.string()?;
            let slot = KEYS.iter().position(|&k| k == key)?;
            if fields[slot].is_some() {
                return None;
            }
            scan.skip_ws();
            scan.eat(b':')?;
            scan.skip_ws();
            fields[slot] = Some(scan.value()?);
        }
        scan.skip_ws();
        if scan.pos != bytes.len() {
            return None;
        }
        // The compat derive requires every field present; a missing one
        // must flow through serde to produce its exact error message.
        if fields.iter().any(Option::is_none) {
            return None;
        }
        let [cmd, workload, fp, dram, exec, objective, threshold, path] = fields;
        let cmd = match cmd {
            Some(Field::Str(s)) => s.to_string(),
            _ => return None,
        };
        Some(Request {
            cmd,
            workload: opt_str(workload)?,
            fp_active: opt_num(fp)?,
            dram_active: opt_num(dram)?,
            exec_time: opt_num(exec)?,
            objective: opt_str(objective)?,
            threshold: opt_num(threshold)?,
            path: opt_str(path)?,
        })
    }

    /// Shallow response scan for the load generator: extracts the `ok`
    /// flag and (for ok replies) the profile's workload without parsing
    /// the float arrays. Relies on the canonical serialization (both the
    /// serde and fast serializers emit it); returns `None` on anything
    /// else so the caller can fall back to a full parse.
    pub fn scan_reply(bytes: &[u8]) -> Option<(bool, Option<&str>)> {
        let ok = if bytes.starts_with(b"{\"ok\":true,") {
            true
        } else if bytes.starts_with(b"{\"ok\":false,") {
            false
        } else {
            return None;
        };
        if !bytes.ends_with(RESPONSE_TAIL) {
            return None;
        }
        const MARKER: &[u8] = b",\"profile\":{\"workload\":\"";
        let at = bytes
            .windows(MARKER.len())
            .position(|w| w == MARKER)
            .map(|p| p + MARKER.len());
        let workload = match at {
            None => None,
            Some(start) => {
                let mut end = start;
                loop {
                    match bytes.get(end)? {
                        b'"' => break,
                        b'\\' => return None,
                        _ => end += 1,
                    }
                }
                Some(std::str::from_utf8(&bytes[start..end]).ok()?)
            }
        };
        Some((ok, workload))
    }
}

/// Parses an objective name from the wire (same names the CLI accepts).
pub fn parse_objective(name: &str) -> Result<crate::objective::Objective, String> {
    use crate::objective::Objective;
    match name {
        "edp" => Ok(Objective::Edp),
        "ed2p" => Ok(Objective::Ed2p),
        "energy" => Ok(Objective::EnergyOnly),
        "time" => Ok(Objective::TimeOnly),
        other => Err(format!(
            "unknown objective `{other}` (expected edp|ed2p|energy|time)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request::select("lammps", 0.62, 0.31, 12.5, "edp", Some(0.05));
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
        // None fields serialize as null and come back as None.
        assert!(json.contains("\"path\":null"));
    }

    #[test]
    fn response_floats_round_trip_bitwise() {
        let profile = PredictedProfile::new(
            "w".into(),
            vec![705.0, 1410.0],
            vec![213.4567890123, 400.0000000001],
            vec![1.618_033_988_749_895, 1.0],
        );
        let mut resp = Response::ok(3);
        resp.profile = Some(profile.clone());
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        let got = back.profile.unwrap();
        for (a, b) in profile.energy_j.iter().zip(&got.energy_j) {
            assert_eq!(a.to_bits(), b.to_bits(), "energy must survive the wire");
        }
        for (a, b) in profile.time_s.iter().zip(&got.time_s) {
            assert_eq!(a.to_bits(), b.to_bits(), "time must survive the wire");
        }
    }

    #[test]
    fn unknown_objective_is_a_clean_error() {
        assert!(parse_objective("edp").is_ok());
        assert!(parse_objective("frobnicate").is_err());
    }

    /// The contract the serving fast path rests on: for every hot-shape
    /// response, `fast::write_response` emits the *identical bytes* the
    /// serde path would. Any divergence would silently break the
    /// bitwise-parity guarantee between served and in-process profiles.
    #[test]
    fn fast_response_serialization_is_byte_identical_to_serde() {
        let profile = PredictedProfile::new(
            "weird \"name\"\twith\\escapes\nand™unicode".into(),
            vec![705.0, 960.5, 1410.0],
            vec![213.4567890123, 0.1 + 0.2, 400.0000000001],
            vec![1.618_033_988_749_895, 1.25, 1.0],
        );
        let selection = profile.select(crate::objective::Objective::Edp, Some(0.05));
        let mut predict = Response::ok(12);
        predict.profile = Some(profile.clone());
        let mut select = Response::ok(9_007_199_254);
        select.profile = Some(profile.clone());
        select.selection = Some(selection);
        let mut nonfinite = Response::ok(1);
        nonfinite.profile = Some(PredictedProfile {
            workload: "w".into(),
            frequencies: vec![705.0, 1410.0],
            power_w: vec![f64::NAN, f64::INFINITY],
            time_s: vec![-0.0, 1e-308],
            energy_j: vec![2.5e17, f64::NEG_INFINITY],
        });
        let cases = vec![
            Response::ok(3),
            Response::err(0, "bad request: missing field Request.cmd"),
            Response::err(7, "weird\u{1}control\u{1f}chars"),
            predict,
            select,
            nonfinite,
        ];
        for resp in &cases {
            let mut got = Vec::new();
            assert!(fast::write_response(&mut got, resp), "hot shape refused");
            let want = serde_json::to_string(resp).unwrap();
            assert_eq!(
                String::from_utf8(got).unwrap(),
                want,
                "fast bytes diverge from serde for {resp:?}"
            );
        }
        // Shapes outside the hot set must be refused, not mis-rendered.
        let mut stats = Response::ok(1);
        stats.label = Some("trained".into());
        let mut out = Vec::new();
        assert!(!fast::write_response(&mut out, &stats));
        assert!(out.is_empty(), "refusal must not write");
    }

    /// The composable pieces (prefix constants + tail fragment) assemble
    /// to the same bytes as the whole-response writer — this is the
    /// exact recipe the serve workers use with their fragment cache.
    #[test]
    fn fast_fragment_composition_matches_whole_response() {
        let profile = PredictedProfile::new(
            "wl-7".into(),
            vec![705.0, 1410.0],
            vec![213.45, 400.0],
            vec![1.5, 1.0],
        );
        let selection = profile.select(crate::objective::Objective::Ed2p, None);
        for sel in [None, Some(selection)] {
            let mut resp = Response::ok(42);
            resp.profile = Some(profile.clone());
            resp.selection = sel.clone();
            let mut whole = Vec::new();
            assert!(fast::write_response(&mut whole, &resp));
            // Composed: head + version + profile head + workload + cached
            // tail + selection + fixed tail.
            let mut tail = Vec::new();
            fast::write_profile_tail(&mut tail, &profile);
            let mut composed = Vec::new();
            composed.extend_from_slice(fast::RESPONSE_OK_HEAD);
            fast::write_f64(&mut composed, 42.0);
            composed.extend_from_slice(fast::RESPONSE_PROFILE_HEAD);
            fast::write_json_str(&mut composed, &profile.workload);
            // write_json_str wraps in quotes; the profile head ends at
            // the key's colon, so drop nothing — but the head constant
            // ends *before* the opening quote.
            composed.extend_from_slice(&tail);
            composed.extend_from_slice(fast::RESPONSE_SELECTION_HEAD);
            match &sel {
                Some(s) => fast::write_selection(&mut composed, s),
                None => composed.extend_from_slice(b"null"),
            }
            composed.extend_from_slice(fast::RESPONSE_TAIL);
            assert_eq!(composed, whole);
        }
    }

    /// Round trip: whatever the canonical client serializer emits, the
    /// fast parser accepts and decodes identically to serde.
    #[test]
    fn fast_request_parse_matches_serde_on_canonical_frames() {
        let cases = [
            Request::ping(),
            Request::version(),
            Request::stats(),
            Request::scrape(),
            Request::shutdown(),
            Request::reload("/tmp/models.json"),
            Request::predict("wl-3", 0.62, 0.31, 12.5),
            Request::select("wl-9", 1e-3, 0.999, 0.5, "edp", Some(0.05)),
            Request::select("wl-0", 0.0, 1.0, 9.75, "time", None),
        ];
        for req in &cases {
            let json = serde_json::to_string(req).unwrap();
            let got = fast::parse_request(json.as_bytes())
                .unwrap_or_else(|| panic!("fast parser refused canonical frame {json}"));
            assert_eq!(&got, req);
            // Whitespace-padded variants parse identically too.
            let spaced = json.replace(":", " : ").replace(",", " ,\n");
            let got = fast::parse_request(spaced.as_bytes()).expect("spaced frame");
            assert_eq!(&got, req);
        }
    }

    /// Every deviation from the canonical shape must make the fast
    /// parser abstain (return `None`) rather than guess — the serde
    /// fallback owns those frames and their exact error messages.
    #[test]
    fn fast_request_parse_abstains_on_any_deviation() {
        let deviant: [&[u8]; 10] = [
            b"{\"cmd\":\"ping\"}",                     // missing fields
            b"not json at all",
            b"[1,2,3]",
            b"{\"cmd\":\"ping\",\"cmd\":\"ping\"}",    // duplicate key
            b"{\"cmd\":\"pi\\u006eg\",\"workload\":null,\"fp_active\":null,\"dram_active\":null,\"exec_time\":null,\"objective\":null,\"threshold\":null,\"path\":null}", // escape
            b"{\"cmd\":\"ping\",\"workload\":null,\"fp_active\":null,\"dram_active\":null,\"exec_time\":null,\"objective\":null,\"threshold\":null,\"path\":null,\"extra\":1}", // unknown key
            b"{\"cmd\":null,\"workload\":null,\"fp_active\":null,\"dram_active\":null,\"exec_time\":null,\"objective\":null,\"threshold\":null,\"path\":null}", // cmd not a string
            b"{\"cmd\":\"predict\",\"workload\":\"w\",\"fp_active\":true,\"dram_active\":0.3,\"exec_time\":1.0,\"objective\":null,\"threshold\":null,\"path\":null}", // bool where number
            b"{\"cmd\":\"ping\",\"workload\":null,\"fp_active\":null,\"dram_active\":null,\"exec_time\":null,\"objective\":null,\"threshold\":null,\"path\":null} trailing", // trailing bytes
            b"{\"cmd\":\"predict\",\"workload\":\"w\",\"fp_active\":1.2.3,\"dram_active\":0.3,\"exec_time\":1.0,\"objective\":null,\"threshold\":null,\"path\":null}", // bad number
        ];
        for frame in deviant {
            assert!(
                fast::parse_request(frame).is_none(),
                "fast parser must abstain on {:?}",
                String::from_utf8_lossy(frame)
            );
        }
    }

    #[test]
    fn scan_reply_extracts_ok_and_workload_from_canonical_responses() {
        let profile = PredictedProfile::new(
            "wl-11".into(),
            vec![705.0, 1410.0],
            vec![200.0, 400.0],
            vec![1.5, 1.0],
        );
        let mut ok_resp = Response::ok(2);
        ok_resp.profile = Some(profile);
        let ok_bytes = serde_json::to_string(&ok_resp).unwrap();
        assert_eq!(
            fast::scan_reply(ok_bytes.as_bytes()),
            Some((true, Some("wl-11")))
        );
        let err_bytes = serde_json::to_string(&Response::err(0, "nope")).unwrap();
        assert_eq!(fast::scan_reply(err_bytes.as_bytes()), Some((false, None)));
        // A stats frame (label/server populated) is not the hot shape.
        let mut stats = Response::ok(1);
        stats.text = Some("exposition".into());
        let stats_bytes = serde_json::to_string(&stats).unwrap();
        assert_eq!(fast::scan_reply(stats_bytes.as_bytes()), None);
        assert_eq!(fast::scan_reply(b"garbage"), None);
    }

    /// Collects every dotted key path in a JSON tree; array elements
    /// contribute their paths under `[]` (one representative element is
    /// enough — the schema is homogeneous).
    fn key_paths(value: &serde_json::Value, prefix: &str, out: &mut Vec<String>) {
        match value {
            serde_json::Value::Object(entries) => {
                for (k, v) in entries {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    key_paths(v, &path, out);
                }
            }
            serde_json::Value::Array(items) => {
                if let Some(first) = items.first() {
                    key_paths(first, &format!("{prefix}[]"), out);
                }
            }
            _ => {}
        }
    }

    /// Pins the full `stats`-frame schema. `dvfs top` and shell smoke
    /// scripts parse these exact paths; a rename or removal here is a
    /// breaking dashboard change and must update this list consciously.
    #[test]
    fn stats_frame_schema_is_pinned() {
        let mut resp = Response::ok(3);
        resp.stats = Some(CacheStatsReply {
            lookups: 10.0,
            hits: 8.0,
            misses: 2.0,
            evictions: 0.0,
            hit_rate: 0.8,
            resident: 2.0,
            shards: 4.0,
        });
        resp.server = Some(ServerStatsReply {
            uptime_s: 12.5,
            build_version: "0.1.0".to_string(),
            build_git: "unknown".to_string(),
            precision: "f64".to_string(),
            window_s: 10.0,
            qps: 1000.0,
            p50_us: 120.0,
            p99_us: 900.0,
            hit_rate: 0.8,
            slo: vec![SloReply {
                name: "latency_p99".to_string(),
                target: 0.99,
                burn_fast: 0.1,
                burn_slow: 0.05,
                firing: false,
                alerts: 0.0,
            }],
            quality: vec![QualityReply {
                model: "power".to_string(),
                mape: 3.0,
                max_ape: 9.0,
                samples: 100.0,
                alerts: 0.0,
                above_band: false,
            }],
            energy: EnergyReply {
                predicted_joules_saved: 42.5,
                decisions: 17.0,
                window_watts_saved: 1.5,
                journal_appended: 17.0,
                journal_dropped: 0.0,
            },
        });
        let json = serde_json::to_string(&resp).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut paths = Vec::new();
        key_paths(&value, "", &mut paths);
        paths.sort();
        let expected = [
            "error",
            "label",
            "ok",
            "profile",
            "selection",
            "server",
            "server.build_git",
            "server.build_version",
            "server.energy",
            "server.energy.decisions",
            "server.energy.journal_appended",
            "server.energy.journal_dropped",
            "server.energy.predicted_joules_saved",
            "server.energy.window_watts_saved",
            "server.hit_rate",
            "server.p50_us",
            "server.p99_us",
            "server.precision",
            "server.qps",
            "server.quality",
            "server.quality[].above_band",
            "server.quality[].alerts",
            "server.quality[].mape",
            "server.quality[].max_ape",
            "server.quality[].model",
            "server.quality[].samples",
            "server.slo",
            "server.slo[].alerts",
            "server.slo[].burn_fast",
            "server.slo[].burn_slow",
            "server.slo[].firing",
            "server.slo[].name",
            "server.slo[].target",
            "server.uptime_s",
            "server.window_s",
            "stats",
            "stats.evictions",
            "stats.hit_rate",
            "stats.hits",
            "stats.lookups",
            "stats.misses",
            "stats.resident",
            "stats.shards",
            "text",
            "version",
        ];
        assert_eq!(
            paths, expected,
            "stats-frame schema changed — update dashboards (dvfs top, check.sh) first"
        );
        // And the extended reply round-trips.
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
