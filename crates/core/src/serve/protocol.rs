//! The serve wire protocol: one JSON request object per frame, one JSON
//! response object per frame.
//!
//! The compat `serde_derive` requires every named field to be present on
//! deserialize (there is no `#[serde(default)]`), so both sides always
//! send the full struct and use `null` for fields a command does not
//! need. [`Request`] constructors fill the boilerplate.
//!
//! Commands:
//!
//! | `cmd`      | inputs                                              | reply payload |
//! |------------|-----------------------------------------------------|---------------|
//! | `ping`     | —                                                   | `ok`, `version` |
//! | `version`  | —                                                   | current snapshot version + label |
//! | `predict`  | `workload`, `fp_active`, `dram_active`, `exec_time` | full [`PredictedProfile`] |
//! | `select`   | predict inputs + `objective`, optional `threshold`  | profile + [`Selection`] |
//! | `stats`    | —                                                   | cache counters |
//! | `reload`   | `path` (models JSON)                                | newly published version |
//! | `shutdown` | —                                                   | `ok`, then the server drains and exits |

use crate::objective::Selection;
use crate::predictor::PredictedProfile;
use serde::{Deserialize, Serialize};

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Command discriminator (see the module table).
    pub cmd: String,
    /// Workload name (predict/select).
    pub workload: Option<String>,
    /// Combined FP pipe activity in `[0, 1]` from the default-clock
    /// profiling run (predict/select).
    pub fp_active: Option<f64>,
    /// DRAM activity in `[0, 1]` from the default-clock run
    /// (predict/select).
    pub dram_active: Option<f64>,
    /// Execution time in seconds at the default clock (predict/select).
    pub exec_time: Option<f64>,
    /// Objective name: `edp`, `ed2p`, `energy`, `time` (select).
    pub objective: Option<String>,
    /// Performance-degradation threshold, fractional (select).
    pub threshold: Option<f64>,
    /// Models JSON path (reload).
    pub path: Option<String>,
}

impl Request {
    fn blank(cmd: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            workload: None,
            fp_active: None,
            dram_active: None,
            exec_time: None,
            objective: None,
            threshold: None,
            path: None,
        }
    }

    /// A `ping` request.
    pub fn ping() -> Self {
        Self::blank("ping")
    }

    /// A `version` request.
    pub fn version() -> Self {
        Self::blank("version")
    }

    /// A `stats` request.
    pub fn stats() -> Self {
        Self::blank("stats")
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Self {
        Self::blank("shutdown")
    }

    /// A `reload` request for the models JSON at `path`.
    pub fn reload(path: &str) -> Self {
        let mut r = Self::blank("reload");
        r.path = Some(path.to_string());
        r
    }

    /// A `predict` request from a default-clock profiling run.
    pub fn predict(workload: &str, fp_active: f64, dram_active: f64, exec_time: f64) -> Self {
        let mut r = Self::blank("predict");
        r.workload = Some(workload.to_string());
        r.fp_active = Some(fp_active);
        r.dram_active = Some(dram_active);
        r.exec_time = Some(exec_time);
        r
    }

    /// A `select` request: predict plus frequency selection.
    pub fn select(
        workload: &str,
        fp_active: f64,
        dram_active: f64,
        exec_time: f64,
        objective: &str,
        threshold: Option<f64>,
    ) -> Self {
        let mut r = Self::predict(workload, fp_active, dram_active, exec_time);
        r.cmd = "select".to_string();
        r.objective = Some(objective.to_string());
        r.threshold = threshold;
        r
    }
}

/// Cache counters on the wire (`stats` reply). Mirrors
/// [`crate::cache::CacheStats`] plus occupancy, as plain fields — the
/// internal struct stays wire-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsReply {
    /// Total lookups.
    pub lookups: f64,
    /// Lookups served from cache.
    pub hits: f64,
    /// Lookups that computed and inserted.
    pub misses: f64,
    /// Capacity evictions.
    pub evictions: f64,
    /// Hit fraction (0.0 on an idle cache, never NaN).
    pub hit_rate: f64,
    /// Resident entries across all shards.
    pub resident: f64,
    /// Number of independent shards.
    pub shards: f64,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// True unless the request failed; then `error` says why.
    pub ok: bool,
    /// Human-readable failure reason (`ok == false` only).
    pub error: Option<String>,
    /// Version of the [`crate::snapshot::ModelSnapshot`] that served the
    /// request (0 for replies that never touched the models, e.g. a
    /// protocol error).
    pub version: f64,
    /// Snapshot provenance label (`version` command only).
    pub label: Option<String>,
    /// The predicted profile (predict/select).
    pub profile: Option<PredictedProfile>,
    /// The frequency selection (select).
    pub selection: Option<Selection>,
    /// Cache counters (`stats` command only).
    pub stats: Option<CacheStatsReply>,
}

impl Response {
    /// A minimal success reply carrying only the snapshot version.
    pub fn ok(version: u64) -> Self {
        Self {
            ok: true,
            error: None,
            version: version as f64,
            label: None,
            profile: None,
            selection: None,
            stats: None,
        }
    }

    /// A failure reply. Protocol-level failures carry version 0.
    pub fn err(version: u64, message: impl Into<String>) -> Self {
        let mut r = Self::ok(version);
        r.ok = false;
        r.error = Some(message.into());
        r
    }
}

/// Parses an objective name from the wire (same names the CLI accepts).
pub fn parse_objective(name: &str) -> Result<crate::objective::Objective, String> {
    use crate::objective::Objective;
    match name {
        "edp" => Ok(Objective::Edp),
        "ed2p" => Ok(Objective::Ed2p),
        "energy" => Ok(Objective::EnergyOnly),
        "time" => Ok(Objective::TimeOnly),
        other => Err(format!(
            "unknown objective `{other}` (expected edp|ed2p|energy|time)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request::select("lammps", 0.62, 0.31, 12.5, "edp", Some(0.05));
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
        // None fields serialize as null and come back as None.
        assert!(json.contains("\"path\":null"));
    }

    #[test]
    fn response_floats_round_trip_bitwise() {
        let profile = PredictedProfile::new(
            "w".into(),
            vec![705.0, 1410.0],
            vec![213.4567890123, 400.0000000001],
            vec![1.618_033_988_749_895, 1.0],
        );
        let mut resp = Response::ok(3);
        resp.profile = Some(profile.clone());
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        let got = back.profile.unwrap();
        for (a, b) in profile.energy_j.iter().zip(&got.energy_j) {
            assert_eq!(a.to_bits(), b.to_bits(), "energy must survive the wire");
        }
        for (a, b) in profile.time_s.iter().zip(&got.time_s) {
            assert_eq!(a.to_bits(), b.to_bits(), "time must survive the wire");
        }
    }

    #[test]
    fn unknown_objective_is_a_clean_error() {
        assert!(parse_objective("edp").is_ok());
        assert!(parse_objective("frobnicate").is_err());
    }
}
