//! `dvfs serve` — the online phase as a long-lived daemon.
//!
//! The paper's deployment story is a controller: profile a workload once
//! at the default clock, predict its power/time profile across the DVFS
//! grid, pick a frequency. This module packages that loop as a hermetic,
//! std-only TCP service:
//!
//! * [`framing`] — 4-byte big-endian length prefix + JSON payload, with
//!   an incremental reader that survives short reads and rejects
//!   oversized frames before allocating;
//! * [`protocol`] — the request/response structs
//!   (`predict`/`select`/`version`/`stats`/`reload`/`shutdown`);
//! * [`dispatch`] — sharded per-worker job queues with work stealing
//!   (one shard per worker, whole pipelined bursts land on one shard so
//!   they stay coalescible into one prediction batch);
//! * [`reply`] — pooled, generation-guarded reply slots replacing the
//!   per-request `mpsc::channel()` (workers swap serialization buffers
//!   into slots; steady state allocates nothing per request);
//! * [`server`] — thread-per-core [`server::Server`]: handler threads
//!   drain every frame a socket read buffered, dispatch the burst as one
//!   batch, worker threads answer it through the cached predictor
//!   against a [`crate::cache::ShardedProfileCache`] (plus a per-worker
//!   serialized-fragment cache), replies leave in one vectored write,
//!   and every response names the [`crate::snapshot::ModelSnapshot`]
//!   version that produced it;
//! * [`loadgen`] — open-/closed-loop zipf load generator reporting
//!   throughput and p50/p90/p99 from the shared `loadgen.rtt_ns`
//!   histogram;
//! * [`telemetry`] — the HTTP side-port serving Prometheus text
//!   exposition (`/metrics`) and liveness (`/healthz`), plus the
//!   one-shot [`telemetry::http_get`] client behind `dvfs scrape` and
//!   `dvfs top`;
//! * [`journal`] — the per-decision audit payload written through
//!   [`obs::journal`] when `--journal-dir` is set, the energy-savings
//!   ledger it feeds, and the deterministic [`journal::replay`] engine
//!   behind `dvfs replay`.
//!
//! The observability plane rides on the same process: a background
//! sampler feeds an [`obs::TimeSeries`] of registry snapshots, an
//! [`obs::SloEngine`] turns its windows into burn rates and
//! edge-triggered alerts, and both the `stats` frame and the scrape
//! surfaces report from that shared view.

pub mod dispatch;
pub mod framing;
pub mod journal;
pub mod loadgen;
pub mod protocol;
pub mod reply;
pub mod server;
pub mod telemetry;

pub use dispatch::Dispatcher;
pub use framing::{write_frame, write_frames_vectored, FrameError, FrameReader, DEFAULT_MAX_FRAME};
pub use journal::{DecisionRecord, EnergyLedger, ReplayReport};
pub use loadgen::{LoadgenConfig, LoadgenReport, Pacing, ZipfSampler};
pub use protocol::{CacheStatsReply, QualityReply, Request, Response, ServerStatsReply, SloReply};
pub use reply::ReplyTable;
pub use server::{default_slos, Client, ServeConfig, Server};
pub use telemetry::http_get;
