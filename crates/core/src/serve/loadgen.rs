//! Load generator for the serve daemon.
//!
//! Drives a live server over TCP with a configurable number of
//! connections, a zipf-skewed key population (so the profile cache sees
//! a realistic hot set), and either **closed-loop** pacing (each
//! connection issues its next request the moment the previous reply
//! lands — measures peak sustainable throughput) or **open-loop**
//! pacing (requests are launched on a fixed schedule regardless of
//! replies — measures latency at a target arrival rate, including
//! coordinated-omission-free queueing delay).
//!
//! Round-trip latencies of **ok** replies land in the shared
//! `loadgen.rtt_ns` histogram in the global registry; the report's
//! p50/p90/p99 read back out of that same histogram, so the numbers in
//! a `--metrics-out` export and the summary always agree. Error replies
//! are accounted separately — `loadgen.errors` counter and the
//! `loadgen.error_rtt_ns` histogram — so a misbehaving server can't
//! skew the latency percentiles with fast error turnarounds.

use super::protocol::Request;
use super::server::Client;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request pacing discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Back-to-back: next request when the previous reply arrives.
    Closed,
    /// Fixed schedule at this many requests/second across all
    /// connections; a slow server makes requests queue, not disappear.
    Open {
        /// Aggregate arrival rate, requests per second.
        rate_hz: f64,
    },
}

/// Load-generator tunables.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: u64,
    /// Closed- or open-loop pacing.
    pub pacing: Pacing,
    /// Distinct workload keys in the population.
    pub keys: usize,
    /// Zipf skew exponent (0 = uniform; ~1 = classic web skew).
    pub zipf_s: f64,
    /// Every Nth request is a `select` instead of a `predict`
    /// (0 = predicts only).
    pub select_every: u64,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Send a `shutdown` frame after the run (smoke tests).
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 4,
            requests: 10_000,
            pacing: Pacing::Closed,
            keys: 64,
            zipf_s: 1.0,
            select_every: 8,
            seed: 42,
            shutdown_after: false,
        }
    }
}

/// What a run produced. All latency figures come from the shared
/// `loadgen.rtt_ns` histogram (microseconds here, nanoseconds there).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Requests that received an `ok` reply.
    pub ok: f64,
    /// Requests answered with an error reply.
    pub errors: f64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Throughput, requests per second.
    pub qps: f64,
    /// Median round trip, microseconds.
    pub p50_us: f64,
    /// 90th percentile round trip, microseconds.
    pub p90_us: f64,
    /// 99th percentile round trip, microseconds.
    pub p99_us: f64,
    /// Slowest round trip, microseconds.
    pub max_us: f64,
}

/// The zipf(s) key sampler: precomputed CDF + binary search, so
/// per-request sampling is O(log keys) with no floating-point pow.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF over ranks `1..=keys` with weight `1 / rank^s`.
    pub fn new(keys: usize, s: f64) -> Self {
        assert!(keys > 0, "zipf needs at least one key");
        let mut cdf: Vec<f64> = Vec::with_capacity(keys);
        let mut total = 0.0;
        for rank in 1..=keys {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Self { cdf }
    }

    /// Maps a uniform draw in `[0, 1)` to a key index (0-based rank).
    pub fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The synthetic per-key request features: deterministic low-discrepancy
/// scrambles of the key index, so distinct keys map to distinct cache
/// buckets and reruns hit the same population.
pub fn key_features(key: usize) -> (f64, f64, f64) {
    let frac = |x: f64| x - x.floor();
    let fp = 0.03 + 0.93 * frac((key as f64 + 1.0) * 0.618_033_988_749_894_9);
    let dram = 0.03 + 0.93 * frac((key as f64 + 1.0) * 0.754_877_666_246_693);
    let exec = 0.5 + 9.5 * frac((key as f64 + 1.0) * 0.554_958_132_087_371_1);
    (fp, dram, exec)
}

fn request_for(key: usize, seq: u64, select_every: u64) -> Request {
    let (fp, dram, exec) = key_features(key);
    let workload = format!("wl-{key}");
    if select_every > 0 && seq % select_every == select_every - 1 {
        Request::select(&workload, fp, dram, exec, "edp", Some(0.05))
    } else {
        Request::predict(&workload, fp, dram, exec)
    }
}

/// Runs the configured load and reports. Transport failures abort the
/// run with the I/O error; protocol-level errors only bump `errors`.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let conns = config.connections.max(1);
    let zipf = ZipfSampler::new(config.keys.max(1), config.zipf_s);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let reg = obs::global();
    let rtt = reg.histogram("loadgen.rtt_ns");
    let error_rtt = reg.histogram("loadgen.error_rtt_ns");
    let ok_counter = reg.counter("loadgen.ok");
    let errors_counter = reg.counter("loadgen.errors");
    let started = Instant::now();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut threads = Vec::with_capacity(conns);
        for conn in 0..conns {
            // Split `requests` as evenly as possible across connections.
            let share = config.requests / conns as u64
                + u64::from((conn as u64) < config.requests % conns as u64);
            let zipf = &zipf;
            let ok = &ok;
            let errors = &errors;
            let rtt = &rtt;
            let error_rtt = &error_rtt;
            threads.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(&config.addr)?;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    config
                        .seed
                        .wrapping_add(conn as u64)
                        .wrapping_mul(0x9E37_79B9),
                );
                let interarrival = match config.pacing {
                    Pacing::Closed => None,
                    Pacing::Open { rate_hz } => {
                        Some(Duration::from_secs_f64(conns as f64 / rate_hz.max(1e-9)))
                    }
                };
                let t0 = Instant::now();
                for seq in 0..share {
                    if let Some(gap) = interarrival {
                        // Open loop: launch at the scheduled instant;
                        // never skip a slot because the server was slow.
                        let due = t0 + gap.mul_f64(seq as f64);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let key = zipf.sample(rng.random::<f64>());
                    let req = request_for(key, seq, config.select_every);
                    let sent = Instant::now();
                    let resp = client
                        .call(&req)
                        .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
                    if resp.ok {
                        rtt.record_duration(sent.elapsed());
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        error_rtt.record_duration(sent.elapsed());
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(())
            }));
        }
        for t in threads {
            t.join().expect("loadgen thread panicked")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    if config.shutdown_after {
        let mut client = Client::connect(&config.addr)?;
        let _ = client.call(&Request::shutdown());
    }
    let (ok, errors) = (ok.load(Ordering::Relaxed), errors.load(Ordering::Relaxed));
    ok_counter.add(ok);
    errors_counter.add(errors);
    Ok(LoadgenReport {
        ok: ok as f64,
        errors: errors as f64,
        elapsed_s: elapsed,
        qps: (ok + errors) as f64 / elapsed.max(1e-9),
        p50_us: rtt.percentile(0.50) as f64 / 1e3,
        p90_us: rtt.percentile(0.90) as f64 / 1e3,
        p99_us: rtt.percentile(0.99) as f64 / 1e3,
        max_us: rtt.max() as f64 / 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_normalized_and_skewed() {
        let z = ZipfSampler::new(100, 1.0);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // Rank 1 should dominate under s=1: it alone carries
        // 1/H(100) ≈ 19% of the mass.
        assert!(z.cdf[0] > 0.15);
        // Sampling the extremes maps into range.
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999_999_9), 99);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            let u = (i as f64 + 0.5) / 10.0;
            assert_eq!(z.sample(u), i);
        }
    }

    #[test]
    fn key_features_are_valid_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for key in 0..512 {
            let (fp, dram, exec) = key_features(key);
            assert!((0.0..=1.0).contains(&fp));
            assert!((0.0..=1.0).contains(&dram));
            assert!(exec > 0.0);
            // Distinct keys land in distinct 1e-3 cache buckets.
            assert!(
                seen.insert(((fp * 1e3) as u64, (dram * 1e3) as u64)),
                "key {key} collided"
            );
        }
    }
}
