//! Load generator for the serve daemon.
//!
//! Drives a live server over TCP with a configurable number of
//! connections, a zipf-skewed key population (so the profile cache sees
//! a realistic hot set), and either **closed-loop** pacing (each
//! connection issues its next request the moment the previous reply
//! lands — measures peak sustainable throughput) or **open-loop**
//! pacing (requests are launched on a fixed schedule regardless of
//! replies — measures latency at a target arrival rate, including
//! coordinated-omission-free queueing delay).
//!
//! Round-trip latencies of **ok** replies land in the shared
//! `loadgen.rtt_ns` histogram in the global registry; the report's
//! p50/p90/p99 read back out of that same histogram, so the numbers in
//! a `--metrics-out` export and the summary always agree. Error replies
//! are accounted separately — `loadgen.errors` counter and the
//! `loadgen.error_rtt_ns` histogram — so a misbehaving server can't
//! skew the latency percentiles with fast error turnarounds.
//!
//! The hot loop allocates nothing per request: every key's `predict`
//! and `select` frames are serialized **once** up front and replayed as
//! raw bytes, and replies are checked with the serde-free
//! [`fast::scan_reply`] scanner (full parse only as a fallback). With
//! `pipeline > 1` each connection keeps that many requests in flight —
//! closed-loop connections send whole bursts in one vectored write and
//! verify the replies come back **in request order** (the server's
//! pipelining contract), keyed by the workload echo in each response.

use super::protocol::{fast, Request, Response};
use super::server::Client;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request pacing discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Back-to-back: next request when the previous reply arrives.
    Closed,
    /// Fixed schedule at this many requests/second across all
    /// connections; a slow server makes requests queue, not disappear.
    Open {
        /// Aggregate arrival rate, requests per second.
        rate_hz: f64,
    },
}

/// Load-generator tunables.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: u64,
    /// Closed- or open-loop pacing.
    pub pacing: Pacing,
    /// Distinct workload keys in the population.
    pub keys: usize,
    /// Zipf skew exponent (0 = uniform; ~1 = classic web skew).
    pub zipf_s: f64,
    /// Every Nth request is a `select` instead of a `predict`
    /// (0 = predicts only).
    pub select_every: u64,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Requests each connection keeps in flight (1 = classic
    /// request/response; >1 exercises the server's pipelined burst
    /// path and asserts in-order replies).
    pub pipeline: usize,
    /// Send a `shutdown` frame after the run (smoke tests).
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 4,
            requests: 10_000,
            pacing: Pacing::Closed,
            keys: 64,
            zipf_s: 1.0,
            select_every: 8,
            seed: 42,
            pipeline: 1,
            shutdown_after: false,
        }
    }
}

/// What a run produced. All latency figures come from the shared
/// `loadgen.rtt_ns` histogram (microseconds here, nanoseconds there).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Requests that received an `ok` reply.
    pub ok: f64,
    /// Requests answered with an error reply.
    pub errors: f64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Throughput, requests per second.
    pub qps: f64,
    /// Median round trip, microseconds.
    pub p50_us: f64,
    /// 90th percentile round trip, microseconds.
    pub p90_us: f64,
    /// 99th percentile round trip, microseconds.
    pub p99_us: f64,
    /// Slowest round trip, microseconds.
    pub max_us: f64,
}

/// The zipf(s) key sampler: precomputed CDF + binary search, so
/// per-request sampling is O(log keys) with no floating-point pow.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF over ranks `1..=keys` with weight `1 / rank^s`.
    pub fn new(keys: usize, s: f64) -> Self {
        assert!(keys > 0, "zipf needs at least one key");
        let mut cdf: Vec<f64> = Vec::with_capacity(keys);
        let mut total = 0.0;
        for rank in 1..=keys {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Self { cdf }
    }

    /// Maps a uniform draw in `[0, 1)` to a key index (0-based rank).
    pub fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The synthetic per-key request features: deterministic low-discrepancy
/// scrambles of the key index, so distinct keys map to distinct cache
/// buckets and reruns hit the same population.
pub fn key_features(key: usize) -> (f64, f64, f64) {
    let frac = |x: f64| x - x.floor();
    let fp = 0.03 + 0.93 * frac((key as f64 + 1.0) * 0.618_033_988_749_894_9);
    let dram = 0.03 + 0.93 * frac((key as f64 + 1.0) * 0.754_877_666_246_693);
    let exec = 0.5 + 9.5 * frac((key as f64 + 1.0) * 0.554_958_132_087_371_1);
    (fp, dram, exec)
}

/// Every key's wire frames, serialized once before the clock starts:
/// the hot loop replays these bytes instead of re-serializing the same
/// request shapes millions of times.
struct FrameTable {
    /// Per key: the `predict` frame and the `select` frame.
    frames: Vec<(Vec<u8>, Vec<u8>)>,
    /// Per key: the workload name its replies must echo.
    workloads: Vec<String>,
}

impl FrameTable {
    fn build(keys: usize) -> Self {
        let mut frames = Vec::with_capacity(keys);
        let mut workloads = Vec::with_capacity(keys);
        for key in 0..keys {
            let (fp, dram, exec) = key_features(key);
            let workload = format!("wl-{key}");
            let predict = serde_json::to_string(&Request::predict(&workload, fp, dram, exec))
                .expect("request serializes")
                .into_bytes();
            let select = serde_json::to_string(&Request::select(
                &workload,
                fp,
                dram,
                exec,
                "edp",
                Some(0.05),
            ))
            .expect("request serializes")
            .into_bytes();
            frames.push((predict, select));
            workloads.push(workload);
        }
        Self { frames, workloads }
    }

    fn bytes(&self, key: usize, seq: u64, select_every: u64) -> &[u8] {
        let (predict, select) = &self.frames[key];
        if select_every > 0 && seq % select_every == select_every - 1 {
            select
        } else {
            predict
        }
    }
}

/// Shared per-connection accounting handles.
struct Recorder<'a> {
    ok: &'a AtomicU64,
    errors: &'a AtomicU64,
    rtt: &'a obs::Histogram,
    error_rtt: &'a obs::Histogram,
}

impl Recorder<'_> {
    /// Reads one reply off `client`, checks it answers the request for
    /// `key` (the in-order contract: a pipelined server must reply in
    /// request order, which the workload echo makes observable), and
    /// books the round trip against `sent`.
    fn take_reply(
        &self,
        client: &mut Client,
        table: &FrameTable,
        key: usize,
        sent: Instant,
    ) -> io::Result<()> {
        let frame = client
            .read_frame_raw()
            .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        let (ok, workload) = match fast::scan_reply(&frame) {
            Some((ok, workload)) => (ok, workload.map(str::to_string)),
            None => {
                // Non-canonical reply (shouldn't happen for predicts);
                // fall back to the full parser before judging it.
                let text = std::str::from_utf8(&frame)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let resp: Response = serde_json::from_str(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                (resp.ok, resp.profile.map(|p| p.workload))
            }
        };
        if ok {
            let expected = &table.workloads[key];
            if workload.as_deref() != Some(expected.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "out-of-order response: expected workload `{expected}`, got {workload:?}"
                    ),
                ));
            }
            self.rtt.record_duration(sent.elapsed());
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.error_rtt.record_duration(sent.elapsed());
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Runs the configured load and reports. Transport failures abort the
/// run with the I/O error; protocol-level errors only bump `errors`.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let conns = config.connections.max(1);
    let zipf = ZipfSampler::new(config.keys.max(1), config.zipf_s);
    let table = FrameTable::build(config.keys.max(1));
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let reg = obs::global();
    let rtt = reg.histogram("loadgen.rtt_ns");
    let error_rtt = reg.histogram("loadgen.error_rtt_ns");
    let ok_counter = reg.counter("loadgen.ok");
    let errors_counter = reg.counter("loadgen.errors");
    let started = Instant::now();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut threads = Vec::with_capacity(conns);
        for conn in 0..conns {
            // Split `requests` as evenly as possible across connections.
            let share = config.requests / conns as u64
                + u64::from((conn as u64) < config.requests % conns as u64);
            let zipf = &zipf;
            let table = &table;
            let recorder = Recorder {
                ok: &ok,
                errors: &errors,
                rtt: &rtt,
                error_rtt: &error_rtt,
            };
            threads.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(&config.addr)?;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    config
                        .seed
                        .wrapping_add(conn as u64)
                        .wrapping_mul(0x9E37_79B9),
                );
                let depth = config.pipeline.max(1);
                match config.pacing {
                    Pacing::Closed => {
                        // Closed loop: send a whole burst in one
                        // vectored write, then read its replies back in
                        // order — the wire shape the server's burst
                        // batching is built for.
                        let mut seq = 0u64;
                        let mut burst: Vec<usize> = Vec::with_capacity(depth);
                        while seq < share {
                            burst.clear();
                            while burst.len() < depth && seq + (burst.len() as u64) < share {
                                burst.push(zipf.sample(rng.random::<f64>()));
                            }
                            let frames: Vec<&[u8]> = burst
                                .iter()
                                .enumerate()
                                .map(|(i, &key)| {
                                    table.bytes(key, seq + i as u64, config.select_every)
                                })
                                .collect();
                            let sent = Instant::now();
                            client.send_frames(&frames)?;
                            for &key in &burst {
                                recorder.take_reply(&mut client, table, key, sent)?;
                            }
                            seq += burst.len() as u64;
                        }
                    }
                    Pacing::Open { rate_hz } => {
                        // Open loop: launch on the fixed schedule;
                        // never skip a slot because the server was
                        // slow. Up to `depth` requests ride in flight
                        // before a launch has to wait on a reply.
                        let gap = Duration::from_secs_f64(conns as f64 / rate_hz.max(1e-9));
                        let t0 = Instant::now();
                        let mut pending: VecDeque<(Instant, usize)> =
                            VecDeque::with_capacity(depth);
                        for seq in 0..share {
                            while pending.len() >= depth {
                                let (sent, key) = pending.pop_front().unwrap();
                                recorder.take_reply(&mut client, table, key, sent)?;
                            }
                            let due = t0 + gap.mul_f64(seq as f64);
                            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            let key = zipf.sample(rng.random::<f64>());
                            let sent = Instant::now();
                            client.send_frames(&[table.bytes(key, seq, config.select_every)])?;
                            pending.push_back((sent, key));
                        }
                        while let Some((sent, key)) = pending.pop_front() {
                            recorder.take_reply(&mut client, table, key, sent)?;
                        }
                    }
                }
                Ok(())
            }));
        }
        for t in threads {
            t.join().expect("loadgen thread panicked")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    if config.shutdown_after {
        let mut client = Client::connect(&config.addr)?;
        let _ = client.call(&Request::shutdown());
    }
    let (ok, errors) = (ok.load(Ordering::Relaxed), errors.load(Ordering::Relaxed));
    ok_counter.add(ok);
    errors_counter.add(errors);
    Ok(LoadgenReport {
        ok: ok as f64,
        errors: errors as f64,
        elapsed_s: elapsed,
        qps: (ok + errors) as f64 / elapsed.max(1e-9),
        p50_us: rtt.percentile(0.50) as f64 / 1e3,
        p90_us: rtt.percentile(0.90) as f64 / 1e3,
        p99_us: rtt.percentile(0.99) as f64 / 1e3,
        max_us: rtt.max() as f64 / 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_normalized_and_skewed() {
        let z = ZipfSampler::new(100, 1.0);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // Rank 1 should dominate under s=1: it alone carries
        // 1/H(100) ≈ 19% of the mass.
        assert!(z.cdf[0] > 0.15);
        // Sampling the extremes maps into range.
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999_999_9), 99);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            let u = (i as f64 + 0.5) / 10.0;
            assert_eq!(z.sample(u), i);
        }
    }

    #[test]
    fn key_features_are_valid_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for key in 0..512 {
            let (fp, dram, exec) = key_features(key);
            assert!((0.0..=1.0).contains(&fp));
            assert!((0.0..=1.0).contains(&dram));
            assert!(exec > 0.0);
            // Distinct keys land in distinct 1e-3 cache buckets.
            assert!(
                seen.insert(((fp * 1e3) as u64, (dram * 1e3) as u64)),
                "key {key} collided"
            );
        }
    }
}
