//! The HTTP/1.1 telemetry side-port: a deliberately minimal responder
//! serving Prometheus text exposition so any standard scraper can poll
//! a live `dvfs serve` without speaking the framed protocol.
//!
//! Scope is scrape-shaped on purpose: `GET`/`HEAD` only, one request
//! per connection (`Connection: close`), bounded header size, no
//! keep-alive and no chunking. Routes:
//!
//! * `GET /metrics` — the exposition document (see [`obs::prom`]);
//! * `GET /healthz` — `ok` (liveness for probes);
//! * `HEAD` on either — same status and `Content-Length`, no body
//!   (probes that only want liveness skip the exposition payload);
//! * anything else — 404 (unknown path) or 405 (other methods).
//!
//! [`http_get`] is the matching one-shot client used by `dvfs scrape`,
//! tests, and the check.sh smoke.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Crate version baked into `build_info` and the stats frame.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git revision baked in via the `DVFS_GIT_HASH` build-time env var
/// (release tooling sets it; dev builds report `unknown`).
pub const BUILD_GIT: &str = match option_env!("DVFS_GIT_HASH") {
    Some(hash) => hash,
    None => "unknown",
};

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection socket timeout — a stuck scraper must not pin the
/// responder thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// How long blocking accepts wait before re-checking the stop signal.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves HTTP on `listener` until `stop()` turns true. `body_for`
/// resolves a request path to `(content_type, body)`; `None` is a 404.
/// Runs connections inline — scrapes are rare (seconds apart) and
/// bounded, so one thread is the right amount of machinery.
pub(crate) fn telemetry_loop<S, B>(listener: TcpListener, stop: S, body_for: B)
where
    S: Fn() -> bool,
    B: Fn(&str) -> Option<(String, String)>,
{
    if listener.set_nonblocking(true).is_err() {
        obs::log!(Warn, "telemetry: cannot set listener non-blocking; exiting");
        return;
    }
    let scrapes = obs::global().counter("telemetry.scrapes");
    loop {
        if stop() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if serve_one(stream, &body_for).is_ok() {
                    scrapes.inc();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                obs::log!(Warn, "telemetry: accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn serve_one<B>(mut stream: TcpStream, body_for: &B) -> io::Result<()>
where
    B: Fn(&str) -> Option<(String, String)>,
{
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_head(&mut stream)?;
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" && method != "HEAD" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n", true);
    }
    // HEAD gets the exact head a GET would produce (status,
    // Content-Type, Content-Length for the full body) with the body
    // itself withheld, per RFC 9110 §9.3.2.
    let send_body = method == "GET";
    // Strip any query string — scrapers may append one.
    let path = path.split('?').next().unwrap_or(path);
    match body_for(path) {
        Some((content_type, body)) => respond(&mut stream, 200, &content_type, &body, send_body),
        None => respond(&mut stream, 404, "text/plain", "not found\n", send_body),
    }
}

/// Reads until the blank line ending the request head (we never read a
/// body — GET only), bounded by [`MAX_HEAD`].
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        match stream.read(&mut byte)? {
            0 => break,
            _ => head.push(byte[0]),
        }
    }
    String::from_utf8(head).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    send_body: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    if send_body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

/// One-shot HTTP GET against a telemetry port: returns
/// `(status, body)`. Deliberately tiny — enough for `dvfs scrape`,
/// tests, and shell smoke, not a general client.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (&raw[..i], &raw[i + 4..]),
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "no header/body separator in response",
            ))
        }
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn spawn_responder() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            telemetry_loop(
                listener,
                move || stop_flag.load(Ordering::Relaxed),
                |path| match path {
                    "/metrics" => Some(("text/plain".to_string(), "m_total 1\n".to_string())),
                    "/healthz" => Some(("text/plain".to_string(), "ok\n".to_string())),
                    _ => None,
                },
            );
        });
        (addr, stop, handle)
    }

    #[test]
    fn responder_serves_routes_and_404s() {
        let (addr, stop, handle) = spawn_responder();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!((status, body.as_str()), (200, "m_total 1\n"));
        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        // Query strings are ignored, like real scrapers send.
        let (status, _) = http_get(&addr, "/metrics?timeout=10s").unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// Raw one-shot request with an arbitrary method; returns the full
    /// response (head + any body) as a string.
    fn raw_request(addr: &str, method: &str, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        raw
    }

    fn content_length(raw: &str) -> usize {
        raw.lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header present")
            .trim()
            .parse()
            .unwrap()
    }

    #[test]
    fn head_mirrors_get_headers_without_body() {
        let (addr, stop, handle) = spawn_responder();
        for (path, get_body) in [("/metrics", "m_total 1\n"), ("/healthz", "ok\n")] {
            let raw = raw_request(&addr, "HEAD", path);
            assert!(raw.starts_with("HTTP/1.1 200"), "got: {raw}");
            assert_eq!(content_length(&raw), get_body.len(), "path {path}");
            let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
            assert!(body.is_empty(), "HEAD {path} must carry no body: {body:?}");
        }
        // Unknown paths still 404 — with the 404 Content-Length and no
        // body.
        let raw = raw_request(&addr, "HEAD", "/nope");
        assert!(raw.starts_with("HTTP/1.1 404"), "got: {raw}");
        assert_eq!(content_length(&raw), "not found\n".len());
        assert_eq!(raw.split("\r\n\r\n").nth(1).unwrap_or(""), "");
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let (addr, stop, handle) = spawn_responder();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "got: {raw}");
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn build_info_constants_are_nonempty() {
        assert!(!BUILD_VERSION.is_empty());
        assert!(!BUILD_GIT.is_empty());
    }
}
